//! Injectable fault plans: message delay, message drop with bounded
//! retry, straggler ranks, and rank death.
//!
//! A [`FaultPlan`] is attached to a communicator at construction time
//! and evaluated deterministically: rules fire on **counts** of
//! matching operations (`every`-th match), not on random draws, so a
//! faulty run replays identically. Plans are written as JSON (schema
//! in `docs/RUNTIME.md`) and parsed by [`FaultPlan::from_json`] with
//! an std-only parser — the build environment has no serde_json.
//!
//! ```
//! use fupermod_runtime::FaultPlan;
//! let plan = FaultPlan::from_json(r#"{
//!     "deadline": 5.0,
//!     "stragglers": [{"rank": 1, "compute_factor": 4.0}],
//!     "drops": [{"src": 0, "dst": 2, "every": 3, "max_retries": 4}]
//! }"#).unwrap();
//! assert_eq!(plan.stragglers.len(), 1);
//! assert!((plan.straggler_factor(1) - 4.0).abs() < 1e-12);
//! ```

use crate::error::RuntimeError;

/// Delays every `every`-th matching message by `seconds` before it
/// becomes visible to the receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayRule {
    /// Sending rank the rule matches (`None` = any).
    pub src: Option<usize>,
    /// Receiving rank the rule matches (`None` = any).
    pub dst: Option<usize>,
    /// Fire on every `every`-th matching message (1 = all).
    pub every: u64,
    /// Injected delay, seconds.
    pub seconds: f64,
}

/// Drops every `every`-th matching send attempt; the sender retries
/// with exponential backoff up to `max_retries` times before the
/// operation fails with [`RuntimeError::RetriesExhausted`].
#[derive(Debug, Clone, PartialEq)]
pub struct DropRule {
    /// Sending rank the rule matches (`None` = any).
    pub src: Option<usize>,
    /// Receiving rank the rule matches (`None` = any).
    pub dst: Option<usize>,
    /// Fire on every `every`-th matching attempt (1 = all — retries
    /// are attempts too, so `every = 1` exhausts the retry budget).
    pub every: u64,
    /// Bounded retry budget after the first dropped attempt.
    pub max_retries: u32,
    /// Base backoff before the first retry, seconds; doubles per
    /// retry (exponential backoff).
    pub backoff_seconds: f64,
}

/// Slows one rank down: `comm_seconds` of extra latency per
/// communication operation, and a `compute_factor` multiplier the
/// distributed executor applies to the rank's measured compute times.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerRule {
    /// The straggling rank.
    pub rank: usize,
    /// Extra seconds added to each of the rank's communication
    /// operations.
    pub comm_seconds: f64,
    /// Multiplier on the rank's measured compute times (>= 1 slows it
    /// down).
    pub compute_factor: f64,
}

/// Kills one rank (fail-stop) after it has performed `after_ops`
/// communication operations.
#[derive(Debug, Clone, PartialEq)]
pub struct DeathRule {
    /// The rank that dies.
    pub rank: usize,
    /// Communication operations the rank completes before dying.
    pub after_ops: u64,
}

/// A deterministic, injectable fault plan for a communicator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-operation deadline, seconds. `None` uses the backend
    /// default ([`crate::comm::DEFAULT_DEADLINE_SECS`]).
    pub deadline: Option<f64>,
    /// Message-delay rules.
    pub delays: Vec<DelayRule>,
    /// Message-drop rules.
    pub drops: Vec<DropRule>,
    /// Straggler rules.
    pub stragglers: Vec<StragglerRule>,
    /// Rank-death rules.
    pub deaths: Vec<DeathRule>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing and keeps the default deadline.
    pub fn is_empty(&self) -> bool {
        self.deadline.is_none()
            && self.delays.is_empty()
            && self.drops.is_empty()
            && self.stragglers.is_empty()
            && self.deaths.is_empty()
    }

    /// The compute-slowdown factor for `rank` (1.0 when no straggler
    /// rule matches). Applied by the distributed executor to the
    /// rank's measured times.
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|r| r.rank == rank)
            .map_or(1.0, |r| r.compute_factor)
    }

    /// The extra communication latency for `rank` (0.0 when no
    /// straggler rule matches).
    pub fn straggler_comm_seconds(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .find(|r| r.rank == rank)
            .map_or(0.0, |r| r.comm_seconds)
    }

    /// The op count after which `rank` dies, if a death rule matches.
    pub fn death_after(&self, rank: usize) -> Option<u64> {
        self.deaths
            .iter()
            .find(|r| r.rank == rank)
            .map(|r| r.after_ops)
    }

    /// Parses a plan from its JSON form (see `docs/RUNTIME.md` for the
    /// schema; unknown keys are rejected so typos fail fast).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPlan`] on malformed JSON,
    /// unknown keys, or out-of-range values.
    pub fn from_json(text: &str) -> Result<Self, RuntimeError> {
        let value = json::parse(text).map_err(RuntimeError::InvalidPlan)?;
        let obj = value
            .as_object()
            .ok_or_else(|| RuntimeError::InvalidPlan("top level must be an object".to_owned()))?;
        let mut plan = FaultPlan::default();
        for (key, v) in obj {
            match key.as_str() {
                "deadline" => {
                    let d = num(v, "deadline")?;
                    if d.is_nan() || d <= 0.0 {
                        return Err(bad("deadline must be positive"));
                    }
                    plan.deadline = Some(d);
                }
                "delays" => {
                    for item in arr(v, "delays")? {
                        plan.delays.push(parse_delay(item)?);
                    }
                }
                "drops" => {
                    for item in arr(v, "drops")? {
                        plan.drops.push(parse_drop(item)?);
                    }
                }
                "stragglers" => {
                    for item in arr(v, "stragglers")? {
                        plan.stragglers.push(parse_straggler(item)?);
                    }
                }
                "deaths" => {
                    for item in arr(v, "deaths")? {
                        plan.deaths.push(parse_death(item)?);
                    }
                }
                other => return Err(bad(&format!("unknown key '{other}'"))),
            }
        }
        Ok(plan)
    }

    /// Reads and parses a plan from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPlan`] on I/O or parse failure.
    pub fn from_json_file(path: &std::path::Path) -> Result<Self, RuntimeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| RuntimeError::InvalidPlan(format!("read {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

fn bad(msg: &str) -> RuntimeError {
    RuntimeError::InvalidPlan(msg.to_owned())
}

fn num(v: &json::Value, what: &str) -> Result<f64, RuntimeError> {
    v.as_f64()
        .ok_or_else(|| bad(&format!("'{what}' must be a number")))
}

fn arr<'a>(v: &'a json::Value, what: &str) -> Result<&'a [json::Value], RuntimeError> {
    v.as_array()
        .ok_or_else(|| bad(&format!("'{what}' must be an array")))
}

fn index(v: &json::Value, what: &str) -> Result<usize, RuntimeError> {
    let x = num(v, what)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(bad(&format!("'{what}' must be a non-negative integer")));
    }
    Ok(x as usize)
}

struct Fields<'a> {
    obj: &'a [(String, json::Value)],
    what: &'static str,
}

impl<'a> Fields<'a> {
    fn new(v: &'a json::Value, what: &'static str) -> Result<Self, RuntimeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| bad(&format!("each '{what}' rule must be an object")))?;
        Ok(Self { obj, what })
    }
    fn get(&self, key: &str) -> Option<&'a json::Value> {
        self.obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    fn require(&self, key: &str) -> Result<&'a json::Value, RuntimeError> {
        self.get(key)
            .ok_or_else(|| bad(&format!("'{}' rule missing '{key}'", self.what)))
    }
    fn check_keys(&self, allowed: &[&str]) -> Result<(), RuntimeError> {
        for (k, _) in self.obj {
            if !allowed.contains(&k.as_str()) {
                return Err(bad(&format!("'{}' rule has unknown key '{k}'", self.what)));
            }
        }
        Ok(())
    }
}

fn parse_endpoint(f: &Fields<'_>, key: &'static str) -> Result<Option<usize>, RuntimeError> {
    f.get(key).map(|v| index(v, key)).transpose()
}

fn parse_every(f: &Fields<'_>) -> Result<u64, RuntimeError> {
    let every = f.get("every").map(|v| index(v, "every")).transpose()?;
    let every = every.unwrap_or(1) as u64;
    if every == 0 {
        return Err(bad("'every' must be >= 1"));
    }
    Ok(every)
}

fn parse_delay(v: &json::Value) -> Result<DelayRule, RuntimeError> {
    let f = Fields::new(v, "delays")?;
    f.check_keys(&["src", "dst", "every", "seconds"])?;
    let seconds = num(f.require("seconds")?, "seconds")?;
    if seconds.is_nan() || seconds < 0.0 {
        return Err(bad("delay 'seconds' must be non-negative"));
    }
    Ok(DelayRule {
        src: parse_endpoint(&f, "src")?,
        dst: parse_endpoint(&f, "dst")?,
        every: parse_every(&f)?,
        seconds,
    })
}

fn parse_drop(v: &json::Value) -> Result<DropRule, RuntimeError> {
    let f = Fields::new(v, "drops")?;
    f.check_keys(&["src", "dst", "every", "max_retries", "backoff_seconds"])?;
    let max_retries = f
        .get("max_retries")
        .map(|v| index(v, "max_retries"))
        .transpose()?
        .unwrap_or(3) as u32;
    let backoff_seconds = f
        .get("backoff_seconds")
        .map(|v| num(v, "backoff_seconds"))
        .transpose()?
        .unwrap_or(1e-3);
    if backoff_seconds.is_nan() || backoff_seconds < 0.0 {
        return Err(bad("'backoff_seconds' must be non-negative"));
    }
    Ok(DropRule {
        src: parse_endpoint(&f, "src")?,
        dst: parse_endpoint(&f, "dst")?,
        every: parse_every(&f)?,
        max_retries,
        backoff_seconds,
    })
}

fn parse_straggler(v: &json::Value) -> Result<StragglerRule, RuntimeError> {
    let f = Fields::new(v, "stragglers")?;
    f.check_keys(&["rank", "comm_seconds", "compute_factor"])?;
    let comm_seconds = f
        .get("comm_seconds")
        .map(|v| num(v, "comm_seconds"))
        .transpose()?
        .unwrap_or(0.0);
    let compute_factor = f
        .get("compute_factor")
        .map(|v| num(v, "compute_factor"))
        .transpose()?
        .unwrap_or(1.0);
    if comm_seconds.is_nan() || comm_seconds < 0.0 || compute_factor.is_nan() || compute_factor <= 0.0
    {
        return Err(bad(
            "straggler needs comm_seconds >= 0 and compute_factor > 0",
        ));
    }
    Ok(StragglerRule {
        rank: index(f.require("rank")?, "rank")?,
        comm_seconds,
        compute_factor,
    })
}

fn parse_death(v: &json::Value) -> Result<DeathRule, RuntimeError> {
    let f = Fields::new(v, "deaths")?;
    f.check_keys(&["rank", "after_ops"])?;
    Ok(DeathRule {
        rank: index(f.require("rank")?, "rank")?,
        after_ops: index(f.require("after_ops")?, "after_ops")? as u64,
    })
}

/// Minimal recursive-descent JSON parser (std-only; offline build).
/// Supports objects, arrays, numbers, strings (escape-free), `true`,
/// `false`, `null` — the full grammar a fault plan uses.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string (escape sequences are rejected).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(x) => Some(*x),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> String {
            format!("bad JSON at byte {}: {msg}", self.pos)
        }
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }
        fn eat(&mut self, want: u8) -> Result<(), String> {
            self.skip_ws();
            if self.peek() == Some(want) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", want as char)))
            }
        }
        fn literal(&mut self, word: &[u8], v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err("unknown literal"))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'"' => {
                        let s = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?
                            .to_owned();
                        self.pos += 1;
                        return Ok(s);
                    }
                    b'\\' => return Err(self.err("string escapes are not supported")),
                    _ => self.pos += 1,
                }
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<f64, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| self.err("malformed number"))
        }
        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => {
                    self.pos += 1;
                    let mut obj = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Obj(obj));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.eat(b':')?;
                        let v = self.value()?;
                        obj.push((key, v));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                    Ok(Value::Obj(obj))
                }
                Some(b'[') => {
                    self.pos += 1;
                    let mut arr = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    loop {
                        arr.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                    Ok(Value::Arr(arr))
                }
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal(b"true", Value::Bool(true)),
                Some(b'f') => self.literal(b"false", Value::Bool(false)),
                Some(b'n') => self.literal(b"null", Value::Null),
                _ => Ok(Value::Num(self.number()?)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_plan_parses() {
        let plan = FaultPlan::from_json(
            r#"{
                "deadline": 2.5,
                "delays": [{"src": 0, "dst": 1, "every": 2, "seconds": 0.01}],
                "drops": [{"dst": 3, "every": 3, "max_retries": 5, "backoff_seconds": 0.002}],
                "stragglers": [{"rank": 1, "comm_seconds": 0.005, "compute_factor": 4.0}],
                "deaths": [{"rank": 2, "after_ops": 10}]
            }"#,
        )
        .unwrap();
        assert_eq!(plan.deadline, Some(2.5));
        assert_eq!(
            plan.delays,
            vec![DelayRule {
                src: Some(0),
                dst: Some(1),
                every: 2,
                seconds: 0.01
            }]
        );
        assert_eq!(plan.drops[0].src, None, "missing src is a wildcard");
        assert_eq!(plan.drops[0].max_retries, 5);
        assert!((plan.straggler_factor(1) - 4.0).abs() < 1e-12);
        assert!((plan.straggler_comm_seconds(1) - 0.005).abs() < 1e-12);
        assert_eq!(plan.straggler_factor(0), 1.0);
        assert_eq!(plan.death_after(2), Some(10));
        assert_eq!(plan.death_after(0), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn defaults_fill_in() {
        let plan = FaultPlan::from_json(r#"{"drops": [{"src": 1}]}"#).unwrap();
        let rule = &plan.drops[0];
        assert_eq!((rule.every, rule.max_retries), (1, 3));
        assert!(rule.backoff_seconds > 0.0);
        assert!(FaultPlan::from_json("{}").unwrap().is_empty());
    }

    #[test]
    fn bad_plans_are_rejected() {
        for text in [
            "",
            "[1,2]",
            r#"{"unknown": 1}"#,
            r#"{"deadline": 0}"#,
            r#"{"deadline": -1}"#,
            r#"{"delays": [{"seconds": -0.5}]}"#,
            r#"{"delays": [{"every": 0, "seconds": 0.1}]}"#,
            r#"{"delays": [{"seconds": 0.1, "typo": 1}]}"#,
            r#"{"stragglers": [{"rank": -1}]}"#,
            r#"{"stragglers": [{"rank": 0, "compute_factor": 0}]}"#,
            r#"{"deaths": [{"rank": 1}]}"#,
            r#"{"deaths": [{"rank": 1.5, "after_ops": 2}]}"#,
            r#"{"drops": "all"}"#,
            r#"{"deadline": 1.0"#,
        ] {
            assert!(
                matches!(
                    FaultPlan::from_json(text),
                    Err(RuntimeError::InvalidPlan(_))
                ),
                "accepted: {text}"
            );
        }
    }

    #[test]
    fn json_parser_handles_nesting_and_literals() {
        let v = json::parse(r#"{"a": [true, false, null, "x", {"b": 1e-3}]}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0], json::Value::Bool(true));
        assert_eq!(arr[2], json::Value::Null);
        let inner = arr[4].as_object().unwrap();
        assert!((inner[0].1.as_f64().unwrap() - 1e-3).abs() < 1e-15);
    }
}
