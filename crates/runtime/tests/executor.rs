//! Integration tests for the distributed dynamic-balancing executor:
//! bit-identical parity with the serial loop, and graceful degradation
//! under adversarial fault plans (stragglers, drops, rank death).

use std::sync::Arc;

use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_core::trace::{MemorySink, TraceEvent};
use fupermod_core::{CoreError, Point};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_to_balance_distributed, run_to_balance_distributed_with, AlgorithmPolicy, FaultPlan,
    OverlapMode, RuntimeConfig,
};

const SPEEDS: [f64; 4] = [120.0, 40.0, 80.0, 20.0];

fn measure(rank: usize, d: u64) -> Result<Point, CoreError> {
    Ok(Point::single(d, d as f64 / SPEEDS[rank]))
}

fn make_ctx(total: u64, eps: f64, size: usize) -> DynamicContext {
    let models: Vec<Box<dyn Model>> = (0..size)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, eps)
}

/// The acceptance criterion of the runtime subsystem: on a fault-free
/// plan, the distributed executor absorbs exactly the same model
/// points in the same order as the serial loop, so every step and the
/// final distribution are **bit-identical** — on both backends and
/// under every collective-algorithm policy.
#[test]
fn distributed_run_is_bit_identical_to_serial() {
    let total = 13_777;
    let serial_steps = make_ctx(total, 0.03, 4)
        .run_to_balance(measure, 30)
        .expect("serial loop");
    let serial_sizes = {
        let mut ctx = make_ctx(total, 0.03, 4);
        ctx.run_to_balance(measure, 30).unwrap();
        ctx.dist().sizes()
    };

    for policy in [
        AlgorithmPolicy::hub(),
        AlgorithmPolicy::ring(),
        AlgorithmPolicy::tree(),
        AlgorithmPolicy::auto(),
    ] {
        for config in [
            RuntimeConfig::thread(),
            RuntimeConfig::sim(4, LinkModel::ethernet()),
        ] {
            let config = config.with_algorithms(policy);
            let outcome =
                run_to_balance_distributed(config, 4, || make_ctx(total, 0.03, 4), measure, 30)
                    .expect("distributed loop");
            assert_eq!(outcome.steps.len(), serial_steps.len());
            for (d_step, s_step) in outcome.steps.iter().zip(&serial_steps) {
                assert_eq!(d_step.observed.len(), s_step.observed.len());
                for (dp, sp) in d_step.observed.iter().zip(&s_step.observed) {
                    assert_eq!(dp.d, sp.d);
                    assert_eq!(
                        dp.t.to_bits(),
                        sp.t.to_bits(),
                        "times must be bit-identical under {policy:?}"
                    );
                }
                assert_eq!(d_step.imbalance.to_bits(), s_step.imbalance.to_bits());
                assert_eq!(d_step.converged, s_step.converged);
                assert_eq!(d_step.units_moved, s_step.units_moved);
            }
            assert_eq!(outcome.final_sizes, serial_sizes);
            assert!(outcome.converged());
            assert!(outcome.dead_ranks.is_empty());
        }
    }
}

/// A straggler's inflated compute times must shift load away from it,
/// and every injection must be documented by a `fault` trace event.
#[test]
fn straggler_is_rebalanced_away_and_traced() {
    let plan = FaultPlan::from_json(
        r#"{"deadline": 10.0,
            "stragglers": [{"rank": 0, "compute_factor": 6.0, "comm_seconds": 0.0001}]}"#,
    )
    .unwrap();
    let sink = Arc::new(MemorySink::new());

    let baseline =
        run_to_balance_distributed(RuntimeConfig::thread(), 4, || make_ctx(12_000, 0.05, 4), measure, 30)
            .expect("baseline run");
    let outcome = run_to_balance_distributed(
        RuntimeConfig::thread().with_plan(plan).with_trace(sink.clone()),
        4,
        || make_ctx(12_000, 0.05, 4),
        measure,
        30,
    )
    .expect("straggler run must terminate");

    // Rank 0 (nominally the fastest device) now appears 6x slower, so
    // it must receive decidedly less than in the fault-free run.
    assert!(
        outcome.final_sizes[0] < baseline.final_sizes[0] / 2,
        "straggler kept {} of baseline {}",
        outcome.final_sizes[0],
        baseline.final_sizes[0]
    );
    let straggler_events = sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { kind, .. } if kind == "straggler"))
        .count();
    assert!(straggler_events > 0, "straggler injections must be traced");
}

/// Message drops with bounded retry: the run still converges to the
/// fault-free answer, and the drops/retries are traced.
#[test]
fn drop_plan_retries_and_converges() {
    let plan = FaultPlan::from_json(
        r#"{"deadline": 10.0,
            "drops": [{"src": 1, "every": 2, "max_retries": 5, "backoff_seconds": 0.0001}]}"#,
    )
    .unwrap();
    let sink = Arc::new(MemorySink::new());

    let baseline =
        run_to_balance_distributed(RuntimeConfig::thread(), 4, || make_ctx(9_000, 0.05, 4), measure, 30)
            .expect("baseline run");
    let outcome = run_to_balance_distributed(
        RuntimeConfig::thread().with_plan(plan).with_trace(sink.clone()),
        4,
        || make_ctx(9_000, 0.05, 4),
        measure,
        30,
    )
    .expect("dropped messages must be retried, not fatal");

    // Retried messages arrive intact: identical final distribution.
    assert_eq!(outcome.final_sizes, baseline.final_sizes);
    assert!(outcome.converged());
    let events = sink.events();
    let drops = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { kind, .. } if kind == "drop"))
        .count();
    let retries = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { kind, .. } if kind == "retry"))
        .count();
    assert!(drops > 0, "drop injections must be traced");
    assert_eq!(drops, retries, "every traced drop is followed by a retry");
}

/// Fail-stop rank death: the dead rank's share is repartitioned across
/// the survivors, the outcome records the death, and the run still
/// terminates within the deadline.
#[test]
fn dead_rank_is_rebalanced_across_survivors() {
    let plan = FaultPlan::from_json(
        r#"{"deadline": 10.0, "deaths": [{"rank": 2, "after_ops": 4}]}"#,
    )
    .unwrap();
    let sink = Arc::new(MemorySink::new());

    let outcome = run_to_balance_distributed(
        RuntimeConfig::thread().with_plan(plan).with_trace(sink.clone()),
        4,
        || make_ctx(10_000, 0.05, 4),
        measure,
        30,
    )
    .expect("rank death must degrade, not fail the job");

    assert_eq!(outcome.dead_ranks, vec![2]);
    assert_eq!(outcome.final_sizes[2], 0, "dead rank holds no load");
    assert_eq!(
        outcome.final_sizes.iter().sum::<u64>(),
        10_000,
        "the dead rank's share is redistributed, not lost"
    );
    assert!(
        outcome.rank_errors[2].is_some(),
        "the dead rank reports its fail-stop error"
    );
    assert!(outcome.rank_errors.iter().enumerate().all(|(r, e)| r == 2 || e.is_none()));
    let events = sink.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault { kind, .. } if kind == "death")),
        "the death itself is traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault { kind, peer, .. } if kind == "degraded" && *peer == 2)),
        "the root documents the degradation"
    );
}

/// The overlapped executor (requests instead of blocking collectives,
/// measurement receives posted before the root's own measurement)
/// absorbs the same observations in the same order, so every step and
/// the final distribution stay **bit-identical** to blocking mode —
/// on both backends.
#[test]
fn overlapped_mode_is_bit_identical_to_blocking() {
    let total = 11_321;
    let configs: [fn() -> RuntimeConfig; 2] = [
        RuntimeConfig::thread,
        || RuntimeConfig::sim(4, LinkModel::ethernet()),
    ];
    for config in configs {
        let run = |mode: OverlapMode| {
            run_to_balance_distributed_with(
                config(),
                4,
                || make_ctx(total, 0.03, 4),
                measure,
                30,
                mode,
            )
            .expect("balance run")
        };
        let blocking = run(OverlapMode::Blocking);
        let overlapped = run(OverlapMode::Overlapped);
        assert_eq!(blocking.steps.len(), overlapped.steps.len());
        for (b, o) in blocking.steps.iter().zip(&overlapped.steps) {
            assert_eq!(b.observed.len(), o.observed.len());
            for (bp, op) in b.observed.iter().zip(&o.observed) {
                assert_eq!(bp.d, op.d);
                assert_eq!(bp.t.to_bits(), op.t.to_bits());
            }
            assert_eq!(b.imbalance.to_bits(), o.imbalance.to_bits());
            assert_eq!(b.converged, o.converged);
        }
        assert_eq!(blocking.final_sizes, overlapped.final_sizes);
        assert!(overlapped.converged());
    }
}

/// Overlapped mode degrades under fail-stop death the same way the
/// blocking loop does: the dead rank's share is redistributed, the
/// root traces the degradation, and the run terminates.
#[test]
fn overlapped_mode_rebalances_around_a_dead_rank() {
    // The overlapped loop posts far fewer ops per step than the
    // blocking collectives, so the death lands after two steps here.
    let plan =
        FaultPlan::from_json(r#"{"deadline": 10.0, "deaths": [{"rank": 2, "after_ops": 2}]}"#)
            .unwrap();
    let sink = Arc::new(MemorySink::new());

    let outcome = run_to_balance_distributed_with(
        RuntimeConfig::thread().with_plan(plan).with_trace(sink.clone()),
        4,
        || make_ctx(10_000, 0.05, 4),
        measure,
        30,
        OverlapMode::Overlapped,
    )
    .expect("rank death must degrade, not fail the job");

    assert_eq!(outcome.dead_ranks, vec![2]);
    assert_eq!(outcome.final_sizes[2], 0, "dead rank holds no load");
    assert_eq!(
        outcome.final_sizes.iter().sum::<u64>(),
        10_000,
        "the dead rank's share is redistributed, not lost"
    );
    assert!(
        sink.events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Fault { kind, peer, .. } if kind == "degraded" && *peer == 2)),
        "the root documents the degradation"
    );
}

/// The sim backend's virtual clocks make the whole distributed run
/// deterministic: two identical runs produce identical outcomes.
#[test]
fn sim_backed_executor_is_deterministic() {
    let run = || {
        let config = RuntimeConfig::sim(4, LinkModel::ethernet());
        let outcome =
            run_to_balance_distributed(config, 4, || make_ctx(8_000, 0.05, 4), measure, 30)
                .expect("sim run");
        (outcome.final_sizes.clone(), outcome.steps.len())
    };
    assert_eq!(run(), run());
}
