//! Event-engine parity suite: the discrete-event simulator core must
//! be **bit-identical** to the thread-backed sim wherever the thread
//! backend is deterministic — per-rank virtual clocks, every
//! collective result, per-rank `comm`/`fault` trace streams, and the
//! balancing executor's steps — across `hub`/`ring`/`tree`/`auto`,
//! fault-free and under fail-stop rank death, at `p ∈ {1, 3, 4, 6,
//! 16, 64}` (non-powers-of-two included so the binomial/butterfly
//! edge cases are on the hook).
//!
//! This is the contract that makes `--sim-engine` a pure scale knob:
//! switching engines never changes an answer or a virtual timestamp,
//! only how many ranks fit in one host (see `docs/RUNTIME.md` §9).

use std::collections::BTreeMap;
use std::sync::Arc;

use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_core::trace::{MemorySink, TraceEvent};
use fupermod_core::{CoreError, Point};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::sim::RankResults;
use fupermod_runtime::{
    run_ranks, run_to_balance_distributed_with, AlgorithmPolicy, Communicator, EventSim,
    FaultPlan, OverlapMode, ReduceOp, RuntimeConfig, RuntimeError, SimEngine, ThreadedComm,
};
use proptest::prelude::*;

fn policies() -> Vec<(&'static str, AlgorithmPolicy)> {
    vec![
        ("hub", AlgorithmPolicy::hub()),
        ("ring", AlgorithmPolicy::ring()),
        ("tree", AlgorithmPolicy::tree()),
        ("auto", AlgorithmPolicy::auto()),
    ]
}

/// Deterministic pseudo-random payload for `(seed, rank)` — finite
/// doubles with full-mantissa noise so float-identity bugs cannot
/// hide behind round numbers.
fn payload(seed: u64, rank: usize, len: usize) -> Vec<f64> {
    let mut state = seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1e3 - 500.0
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn contribution(own: &[f64], rank: usize) -> f64 {
    own.first().copied().unwrap_or(0.125 * (rank as f64 + 1.0))
}

/// Per-rank trace streams: events are compared rank by rank because
/// the thread backend's *global* interleaving is racy while each
/// rank's own sequence is deterministic. Events without a rank field
/// (partition steps, convergence) all come from the root's program
/// and form their own bucket.
fn streams(events: Vec<TraceEvent>) -> BTreeMap<Option<usize>, Vec<String>> {
    let mut out: BTreeMap<Option<usize>, Vec<String>> = BTreeMap::new();
    for e in events {
        let rank = match &e {
            TraceEvent::BenchmarkSample { rank, .. }
            | TraceEvent::BenchmarkDone { rank, .. }
            | TraceEvent::Comm { rank, .. }
            | TraceEvent::Fault { rank, .. }
            | TraceEvent::Metrics { rank, .. } => Some(*rank),
            // ModelUpdate carries the measured rank but is emitted by
            // the root while absorbing, so on the thread backend it
            // races against that rank's own comm events. Bucket it
            // with the other root-emitted events, where ordering is
            // sequential.
            TraceEvent::ModelUpdate { .. }
            | TraceEvent::PartitionStep { .. }
            | TraceEvent::DynamicConverged { .. } => None,
        };
        out.entry(rank).or_default().push(e.to_jsonl());
    }
    out
}

/// What one rank observed from a full sweep of the collective API,
/// floats stored as bits so equality is bitwise. Errors are compared
/// by display string.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Sweep {
    bcast: Vec<u64>,
    scatter: Vec<u64>,
    gather_root: Option<Vec<Vec<u64>>>,
    gather_avail: Option<Vec<Option<Vec<u64>>>>,
    allgather: Vec<Vec<u64>>,
    allgather_avail: Vec<Option<Vec<u64>>>,
    sum: u64,
    min: u64,
    max: u64,
}

fn scatter_parts(seed: u64, size: usize, len: usize) -> Vec<Vec<f64>> {
    (0..size)
        .map(|r| payload(seed ^ 0xABCD, r, (r + len) % 5))
        .collect()
}

/// The fault-free program, thread side.
fn thread_sweep(
    mut c: ThreadedComm,
    seed: u64,
    root: usize,
    len: usize,
) -> Result<Sweep, RuntimeError> {
    let rank = c.rank();
    let size = c.size();
    c.barrier()?;
    let own = payload(seed, rank, len);
    let bcast = c.bcast(root, (rank == root).then(|| payload(seed, root, len)).as_ref())?;
    let parts = (rank == root).then(|| scatter_parts(seed, size, len));
    let scatter = c.scatterv(root, parts.as_deref())?;
    let gather_root = c.gatherv(root, &own)?;
    let gather_avail = c.gather_available(root, &own)?;
    let allgather = c.allgatherv(&own)?;
    let allgather_avail = c.allgatherv_available(&own)?;
    let x = contribution(&own, rank);
    let sum = c.allreduce(x, ReduceOp::Sum)?;
    let min = c.allreduce(x, ReduceOp::Min)?;
    let max = c.allreduce(x, ReduceOp::Max)?;
    c.barrier()?;
    Ok(Sweep {
        bcast: bits(&bcast),
        scatter: bits(&scatter),
        gather_root: gather_root.map(|g| g.iter().map(|v| bits(v)).collect()),
        gather_avail: gather_avail.map(|g| g.into_iter().map(|s| s.map(|v| bits(&v))).collect()),
        allgather: allgather.iter().map(|v| bits(v)).collect(),
        allgather_avail: allgather_avail
            .into_iter()
            .map(|s| s.map(|v| bits(&v)))
            .collect(),
        sum: sum.to_bits(),
        min: min.to_bits(),
        max: max.to_bits(),
    })
}

/// Sticky per-rank accumulator over the engine's cohort results: a
/// rank keeps the first error it hits (the engine has already halted
/// it, so later collectives skip it — the `?`-propagation mirror).
struct Acc {
    err: Vec<Option<RuntimeError>>,
}

impl Acc {
    fn new(size: usize) -> Self {
        Acc {
            err: (0..size).map(|_| None).collect(),
        }
    }
    fn put<T>(&mut self, res: RankResults<T>, mut store: impl FnMut(usize, T)) {
        for (rank, slot) in res.into_iter().enumerate() {
            match slot {
                Some(Ok(v)) => store(rank, v),
                Some(Err(e)) if self.err[rank].is_none() => self.err[rank] = Some(e),
                _ => {}
            }
        }
    }
}

/// The fault-free program, event side: same ops, same payloads, all
/// ranks driven through one [`EventSim`].
fn event_sweep(
    sim: &mut EventSim,
    seed: u64,
    root: usize,
    len: usize,
) -> Vec<Result<Sweep, RuntimeError>> {
    let size = sim.size();
    let own: Vec<Vec<f64>> = (0..size).map(|r| payload(seed, r, len)).collect();
    let mut acc = Acc::new(size);
    acc.put(sim.barrier(), |_, ()| {});
    let mut bcast = vec![Vec::new(); size];
    acc.put(sim.bcast(root, &payload(seed, root, len)), |r, v: Vec<f64>| {
        bcast[r] = v;
    });
    let mut scatter = vec![Vec::new(); size];
    acc.put(
        sim.scatterv(root, &scatter_parts(seed, size, len)),
        |r, v: Vec<f64>| scatter[r] = v,
    );
    let mut gather_root = vec![None; size];
    acc.put(sim.gatherv(root, &own), |r, v| gather_root[r] = v);
    let mut gather_avail = vec![None; size];
    acc.put(sim.gather_available(root, &own), |r, v| gather_avail[r] = v);
    let mut allgather: Vec<_> = (0..size).map(|_| Arc::new(Vec::new())).collect();
    acc.put(sim.allgatherv(&own), |r, v| allgather[r] = v);
    let mut allgather_avail: Vec<_> = (0..size).map(|_| Arc::new(Vec::new())).collect();
    acc.put(sim.allgatherv_available(&own), |r, v| allgather_avail[r] = v);
    let xs: Vec<f64> = (0..size).map(|r| contribution(&own[r], r)).collect();
    let (mut sum, mut min, mut max) = (vec![0u64; size], vec![0u64; size], vec![0u64; size]);
    acc.put(sim.allreduce(&xs, ReduceOp::Sum), |r, v| sum[r] = v.to_bits());
    acc.put(sim.allreduce(&xs, ReduceOp::Min), |r, v| min[r] = v.to_bits());
    acc.put(sim.allreduce(&xs, ReduceOp::Max), |r, v| max[r] = v.to_bits());
    acc.put(sim.barrier(), |_, ()| {});
    (0..size)
        .map(|r| match acc.err[r].take() {
            Some(e) => Err(e),
            None => Ok(Sweep {
                bcast: bits(&bcast[r]),
                scatter: bits(&scatter[r]),
                gather_root: gather_root[r]
                    .take()
                    .map(|g: Arc<Vec<Vec<f64>>>| g.iter().map(|v| bits(v)).collect()),
                gather_avail: gather_avail[r].take().map(|g: Arc<Vec<Option<Vec<f64>>>>| {
                    g.iter().map(|s| s.as_ref().map(|v| bits(v))).collect()
                }),
                allgather: allgather[r].iter().map(|v| bits(v)).collect(),
                allgather_avail: allgather_avail[r]
                    .iter()
                    .map(|s| s.as_ref().map(|v| bits(v)))
                    .collect(),
                sum: sum[r],
                min: min[r],
                max: max[r],
            }),
        })
        .collect()
}

/// Runs one scenario on both engines and asserts full parity: results
/// (or errors, by display string) per rank, virtual clocks bitwise,
/// per-rank trace streams verbatim, and total comm seconds to 1e-9
/// relative (its accumulation order differs between engines).
fn assert_parity<T, FT, FE>(
    label: &str,
    policy: AlgorithmPolicy,
    plan: FaultPlan,
    size: usize,
    thread_prog: FT,
    event_prog: FE,
) where
    T: std::fmt::Debug + PartialEq + Send,
    FT: Fn(ThreadedComm) -> Result<T, RuntimeError> + Sync,
    FE: FnOnce(&mut EventSim) -> Vec<Result<T, RuntimeError>>,
{
    let t_sink = Arc::new(MemorySink::new());
    let (comms, handle) = RuntimeConfig::sim(size, LinkModel::ethernet())
        .with_algorithms(policy)
        .with_plan(plan.clone())
        .with_trace(t_sink.clone())
        .build_with_handle(size);
    let thread_out = run_ranks(comms, &thread_prog);
    let thread_times = handle.virtual_times().expect("sim backend has clocks");
    let thread_comm = handle.virtual_comm_seconds().expect("sim backend");

    let e_sink = Arc::new(MemorySink::new());
    let config = RuntimeConfig::sim(size, LinkModel::ethernet())
        .with_algorithms(policy)
        .with_plan(plan)
        .with_trace(e_sink.clone())
        .with_engine(SimEngine::Event);
    let mut sim = EventSim::from_config(&config, size).expect("event engine builds");
    let event_out = event_prog(&mut sim);
    let event_times = sim.virtual_times();
    let event_comm = sim.comm_seconds();

    assert_eq!(thread_out.len(), event_out.len(), "{label}: rank count");
    for (rank, (t, e)) in thread_out.iter().zip(event_out.iter()).enumerate() {
        match (t, e) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{label}: rank {rank} results differ"),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "{label}: rank {rank} errors differ"
            ),
            _ => panic!("{label}: rank {rank} outcome kind differs: thread={t:?} event={e:?}"),
        }
    }
    for (rank, (a, b)) in thread_times.iter().zip(event_times.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: rank {rank} virtual clock differs: thread={a:.9e} event={b:.9e}"
        );
    }
    let denom = thread_comm.abs().max(1e-30);
    assert!(
        ((thread_comm - event_comm) / denom).abs() <= 1e-9,
        "{label}: comm_seconds differ: thread={thread_comm:.12e} event={event_comm:.12e}"
    );
    assert_eq!(
        streams(t_sink.take()),
        streams(e_sink.take()),
        "{label}: per-rank trace streams differ"
    );
}

/// The tentpole pin: full collective sweeps at `p ∈ {1, 3, 4, 6, 16,
/// 64}` (non-powers-of-two included), every policy, fault-free, with
/// a non-zero root.
#[test]
fn fault_free_sweeps_are_bit_identical() {
    for &size in &[1usize, 3, 4, 6, 16, 64] {
        for (name, policy) in policies() {
            let seed = 0x5EED ^ (size as u64) << 8;
            let root = (size - 1).min(2);
            let len = 7;
            assert_parity(
                &format!("fault-free p={size} {name}"),
                policy,
                FaultPlan::default(),
                size,
                move |c| thread_sweep(c, seed, root, len),
                move |sim| event_sweep(sim, seed, root, len),
            );
        }
    }
}

/// The death program: the victim (last rank) fail-stops at its second
/// operation, so the membership settles at the second barrier and
/// every later collective degrades around the hole identically on
/// both engines.
/// Per-rank outcome of the death program: bcast and scatter payload
/// bits, the root's available-gather view, the available all-gather
/// slots and the folded sum.
type DeathSweep = (
    Vec<u64>,
    Vec<u64>,
    Option<Vec<Option<Vec<u64>>>>,
    Vec<Option<Vec<u64>>>,
    u64,
);

fn thread_death_prog(
    mut c: ThreadedComm,
    seed: u64,
    len: usize,
) -> Result<DeathSweep, RuntimeError> {
    let rank = c.rank();
    let size = c.size();
    c.barrier()?;
    c.barrier()?;
    let own = payload(seed, rank, len);
    let bcast = c.bcast(0, (rank == 0).then(|| payload(seed, 0, len)).as_ref())?;
    let parts = (rank == 0).then(|| scatter_parts(seed, size, len));
    let scatter = c.scatterv(0, parts.as_deref())?;
    let gather_avail = c.gather_available(0, &own)?;
    let allgather_avail = c.allgatherv_available(&own)?;
    let sum = c.allreduce(contribution(&own, rank), ReduceOp::Sum)?;
    c.barrier()?;
    Ok((
        bits(&bcast),
        bits(&scatter),
        gather_avail.map(|g| g.into_iter().map(|s| s.map(|v| bits(&v))).collect()),
        allgather_avail
            .into_iter()
            .map(|s| s.map(|v| bits(&v)))
            .collect(),
        sum.to_bits(),
    ))
}

fn event_death_prog(
    sim: &mut EventSim,
    seed: u64,
    len: usize,
) -> Vec<Result<DeathSweep, RuntimeError>> {
    let size = sim.size();
    let own: Vec<Vec<f64>> = (0..size).map(|r| payload(seed, r, len)).collect();
    let mut acc = Acc::new(size);
    acc.put(sim.barrier(), |_, ()| {});
    acc.put(sim.barrier(), |_, ()| {});
    let mut bcast = vec![Vec::new(); size];
    acc.put(sim.bcast(0, &payload(seed, 0, len)), |r, v: Vec<f64>| {
        bcast[r] = v;
    });
    let mut scatter = vec![Vec::new(); size];
    acc.put(
        sim.scatterv(0, &scatter_parts(seed, size, len)),
        |r, v: Vec<f64>| scatter[r] = v,
    );
    let mut gather_avail = vec![None; size];
    acc.put(sim.gather_available(0, &own), |r, v| gather_avail[r] = v);
    let mut allgather_avail: Vec<_> = (0..size).map(|_| Arc::new(Vec::new())).collect();
    acc.put(sim.allgatherv_available(&own), |r, v| allgather_avail[r] = v);
    let xs: Vec<f64> = (0..size).map(|r| contribution(&own[r], r)).collect();
    let mut sum = vec![0u64; size];
    acc.put(sim.allreduce(&xs, ReduceOp::Sum), |r, v| sum[r] = v.to_bits());
    acc.put(sim.barrier(), |_, ()| {});
    (0..size)
        .map(|r| match acc.err[r].take() {
            Some(e) => Err(e),
            None => Ok((
                bits(&bcast[r]),
                bits(&scatter[r]),
                gather_avail[r].take().map(|g: Arc<Vec<Option<Vec<f64>>>>| {
                    g.iter().map(|s| s.as_ref().map(|v| bits(v))).collect()
                }),
                allgather_avail[r]
                    .iter()
                    .map(|s| s.as_ref().map(|v| bits(v)))
                    .collect(),
                sum[r],
            )),
        })
        .collect()
}

/// Settled death: the victim completes the first barrier and dies at
/// the second, so every collective after it runs with an agreed,
/// stable hole.
#[test]
fn settled_death_is_bit_identical() {
    for &size in &[3usize, 4, 6, 16, 64] {
        let victim = size - 1;
        let plan = FaultPlan::from_json(&format!(
            r#"{{"deadline": 20.0, "deaths": [{{"rank": {victim}, "after_ops": 1}}]}}"#
        ))
        .expect("valid plan");
        for (name, policy) in policies() {
            let seed = 0xDEAD ^ (size as u64) << 8;
            assert_parity(
                &format!("settled-death p={size} {name}"),
                policy,
                plan.clone(),
                size,
                move |c| thread_death_prog(c, seed, 5),
                move |sim| event_death_prog(sim, seed, 5),
            );
        }
    }
}

/// Mid-phase death: the victim dies at the `op_begin` of a rootless
/// collective, *before* any barrier has settled the membership — the
/// survivors must degrade edge-wise through the unsettled hole
/// identically on both engines.
#[test]
fn mid_phase_death_is_bit_identical() {
    for &size in &[3usize, 4, 6, 16, 64] {
        let victim = size - 1;
        let plan = FaultPlan::from_json(&format!(
            r#"{{"deadline": 20.0, "deaths": [{{"rank": {victim}, "after_ops": 1}}]}}"#
        ))
        .expect("valid plan");
        for (name, policy) in policies() {
            let seed = 0x31D ^ (size as u64);
            assert_parity(
                &format!("mid-phase-death p={size} {name}"),
                policy,
                plan.clone(),
                size,
                move |mut c: ThreadedComm| {
                    let rank = c.rank();
                    c.barrier()?;
                    let own = payload(seed, rank, 4);
                    let slots = c.allgatherv_available(&own)?;
                    let sum = c.allreduce(contribution(&own, rank), ReduceOp::Sum)?;
                    Ok((
                        slots
                            .into_iter()
                            .map(|s| s.map(|v| bits(&v)))
                            .collect::<Vec<_>>(),
                        sum.to_bits(),
                    ))
                },
                move |sim| {
                    let size = sim.size();
                    let own: Vec<Vec<f64>> = (0..size).map(|r| payload(seed, r, 4)).collect();
                    let mut acc = Acc::new(size);
                    acc.put(sim.barrier(), |_, ()| {});
                    let mut slots: Vec<_> = (0..size).map(|_| Arc::new(Vec::new())).collect();
                    acc.put(sim.allgatherv_available(&own), |r, v| slots[r] = v);
                    let xs: Vec<f64> =
                        (0..size).map(|r| contribution(&own[r], r)).collect();
                    let mut sum = vec![0u64; size];
                    acc.put(sim.allreduce(&xs, ReduceOp::Sum), |r, v| {
                        sum[r] = v.to_bits();
                    });
                    (0..size)
                        .map(|r| match acc.err[r].take() {
                            Some(e) => Err(e),
                            None => Ok((
                                slots[r]
                                    .iter()
                                    .map(|s| s.as_ref().map(|v| bits(v)))
                                    .collect::<Vec<_>>(),
                                sum[r],
                            )),
                        })
                        .collect()
                },
            );
        }
    }
}

// ----- balancing executor parity -------------------------------------

const SPEEDS: [f64; 4] = [120.0, 40.0, 80.0, 20.0];

fn measure(rank: usize, d: u64) -> Result<Point, CoreError> {
    Ok(Point::single(d, d as f64 / SPEEDS[rank]))
}

fn make_ctx(total: u64, eps: f64, size: usize) -> DynamicContext {
    let models: Vec<Box<dyn Model>> = (0..size)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, eps)
}

/// Runs the balancing loop on both engines under `plan` and asserts
/// the outcomes line up: same steps (bitwise observations), same
/// final sizes, same dead ranks, same per-rank error strings, same
/// virtual makespan bits, same per-rank trace streams.
fn assert_balance_parity(label: &str, plan: FaultPlan, mode: OverlapMode) {
    let size = 4;
    let run = |engine: SimEngine| {
        let sink = Arc::new(MemorySink::new());
        let config = RuntimeConfig::sim(size, LinkModel::ethernet())
            .with_plan(plan.clone())
            .with_trace(sink.clone())
            .with_engine(engine);
        let outcome = run_to_balance_distributed_with(
            config,
            size,
            || make_ctx(9_000, 0.04, size),
            measure,
            25,
            mode,
        )
        .expect("balancing run returns rank 0's success");
        (outcome, sink.take())
    };
    let (t, t_events) = run(SimEngine::Thread);
    let (e, e_events) = run(SimEngine::Event);
    assert_eq!(t.steps, e.steps, "{label}: steps differ");
    assert_eq!(t.final_sizes, e.final_sizes, "{label}: final sizes differ");
    assert_eq!(t.dead_ranks, e.dead_ranks, "{label}: dead ranks differ");
    let errs = |o: &fupermod_runtime::BalanceOutcome| -> Vec<Option<String>> {
        o.rank_errors
            .iter()
            .map(|e| e.as_ref().map(ToString::to_string))
            .collect()
    };
    assert_eq!(errs(&t), errs(&e), "{label}: rank errors differ");
    let (tv, ev) = (
        t.virtual_time.expect("sim backend"),
        e.virtual_time.expect("event engine"),
    );
    assert_eq!(
        tv.to_bits(),
        ev.to_bits(),
        "{label}: virtual makespan differs: thread={tv:.9e} event={ev:.9e}"
    );
    assert_eq!(
        streams(t_events),
        streams(e_events),
        "{label}: per-rank trace streams differ"
    );
}

#[test]
fn balance_fault_free_blocking_matches() {
    assert_balance_parity("balance blocking", FaultPlan::default(), OverlapMode::Blocking);
}

#[test]
fn balance_fault_free_overlapped_matches() {
    assert_balance_parity(
        "balance overlapped",
        FaultPlan::default(),
        OverlapMode::Overlapped,
    );
}

#[test]
fn balance_under_straggler_and_death_matches() {
    // Rank 1 computes 3x slow (straggler), rank 3 fail-stops after 9
    // operations — mid-loop, so the root must degrade around it.
    let plan = FaultPlan::from_json(
        r#"{"deadline": 20.0,
            "deaths": [{"rank": 3, "after_ops": 9}],
            "stragglers": [{"rank": 1, "comm_seconds": 0.0, "compute_factor": 3.0}]}"#,
    )
    .expect("valid plan");
    assert_balance_parity("balance faulted blocking", plan.clone(), OverlapMode::Blocking);
    assert_balance_parity("balance faulted overlapped", plan, OverlapMode::Overlapped);
}

/// The executor's documented three-rank fixture must land on the same
/// converged distribution on the event engine.
#[test]
fn balance_three_rank_fixture_converges_on_event_engine() {
    let config = RuntimeConfig::sim(3, LinkModel::ethernet()).with_engine(SimEngine::Event);
    let outcome = run_to_balance_distributed_with(
        config,
        3,
        || {
            let models: Vec<Box<dyn Model>> = (0..3)
                .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
                .collect();
            DynamicContext::new(Box::new(GeometricPartitioner::default()), models, 700, 0.05)
        },
        |rank, d| Ok(Point::single(d, d as f64 / [100.0, 25.0, 50.0][rank])),
        20,
        OverlapMode::Blocking,
    )
    .unwrap();
    assert!(outcome.converged());
    assert_eq!(outcome.final_sizes, vec![400, 100, 200]);
    assert!(outcome.rank_errors.iter().all(Option::is_none));
}

// ----- satellite: Hockney closed form + survivor agreement at p=1024 --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For a random point-to-point hop plan, the event engine's
    /// virtual clocks equal the closed-form Hockney recurrence
    /// evaluated with the exact same float operations: per hop
    /// `(src, dst, n)`, `ready = clock[src] + α + m/β` with
    /// `m = 8 + n` (the wire length prefix), the sender pays `α`,
    /// and the receiver advances to `max(clock[dst], ready)`.
    #[test]
    fn hockney_hop_chain_matches_closed_form(
        hops in collection::vec((0usize..8, 0usize..8, 0usize..2048), 1..24),
    ) {
        let size = 8;
        let link = LinkModel::ethernet();
        let config = RuntimeConfig::sim(size, link)
            .with_engine(SimEngine::Event);
        let mut sim = EventSim::from_config(&config, size).expect("event engine builds");
        let mut clock = vec![0.0f64; size];
        for &(src, dst, n) in &hops {
            prop_assume!(src != dst);
            let msg = vec![0u8; n];
            sim.send(src, dst, &msg).expect("send on live ranks");
            let got: Vec<u8> = sim.recv(dst, src).expect("recv on live ranks");
            prop_assert_eq!(got.len(), n);
            // Closed form, in the engine's own charge order: the
            // sender half runs when the receiver takes the message.
            let m = (8 + n) as f64;
            let ready = clock[src] + link.cost(m);
            clock[src] += link.latency_sec;
            clock[dst] = clock[dst].max(ready);
        }
        let got = sim.virtual_times();
        for (rank, (a, b)) in clock.iter().zip(got.iter()).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "rank {} clock: closed-form {:.9e} vs engine {:.9e}", rank, a, b
            );
        }
    }
}

/// Survivor agreement at scale: under fail-stop death of one rank in
/// a 1024-rank event run, every survivor sees the same availability
/// vector (victim `None`, all live slots present) and the same
/// bitwise reduction over the surviving contributions, in rank order.
#[test]
fn survivors_agree_under_death_at_p1024() {
    let size = 1024usize;
    let victim = 777usize;
    let plan = FaultPlan::from_json(&format!(
        r#"{{"deadline": 20.0, "deaths": [{{"rank": {victim}, "after_ops": 1}}]}}"#
    ))
    .expect("valid plan");
    let config = RuntimeConfig::sim(size, LinkModel::ethernet())
        .with_plan(plan)
        .with_engine(SimEngine::Event);
    let mut sim = EventSim::from_config(&config, size).expect("event engine builds");

    let own: Vec<Vec<f64>> = (0..size).map(|r| payload(424_242, r, 2)).collect();
    let mut acc = Acc::new(size);
    acc.put(sim.barrier(), |_, ()| {});
    acc.put(sim.barrier(), |_, ()| {});
    let mut slots: Vec<_> = (0..size).map(|_| Arc::new(Vec::new())).collect();
    acc.put(sim.allgatherv_available(&own), |r, v| slots[r] = v);
    let xs: Vec<f64> = (0..size).map(|r| contribution(&own[r], r)).collect();
    let mut sums = vec![None; size];
    acc.put(sim.allreduce(&xs, ReduceOp::Sum), |r, v| {
        sums[r] = Some(v.to_bits());
    });

    let expected: f64 = (0..size)
        .filter(|&r| r != victim)
        .map(|r| xs[r])
        .fold(0.0, |acc, x| acc + x);
    let reference: Vec<Option<Vec<u64>>> = (0..size)
        .map(|r| (r != victim).then(|| bits(&own[r])))
        .collect();
    for rank in 0..size {
        if rank == victim {
            assert!(acc.err[rank].is_some(), "victim must report its death");
            continue;
        }
        assert!(
            acc.err[rank].is_none(),
            "survivor {rank} failed: {:?}",
            acc.err[rank]
        );
        let view: Vec<Option<Vec<u64>>> = slots[rank]
            .iter()
            .map(|s| s.as_ref().map(|v| bits(v)))
            .collect();
        assert_eq!(view, reference, "survivor {rank} availability disagrees");
        assert_eq!(
            sums[rank],
            Some(expected.to_bits()),
            "survivor {rank} reduction disagrees"
        );
    }
    assert_eq!(sim.dead_ranks(), vec![victim]);
}
