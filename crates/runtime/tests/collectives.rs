//! Edge-case integration tests for the communicator backends:
//! size-1 communicators, zero-byte payloads, non-zero collective
//! roots, and a seeded-scheduler interleaving test for the threaded
//! barrier.

use std::sync::atomic::{AtomicUsize, Ordering};

use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{run_ranks, Communicator, ReduceOp, RuntimeConfig, RuntimeError};

fn both_backends(size: usize) -> Vec<RuntimeConfig> {
    vec![
        RuntimeConfig::thread(),
        RuntimeConfig::sim(size, LinkModel::ethernet()),
    ]
}

/// Every operation must work on a communicator of one: the degenerate
/// platform of the paper's single-device baseline.
#[test]
fn size_one_communicator_supports_every_operation() {
    for config in both_backends(1) {
        let comms = config.build(1);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            c.barrier()?;
            assert_eq!(c.bcast(0, Some(&7u64))?, 7);
            assert_eq!(c.scatterv(0, Some(&[99u64]))?, 99);
            assert_eq!(c.gatherv(0, &42u64)?, Some(vec![42]));
            assert_eq!(c.gather_available(0, &5u64)?, Some(vec![Some(5)]));
            assert_eq!(c.allgatherv(&1.5f64)?, vec![1.5]);
            assert_eq!(c.allreduce(2.5, ReduceOp::Sum)?, 2.5);
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Zero-byte payloads (`()` and empty vectors) must round-trip through
/// point-to-point and collective paths on both backends.
#[test]
fn zero_byte_messages_round_trip() {
    for config in both_backends(3) {
        let comms = config.build(3);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            // p2p unit payload 0 -> 1.
            match c.rank() {
                0 => c.send(1, &())?,
                1 => c.recv::<()>(0)?,
                _ => {}
            }
            // Collectives over empty vectors.
            let empty: Vec<u64> = Vec::new();
            let got = c.bcast(0, (c.rank() == 0).then_some(&empty))?;
            assert!(got.is_empty());
            let parts: Option<Vec<Vec<u64>>> =
                (c.rank() == 0).then(|| vec![Vec::new(); 3]);
            assert!(c.scatterv(0, parts.as_deref())?.is_empty());
            let gathered = c.allgatherv(&empty)?;
            assert_eq!(gathered, vec![Vec::<u64>::new(); 3]);
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Rooted collectives must accept any root, not just rank 0.
#[test]
fn collectives_accept_non_zero_roots() {
    for config in both_backends(4) {
        let comms = config.build(4);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            let root = 2;
            let value = c.bcast(root, (c.rank() == root).then_some(&31u64))?;
            assert_eq!(value, 31);

            let parts: Option<Vec<u64>> =
                (c.rank() == root).then(|| (0..4).map(|r| r * 10).collect());
            let mine = c.scatterv(root, parts.as_deref())?;
            assert_eq!(mine, c.rank() as u64 * 10);

            let gathered = c.gatherv(root, &(c.rank() as u64 + 100))?;
            if c.rank() == root {
                assert_eq!(gathered, Some(vec![100, 101, 102, 103]));
            } else {
                assert_eq!(gathered, None);
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Seeded-scheduler interleaving test for the threaded barrier: each
/// rank perturbs its arrival time with a seeded per-rank LCG, then the
/// ranks count generations through a shared atomic. If the
/// sense-reversing barrier ever let a rank slip a generation, a rank
/// would observe a counter that is not a multiple of the communicator
/// size. Several seeds exercise different interleavings.
#[test]
fn threaded_barrier_survives_seeded_interleavings() {
    const SIZE: usize = 4;
    const GENERATIONS: usize = 25;
    for seed in [1u64, 7, 42, 1234] {
        let counter = AtomicUsize::new(0);
        let comms = RuntimeConfig::thread().build(SIZE);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            // xorshift-ish LCG, deterministic per (seed, rank).
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(c.rank() as u64 + 1);
            for gen in 0..GENERATIONS {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // 0..=127 microseconds of scheduler noise.
                let jitter = (state >> 33) % 128;
                std::thread::sleep(std::time::Duration::from_micros(jitter));
                counter.fetch_add(1, Ordering::SeqCst);
                c.barrier()?;
                // After the barrier every rank of this generation has
                // incremented: the counter is exactly SIZE*(gen+1).
                assert_eq!(
                    counter.load(Ordering::SeqCst),
                    SIZE * (gen + 1),
                    "seed {seed}: barrier generation leaked"
                );
                c.barrier()?;
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}
