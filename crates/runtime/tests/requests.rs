//! Integration tests for the nonblocking request API: edge cases
//! (drop without `wait`, completion-order independence, zero-byte
//! payloads, non-zero roots, fault-plan deaths observed at `wait`)
//! and the virtual-time overlap contract (fault-free request runs are
//! bit-identical to the blocking path; compute between post and
//! `wait` hides communication).

use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_ranks, wait_all, AlgorithmPolicy, Communicator, DeathRule, FaultPlan, Progress, Request,
    RuntimeConfig, RuntimeError,
};

fn both_backends(size: usize) -> Vec<RuntimeConfig> {
    vec![
        RuntimeConfig::thread(),
        RuntimeConfig::sim(size, LinkModel::ethernet()),
    ]
}

fn all_policies() -> Vec<AlgorithmPolicy> {
    vec![
        AlgorithmPolicy::hub(),
        AlgorithmPolicy::ring(),
        AlgorithmPolicy::tree(),
    ]
}

/// `isend`/`irecv` round-trip typed payloads on both backends.
#[test]
fn isend_irecv_round_trip() {
    for config in both_backends(2) {
        let comms = config.build(2);
        let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                let req = c.isend(1, &vec![1.5f64, -2.5])?;
                req.wait()?;
            } else {
                let req = c.irecv::<Vec<f64>>(0)?;
                assert_eq!(req.wait()?, vec![1.5, -2.5]);
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Dropping a `RecvRequest` without `wait` cancels it without losing
/// the message: a later blocking `recv` still delivers it. Dropping a
/// `SendRequest` without `wait` never loses the message either.
#[test]
fn dropped_requests_neither_deadlock_nor_lose_messages() {
    for config in both_backends(2) {
        let comms = config.build(2);
        let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                // Send dropped without wait: message must still arrive.
                drop(c.isend(1, &41u64)?);
                c.send(1, &42u64)?;
            } else {
                // Receive posted then cancelled: the mailbox keeps
                // both messages, FIFO order intact.
                drop(c.irecv::<u64>(0)?);
                assert_eq!(c.recv::<u64>(0)?, 41);
                assert_eq!(c.recv::<u64>(0)?, 42);
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Dropping a collective request without `wait` completes the
/// collective silently, so peers that called the blocking `wait` do
/// not deadlock at the closing barrier.
#[test]
fn dropped_collective_request_completes_for_peers() {
    for config in both_backends(3) {
        let comms = config.build(3);
        let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
            let req = c.ibcast::<u64>(0, (c.rank() == 0).then_some(&9))?;
            if c.rank() == 2 {
                drop(req); // completes on drop
            } else {
                assert_eq!(req.wait()?, 9);
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// `wait_all` completes every request regardless of the order their
/// messages arrive: rank 0 posts receives from every peer in rank
/// order, while peers send in reverse arrival order.
#[test]
fn wait_all_is_completion_order_independent() {
    for config in both_backends(4) {
        let comms = config.build(4);
        let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                let reqs = (1..4)
                    .map(|src| c.irecv::<u64>(src))
                    .collect::<Result<Vec<_>, _>>()?;
                let got = wait_all(reqs)?;
                assert_eq!(got, vec![10, 20, 30]);
            } else {
                // Stagger so higher ranks usually land first; the
                // result must not depend on it.
                std::thread::sleep(std::time::Duration::from_millis(
                    (4 - c.rank()) as u64 * 10,
                ));
                c.isend(0, &(c.rank() as u64 * 10))?.wait()?;
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// A zero-byte `irecv` (unit payload) completes like any other.
#[test]
fn zero_byte_irecv_completes() {
    for config in both_backends(2) {
        let comms = config.build(2);
        let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                c.isend(1, &())?.wait()?;
            } else {
                c.irecv::<()>(0)?.wait()?;
            }
            Ok(())
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// `ibcast` accepts any root and yields the same value on every rank,
/// under every schedule the policy can resolve.
#[test]
fn ibcast_accepts_non_zero_roots_under_every_policy() {
    for policy in all_policies() {
        for config in both_backends(4) {
            let comms = config.with_algorithms(policy).build(4);
            let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
                let root = 2;
                let req = c.ibcast::<Vec<u64>>(
                    root,
                    (c.rank() == root).then(|| vec![5, 6, 7]).as_ref(),
                )?;
                assert_eq!(req.wait()?, vec![5, 6, 7]);
                Ok(())
            });
            out.into_iter().for_each(|r| r.unwrap());
        }
    }
}

/// `iallgatherv` matches the blocking `allgatherv` result under every
/// schedule, and `test` eventually completes it without `wait`.
#[test]
fn iallgatherv_matches_blocking_under_every_policy() {
    for policy in all_policies() {
        for config in both_backends(4) {
            let comms = config.with_algorithms(policy).build(4);
            let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
                let mut req = c.iallgatherv(&(c.rank() as u64 + 100))?;
                let values = loop {
                    match req.test()? {
                        Progress::Ready(v) => break v,
                        Progress::Pending(r) => {
                            req = r;
                            std::thread::yield_now();
                        }
                    }
                };
                assert_eq!(values, vec![100, 101, 102, 103]);
                Ok(())
            });
            out.into_iter().for_each(|r| r.unwrap());
        }
    }
}

/// Posting a second collective request before completing the first is
/// a typed `RequestBusy` error, not a corrupted rendezvous.
#[test]
fn second_outstanding_collective_request_is_rejected() {
    let comms = RuntimeConfig::thread().build(2);
    let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
        let first = c.iallgatherv(&1u64)?;
        match c.iallgatherv(&2u64) {
            Err(RuntimeError::RequestBusy { rank, .. }) => assert_eq!(rank, c.rank()),
            Err(other) => panic!("expected RequestBusy, got {other:?}"),
            Ok(_) => panic!("expected RequestBusy, got a posted request"),
        }
        first.wait()?;
        Ok(())
    });
    out.into_iter().for_each(|r| r.unwrap());
}

/// A fault-plan fail-stop death is observed at `wait` as the same
/// typed error the blocking path reports.
#[test]
fn fault_plan_death_surfaces_at_wait() {
    for config in both_backends(2) {
        let plan = FaultPlan {
            deadline: Some(2.0),
            deaths: vec![DeathRule {
                rank: 1,
                after_ops: 0,
            }],
            ..FaultPlan::default()
        };
        let comms = config.with_plan(plan).build(2);
        let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
            if c.rank() == 0 {
                let req = c.irecv::<u64>(1)?;
                match req.wait() {
                    Err(RuntimeError::RankDead { rank: 1, .. }) => Ok(()),
                    other => panic!("expected RankDead{{1}}, got {other:?}"),
                }
            } else {
                // First op trips the scheduled death.
                match c.isend(0, &1u64) {
                    Err(RuntimeError::RankDead { rank: 1, .. }) => Ok(()),
                    Err(other) => panic!("expected own death, got {other:?}"),
                    Ok(_) => panic!("expected own death, got a posted send"),
                }
            }
        });
        out.into_iter().for_each(|r| r.unwrap());
    }
}

/// Fault-free request-based collectives with no compute between post
/// and `wait` leave the virtual clocks **bit-identical** to the
/// blocking path — the contract that makes the request API a safe
/// drop-in.
#[test]
fn fault_free_requests_are_bit_identical_to_blocking() {
    for policy in all_policies() {
        let blocking = {
            let (comms, handle) = RuntimeConfig::sim(4, LinkModel::ethernet())
                .with_algorithms(policy)
                .build_with_handle(4);
            let out = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
                let payload = vec![7u64; 32];
                let v = c.bcast(1, (c.rank() == 1).then_some(&payload))?;
                assert_eq!(v.len(), 32);
                let all = c.allgatherv(&(c.rank() as u64))?;
                assert_eq!(all, vec![0, 1, 2, 3]);
                Ok(())
            });
            out.into_iter().for_each(|r| r.unwrap());
            handle.virtual_time().unwrap()
        };
        let requests = {
            let (comms, handle) = RuntimeConfig::sim(4, LinkModel::ethernet())
                .with_algorithms(policy)
                .build_with_handle(4);
            let out = run_ranks(comms, |c| -> Result<(), RuntimeError> {
                let v = c
                    .ibcast::<Vec<u64>>(1, (c.rank() == 1).then(|| vec![7u64; 32]).as_ref())?
                    .wait()?;
                assert_eq!(v.len(), 32);
                let all = c.iallgatherv(&(c.rank() as u64))?.wait()?;
                assert_eq!(all, vec![0, 1, 2, 3]);
                Ok(())
            });
            out.into_iter().for_each(|r| r.unwrap());
            handle.virtual_time().unwrap()
        };
        assert_eq!(
            blocking.to_bits(),
            requests.to_bits(),
            "policy {policy:?}: blocking {blocking} vs requests {requests}"
        );
    }
}

/// Compute credited between post and `wait` hides communication: the
/// pipelined virtual makespan is strictly smaller than post-compute
/// (blocking order) and never smaller than the compute alone.
#[test]
fn advance_compute_overlaps_collective_cost() {
    for policy in all_policies() {
        let vtime_of = |overlap: bool| {
            let (comms, handle) = RuntimeConfig::sim(4, LinkModel::ethernet())
                .with_algorithms(policy)
                .build_with_handle(4);
            let out = run_ranks(comms, move |mut c| -> Result<(), RuntimeError> {
                let payload = vec![3u64; 4096];
                let compute = 0.5;
                for _ in 0..4 {
                    if overlap {
                        let req =
                            c.ibcast::<Vec<u64>>(0, (c.rank() == 0).then_some(&payload))?;
                        c.advance_compute(compute)?;
                        req.wait()?;
                    } else {
                        c.bcast::<Vec<u64>>(0, (c.rank() == 0).then_some(&payload))?;
                        c.advance_compute(compute)?;
                    }
                }
                Ok(())
            });
            out.into_iter().for_each(|r| r.unwrap());
            handle.virtual_time().unwrap()
        };
        let blocking = vtime_of(false);
        let pipelined = vtime_of(true);
        assert!(
            pipelined < blocking,
            "policy {policy:?}: pipelined {pipelined} !< blocking {blocking}"
        );
        assert!(
            pipelined >= 4.0 * 0.5,
            "policy {policy:?}: pipelined {pipelined} below pure compute"
        );
    }
}
