//! Cross-algorithm parity suite: every collective must produce
//! **bitwise identical** results under the `hub`, `ring`, `tree` and
//! `auto` policies on fault-free plans — including size-1
//! communicators, zero-byte payloads and non-zero roots — and all
//! survivors must agree on results under seeded fault plans.
//!
//! This is the contract that makes `--collectives` a pure performance
//! knob: switching schedules never changes an answer, only the
//! simulated communication time (see `docs/RUNTIME.md` §6).

use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_ranks, AlgorithmPolicy, Communicator, FaultPlan, ReduceOp, RuntimeConfig, RuntimeError,
    ThreadedComm,
};
use proptest::prelude::*;

/// The non-default policies, compared against the `hub` baseline.
fn challenger_policies() -> Vec<(&'static str, AlgorithmPolicy)> {
    vec![
        ("ring", AlgorithmPolicy::ring()),
        ("tree", AlgorithmPolicy::tree()),
        ("auto", AlgorithmPolicy::auto()),
    ]
}

/// Deterministic pseudo-random payload for `(seed, rank)` — finite
/// doubles with full-mantissa noise so float-identity bugs cannot hide
/// behind round numbers.
fn payload(seed: u64, rank: usize, len: usize) -> Vec<f64> {
    let mut state = seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1e3 - 500.0
        })
        .collect()
}

/// What one rank observed from a full sweep of the collective API.
/// Floats are stored as bits so equality is *bitwise*.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Transcript {
    bcast: Vec<u64>,
    scatter: Vec<u64>,
    gather_root: Option<Vec<Vec<u64>>>,
    gather_avail: Option<Vec<Option<Vec<u64>>>>,
    allgather: Vec<Vec<u64>>,
    allgather_avail: Vec<Option<Vec<u64>>>,
    sum: u64,
    min: u64,
    max: u64,
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs every collective once on `c` and records the results.
fn sweep(
    mut c: ThreadedComm,
    seed: u64,
    root: usize,
    len: usize,
) -> Result<Transcript, RuntimeError> {
    let rank = c.rank();
    let size = c.size();
    c.barrier()?;

    let own = payload(seed, rank, len);
    let bcast = c.bcast(root, (rank == root).then_some(&own))?;

    let parts: Option<Vec<Vec<f64>>> = (rank == root)
        .then(|| (0..size).map(|r| payload(seed ^ 0xABCD, r, (r + len) % 5)).collect());
    let scatter = c.scatterv(root, parts.as_deref())?;

    let gather_root = c.gatherv(root, &own)?;
    let gather_avail = c.gather_available(root, &own)?;
    let allgather = c.allgatherv(&own)?;
    let allgather_avail = c.allgatherv_available(&own)?;

    let contribution = own.first().copied().unwrap_or(0.125 * (rank as f64 + 1.0));
    let sum = c.allreduce(contribution, ReduceOp::Sum)?;
    let min = c.allreduce(contribution, ReduceOp::Min)?;
    let max = c.allreduce(contribution, ReduceOp::Max)?;
    c.barrier()?;

    Ok(Transcript {
        bcast: bits(&bcast),
        scatter: bits(&scatter),
        gather_root: gather_root.map(|g| g.iter().map(|v| bits(v)).collect()),
        gather_avail: gather_avail
            .map(|g| g.into_iter().map(|s| s.map(|v| bits(&v))).collect()),
        allgather: allgather.iter().map(|v| bits(v)).collect(),
        allgather_avail: allgather_avail
            .into_iter()
            .map(|s| s.map(|v| bits(&v)))
            .collect(),
        sum: sum.to_bits(),
        min: min.to_bits(),
        max: max.to_bits(),
    })
}

/// Runs the sweep on a thread-backend communicator of `size` under
/// `policy`, unwrapping every rank's result.
fn run_policy(policy: AlgorithmPolicy, size: usize, seed: u64, root: usize, len: usize) -> Vec<Transcript> {
    let comms = RuntimeConfig::thread().with_algorithms(policy).build(size);
    run_ranks(comms, |c| sweep(c, seed, root, len))
        .into_iter()
        .map(|r| r.expect("fault-free sweep failed"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: on random payloads, random communicator
    /// sizes (including 1), random roots (including root != 0) and
    /// random lengths (including 0 — zero-byte payloads), every policy
    /// produces *bitwise* the same transcript as the hub baseline on
    /// every rank.
    #[test]
    fn collectives_bitwise_match_hub_on_fault_free_plans(
        seed in 0u64..1_000_000,
        size in 1usize..9,
        root_pick in 0usize..64,
        len in 0usize..17,
    ) {
        let root = root_pick % size;
        let baseline = run_policy(AlgorithmPolicy::hub(), size, seed, root, len);
        for (name, policy) in challenger_policies() {
            let got = run_policy(policy, size, seed, root, len);
            prop_assert_eq!(&got, &baseline, "policy {} diverges from hub", name);
        }
    }
}

/// The simulated backend must agree with the threaded backend — and
/// with itself across policies — on the exact same transcripts, while
/// advancing different virtual clocks per schedule.
#[test]
fn sim_backend_matches_thread_backend_across_policies() {
    let (seed, size, root, len) = (414243, 6, 4, 7);
    let baseline = run_policy(AlgorithmPolicy::hub(), size, seed, root, len);
    for (name, policy) in challenger_policies() {
        let comms = RuntimeConfig::sim(size, LinkModel::ethernet())
            .with_algorithms(policy)
            .build(size);
        let got: Vec<Transcript> = run_ranks(comms, |c| sweep(c, seed, root, len))
            .into_iter()
            .map(|r| r.expect("fault-free sim sweep failed"))
            .collect();
        assert_eq!(got, baseline, "sim policy {name} diverges from thread hub");
    }
}

/// Recoverable faults (delays, stragglers, drops absorbed by bounded
/// retry) slow the job down but never change an answer: under a seeded
/// fault plan, every policy still reproduces the fault-free hub
/// transcript bit-for-bit.
#[test]
fn recoverable_faults_do_not_change_any_result() {
    let (seed, size, root, len) = (777, 5, 2, 6);
    let plan = FaultPlan::from_json(
        r#"{"deadline": 20.0,
            "delays": [{"every": 3, "seconds": 0.0002}],
            "drops": [{"every": 7, "max_retries": 6, "backoff_seconds": 0.0001}],
            "stragglers": [{"rank": 1, "comm_seconds": 0.0001, "compute_factor": 1.0}]}"#,
    )
    .expect("valid plan");
    let baseline = run_policy(AlgorithmPolicy::hub(), size, seed, root, len);
    for (name, policy) in [("hub", AlgorithmPolicy::hub())]
        .into_iter()
        .chain(challenger_policies())
    {
        let comms = RuntimeConfig::thread()
            .with_algorithms(policy)
            .with_plan(plan.clone())
            .build(size);
        let got: Vec<Transcript> = run_ranks(comms, |c| sweep(c, seed, root, len))
            .into_iter()
            .map(|r| r.expect("recoverable faults must not surface as errors"))
            .collect();
        assert_eq!(got, baseline, "policy {name} diverges under recoverable faults");
    }
}

/// Fail-stop death of a non-root rank before a rootless collective:
/// under every policy all survivors agree on the same availability
/// vector (the dead rank's slot is `None`, everyone else's survives)
/// and on the same bitwise reduction over the surviving contributions.
#[test]
fn survivors_agree_under_rank_death() {
    let seed = 90125u64;
    let size = 6usize;
    let victim = 5usize;
    // The victim dies after its first operation (the opening barrier),
    // so by the time the collectives start the membership is settled —
    // every schedule then degrades edge-wise in the same way.
    let plan = FaultPlan::from_json(
        &format!(r#"{{"deadline": 20.0, "deaths": [{{"rank": {victim}, "after_ops": 1}}]}}"#),
    )
    .expect("valid plan");

    for (name, policy) in [("hub", AlgorithmPolicy::hub())]
        .into_iter()
        .chain(challenger_policies())
    {
        let comms = RuntimeConfig::thread()
            .with_algorithms(policy)
            .with_plan(plan.clone())
            .build(size);
        let out = run_ranks(comms, move |mut c| -> Result<_, RuntimeError> {
            let rank = c.rank();
            c.barrier()?; // victim completes this, then dies
            c.barrier()?; // settles: survivors observe the death
            let own = payload(seed, rank, 4);
            let slots = c.allgatherv_available(&own)?;
            let contribution = own[0];
            let sum = c.allreduce(contribution, ReduceOp::Sum)?;
            let avail: Vec<Option<Vec<u64>>> =
                slots.into_iter().map(|s| s.map(|v| bits(&v))).collect();
            Ok((avail, sum.to_bits()))
        });

        let mut survivors = Vec::new();
        for (rank, result) in out.into_iter().enumerate() {
            match result {
                Ok(t) => survivors.push((rank, t)),
                Err(e) => assert_eq!(rank, victim, "unexpected failure on rank {rank}: {e}"),
            }
        }
        assert_eq!(survivors.len(), size - 1, "policy {name}: wrong survivor count");
        let (_, reference) = &survivors[0];
        for (rank, t) in &survivors {
            assert_eq!(t, reference, "policy {name}: survivor {rank} disagrees");
            assert!(t.0[victim].is_none(), "policy {name}: dead slot must be None");
            for (r, slot) in t.0.iter().enumerate() {
                if r != victim {
                    assert!(slot.is_some(), "policy {name}: live slot {r} lost");
                }
            }
        }
        // The reduction folded exactly the survivors, in rank order.
        let expected: f64 = (0..size)
            .filter(|&r| r != victim)
            .map(|r| payload(seed, r, 4)[0])
            .fold(0.0, |acc, x| acc + x);
        assert_eq!(survivors[0].1 .1, expected.to_bits(), "policy {name}: fold order broke");
    }
}

/// The schedules must actually be cheaper where it matters: on the
/// simulated backend at p = 16, a 1 KiB `allgatherv` plus an
/// `allreduce` under ring/tree finishes in strictly less virtual time
/// than under the serialized hub — while producing identical bits.
#[test]
fn ring_and_tree_beat_hub_virtual_time_at_p16() {
    let size = 16usize;
    let value: Vec<f64> = (0..128).map(|i| i as f64 * 0.5).collect(); // 1 KiB + length prefix

    let mut vtimes = Vec::new();
    let mut results = Vec::new();
    for policy in [
        AlgorithmPolicy::hub(),
        AlgorithmPolicy::ring(),
        AlgorithmPolicy::tree(),
    ] {
        let (comms, handle) = RuntimeConfig::sim(size, LinkModel::ethernet())
            .with_algorithms(policy)
            .build_with_handle(size);
        let out = run_ranks(comms, |mut c| -> Result<_, RuntimeError> {
            let mut own = value.clone();
            own[0] += c.rank() as f64;
            let gathered = c.allgatherv(&own)?;
            let reduced = c.allreduce(own[1], ReduceOp::Sum)?;
            Ok((
                gathered
                    .iter()
                    .map(|v| bits(v))
                    .collect::<Vec<_>>(),
                reduced.to_bits(),
            ))
        });
        let ranks: Vec<_> = out.into_iter().map(|r| r.expect("sim run failed")).collect();
        results.push(ranks);
        vtimes.push(handle.virtual_time().expect("sim backend has virtual clocks"));
    }

    assert_eq!(results[1], results[0], "ring result differs from hub");
    assert_eq!(results[2], results[0], "tree result differs from hub");
    let (hub, ring, tree) = (vtimes[0], vtimes[1], vtimes[2]);
    assert!(
        ring < hub && tree < hub,
        "schedules must beat the hub at p=16: hub={hub:.6}, ring={ring:.6}, tree={tree:.6}"
    );
}
