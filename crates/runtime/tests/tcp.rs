//! The TCP transport against the in-process backends, over real
//! loopback sockets.
//!
//! Each "process" of the job is a thread of this test binary holding
//! its own full data plane — nothing is shared but the sockets, so
//! the coverage is the real multi-process wire path (rendezvous,
//! frames, reader threads, hub barrier) without the flakiness of
//! spawning executables. The contract under test:
//!
//! * every collective, under every [`AlgorithmPolicy`], produces
//!   **bitwise** the transcript of the threaded backend;
//! * recoverable sender-side fault injection (delays, stragglers,
//!   drops absorbed by retry) changes no answer;
//! * a peer's graceful exit maps onto the agreed-membership death
//!   path: survivors agree, the dead slot is `None`;
//! * the per-operation deadline is anchored at **operation entry** on
//!   both backends — a multi-receive collective gets one deadline,
//!   not one per internal receive (regression test for the op-entry
//!   anchoring fix).

use std::net::TcpListener;
use std::time::Duration;

use fupermod_runtime::net::{connect, connect_with_listener, TcpComm, TcpConfig};
use fupermod_runtime::{
    run_ranks, AlgorithmPolicy, Communicator, FaultPlan, ReduceOp, RuntimeConfig, RuntimeError,
};

/// Runs `world` TCP ranks as threads of this process, each with its
/// own data plane, joined over loopback. `f` runs per rank; returning
/// early (Ok or Err) tears that rank down gracefully (BYE to peers).
fn run_tcp<T, F>(
    world: usize,
    policy: AlgorithmPolicy,
    plan: &FaultPlan,
    f: F,
) -> Vec<Result<T, RuntimeError>>
where
    T: Send,
    F: Fn(&mut TcpComm) -> Result<T, RuntimeError> + Sync,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut listener = Some(listener);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = TcpConfig::new(rank, world, addr.clone())
                    .with_algorithms(policy)
                    .with_plan(plan.clone())
                    .with_boot_timeout(Duration::from_secs(20));
                let listener = (rank == 0).then(|| listener.take().expect("rank 0 listener"));
                let f = &f;
                s.spawn(move || {
                    let mut comm = match listener {
                        Some(l) => connect_with_listener(cfg, l)?,
                        None => connect(cfg)?,
                    };
                    let result = f(&mut comm);
                    comm.shutdown();
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// Deterministic pseudo-random payload for `(seed, rank)` (the parity
/// suite's generator: full-mantissa noise, so float-identity bugs
/// cannot hide behind round numbers).
fn payload(seed: u64, rank: usize, len: usize) -> Vec<f64> {
    let mut state = seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 1e3 - 500.0
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// What one rank observed from a full sweep of the collective API,
/// floats as bits so equality is bitwise.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Transcript {
    bcast: Vec<u64>,
    scatter: Vec<u64>,
    gather_root: Option<Vec<Vec<u64>>>,
    allgather: Vec<Vec<u64>>,
    allgather_avail: Vec<Option<Vec<u64>>>,
    sum: u64,
    max: u64,
}

/// Runs every collective once on `c` (any backend) and records the
/// results.
fn sweep<C: Communicator>(
    c: &mut C,
    seed: u64,
    root: usize,
    len: usize,
) -> Result<Transcript, RuntimeError> {
    let rank = c.rank();
    let size = c.size();
    c.barrier()?;

    let own = payload(seed, rank, len);
    let bcast = c.bcast(root, (rank == root).then_some(&own))?;

    let parts: Option<Vec<Vec<f64>>> = (rank == root)
        .then(|| (0..size).map(|r| payload(seed ^ 0xABCD, r, (r + len) % 5)).collect());
    let scatter = c.scatterv(root, parts.as_deref())?;

    let gather_root = c.gatherv(root, &own)?;
    let allgather = c.allgatherv(&own)?;
    let allgather_avail = c.allgatherv_available(&own)?;

    let contribution = own.first().copied().unwrap_or(0.125 * (rank as f64 + 1.0));
    let sum = c.allreduce(contribution, ReduceOp::Sum)?;
    let max = c.allreduce(contribution, ReduceOp::Max)?;
    c.barrier()?;

    Ok(Transcript {
        bcast: bits(&bcast),
        scatter: bits(&scatter),
        gather_root: gather_root.map(|g| g.iter().map(|v| bits(v)).collect()),
        allgather: allgather.iter().map(|v| bits(v)).collect(),
        allgather_avail: allgather_avail
            .into_iter()
            .map(|s| s.map(|v| bits(&v)))
            .collect(),
        sum: sum.to_bits(),
        max: max.to_bits(),
    })
}

/// The threaded-backend reference transcript.
fn threaded_baseline(
    policy: AlgorithmPolicy,
    size: usize,
    seed: u64,
    root: usize,
    len: usize,
) -> Vec<Transcript> {
    let comms = RuntimeConfig::thread().with_algorithms(policy).build(size);
    run_ranks(comms, |mut c| sweep(&mut c, seed, root, len))
        .into_iter()
        .map(|r| r.expect("fault-free threaded sweep failed"))
        .collect()
}

#[test]
fn tcp_send_recv_round_trip() {
    let out = run_tcp(
        2,
        AlgorithmPolicy::default(),
        &FaultPlan::none(),
        |c| -> Result<Vec<u64>, RuntimeError> {
            if c.rank() == 0 {
                c.send(1, &vec![1.5f64, -2.25, 3.125])?;
                let echoed: Vec<f64> = c.recv(1)?;
                let empty: Vec<f64> = c.recv(1)?; // zero-byte payload
                assert!(empty.is_empty());
                Ok(bits(&echoed))
            } else {
                let got: Vec<f64> = c.recv(0)?;
                c.send(0, &got)?;
                c.send(0, &Vec::<f64>::new())?;
                Ok(bits(&got))
            }
        },
    );
    let a = out[0].as_ref().expect("rank 0 failed");
    let b = out[1].as_ref().expect("rank 1 failed");
    assert_eq!(a, b);
    assert_eq!(a, &bits(&[1.5, -2.25, 3.125]));
}

#[test]
fn tcp_collectives_bitwise_match_threaded_under_every_policy() {
    let (world, seed, root, len) = (4usize, 515253u64, 1usize, 5usize);
    for (name, policy) in [
        ("hub", AlgorithmPolicy::hub()),
        ("ring", AlgorithmPolicy::ring()),
        ("tree", AlgorithmPolicy::tree()),
        ("auto", AlgorithmPolicy::auto()),
    ] {
        let baseline = threaded_baseline(policy, world, seed, root, len);
        let got: Vec<Transcript> = run_tcp(world, policy, &FaultPlan::none(), |c| {
            sweep(c, seed, root, len)
        })
        .into_iter()
        .map(|r| r.expect("fault-free tcp sweep failed"))
        .collect();
        assert_eq!(got, baseline, "tcp policy {name} diverges from threaded");
    }
}

#[test]
fn tcp_recoverable_faults_do_not_change_any_result() {
    let (world, seed, root, len) = (3usize, 808u64, 2usize, 6usize);
    let plan = FaultPlan::from_json(
        r#"{"deadline": 20.0,
            "delays": [{"every": 3, "seconds": 0.0002}],
            "drops": [{"every": 7, "max_retries": 6, "backoff_seconds": 0.0001}],
            "stragglers": [{"rank": 1, "comm_seconds": 0.0001, "compute_factor": 1.0}]}"#,
    )
    .expect("valid plan");
    let baseline = threaded_baseline(AlgorithmPolicy::hub(), world, seed, root, len);
    let got: Vec<Transcript> = run_tcp(world, AlgorithmPolicy::hub(), &plan, |c| {
        sweep(c, seed, root, len)
    })
    .into_iter()
    .map(|r| r.expect("recoverable faults must not surface as errors"))
    .collect();
    assert_eq!(got, baseline, "tcp transcript diverges under recoverable faults");
}

/// What each survivor observed after the victim's exit:
/// `allgatherv_available` slots (bits) and the fold result (bits).
type SurvivorView = (Vec<Option<Vec<u64>>>, u64);

#[test]
fn tcp_graceful_exit_maps_onto_agreed_death() {
    let world = 3usize;
    let victim = 2usize;
    let out = run_tcp(
        world,
        AlgorithmPolicy::hub(),
        &FaultPlan::none(),
        |c| -> Result<Option<SurvivorView>, RuntimeError> {
            let rank = c.rank();
            c.barrier()?;
            if rank == victim {
                // Early return: the helper tears this rank down (BYE)
                // while its peers keep working.
                return Ok(None);
            }
            c.barrier()?; // completes once the victim's goodbye lands
            let own = vec![rank as f64 + 0.5; 2];
            let slots = c.allgatherv_available(&own)?;
            let sum = c.allreduce(own[0], ReduceOp::Sum)?;
            Ok(Some((
                slots.into_iter().map(|s| s.map(|v| bits(&v))).collect(),
                sum.to_bits(),
            )))
        },
    );
    let mut survivors = Vec::new();
    for (rank, r) in out.into_iter().enumerate() {
        match r.unwrap_or_else(|e| panic!("rank {rank} failed: {e}")) {
            Some(t) => survivors.push(t),
            None => assert_eq!(rank, victim),
        }
    }
    assert_eq!(survivors.len(), world - 1);
    let (slots, sum) = &survivors[0];
    for t in &survivors {
        assert_eq!(t, &survivors[0], "survivors disagree after graceful exit");
    }
    assert!(slots[victim].is_none(), "departed rank's slot must be None");
    assert!(slots[0].is_some() && slots[1].is_some(), "live slots lost");
    assert_eq!(*sum, (0.5f64 + 1.5).to_bits(), "fold covered wrong members");
}

/// The op-entry deadline regression: root's `gatherv` performs its
/// internal receives sequentially, so with receives arriving at
/// ~0.25 s and ~0.55 s a 0.4 s deadline anchored at *operation entry*
/// must fire — while a (buggy) per-receive anchor would grant each
/// receive a fresh 0.4 s and let the whole collective take ~0.55 s.
/// Both backends must agree.
fn deadline_workload(c: &mut impl Communicator, root: usize) -> Result<(), RuntimeError> {
    let rank = c.rank();
    c.barrier()?; // align t = 0 across ranks
    match rank {
        0 => std::thread::sleep(Duration::from_millis(250)),
        2 => std::thread::sleep(Duration::from_millis(550)),
        _ => {}
    }
    let _ = c.gatherv(root, &vec![rank as f64; 2])?;
    Ok(())
}

#[test]
fn deadline_is_anchored_at_op_entry_on_both_backends() {
    let world = 3usize;
    let root = 1usize; // not the barrier hub, so survivors settle cleanly
    let plan = FaultPlan::from_json(r#"{"deadline": 0.4}"#).expect("valid plan");

    let threaded = {
        let comms = RuntimeConfig::thread()
            .with_plan(plan.clone())
            .with_algorithms(AlgorithmPolicy::hub())
            .build(world);
        run_ranks(comms, move |mut c| deadline_workload(&mut c, root))
    };
    let tcp = run_tcp(world, AlgorithmPolicy::hub(), &plan, |c| {
        deadline_workload(c, root)
    });

    for (backend, out) in [("threaded", threaded), ("tcp", tcp)] {
        match &out[root] {
            Err(RuntimeError::Timeout { op, rank, .. }) => {
                assert_eq!(*rank, root, "{backend}: wrong timed-out rank");
                assert_eq!(*op, "gatherv", "{backend}: wrong timed-out op");
            }
            other => panic!(
                "{backend}: root must time out under op-entry anchoring, got {other:?}"
            ),
        }
    }
}
