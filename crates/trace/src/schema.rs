//! A JSON-Schema-subset validator (std-only).
//!
//! The build environment is offline, so tracetool output can't be
//! checked with `jsonschema`/`ajv`. This module implements the small
//! keyword subset the committed schemas
//! (`scripts/tracetool_schema.json`) actually use:
//!
//! `type` (string or array of strings, incl. `"integer"`),
//! `required`, `properties`, `additionalProperties` (boolean form),
//! `items` (single-schema form), `minItems`, and `enum`.
//!
//! Unknown keywords are ignored (like a full validator would ignore
//! annotations), so the committed schema files stay forward-portable
//! to real validators.

use crate::json::Json;

/// Validates `value` against `schema`.
///
/// # Errors
///
/// Returns every violation found, as `"<path>: <message>"` strings
/// (path `$` is the document root).
pub fn validate(schema: &Json, value: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check(schema: &Json, value: &Json, path: &str, errors: &mut Vec<String>) {
    let Json::Obj(_) = schema else {
        // `true` means "anything"; anything else is an authoring bug.
        if !matches!(schema, Json::Bool(true)) {
            errors.push(format!("{path}: schema is not an object"));
        }
        return;
    };

    if let Some(ty) = schema.get("type") {
        if !type_matches(ty, value) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                type_names(ty),
                value.type_name()
            ));
            return; // Follow-on keyword checks would only cascade.
        }
    }

    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        if !allowed.iter().any(|a| a == value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Json::Obj(members) = value {
        if let Some(Json::Arr(required)) = schema.get("required") {
            for r in required {
                if let Json::Str(key) = r {
                    if value.get(key).is_none() {
                        errors.push(format!("{path}: missing required member \"{key}\""));
                    }
                }
            }
        }
        let props = schema.get("properties").and_then(Json::as_object);
        if let Some(props) = props {
            for (key, sub) in props {
                if let Some(v) = value.get(key) {
                    check(sub, v, &format!("{path}.{key}"), errors);
                }
            }
        }
        if let Some(Json::Bool(false)) = schema.get("additionalProperties") {
            for (key, _) in members {
                let known = props.is_some_and(|p| p.iter().any(|(k, _)| k == key));
                if !known {
                    errors.push(format!("{path}: unexpected member \"{key}\""));
                }
            }
        }
    }

    if let Json::Arr(items) = value {
        if let Some(Json::Num(min)) = schema.get("minItems") {
            if (items.len() as f64) < *min {
                errors.push(format!(
                    "{path}: {} items, expected at least {min}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

/// Whether `value` matches a `type` keyword (string or array form).
fn type_matches(ty: &Json, value: &Json) -> bool {
    match ty {
        Json::Str(name) => one_type_matches(name, value),
        Json::Arr(names) => names.iter().any(|n| match n {
            Json::Str(name) => one_type_matches(name, value),
            _ => false,
        }),
        _ => false,
    }
}

fn one_type_matches(name: &str, value: &Json) -> bool {
    match name {
        "null" => matches!(value, Json::Null),
        "boolean" => matches!(value, Json::Bool(_)),
        "number" => matches!(value, Json::Num(_)),
        "integer" => matches!(value, Json::Num(x) if x.is_finite() && x.fract() == 0.0),
        "string" => matches!(value, Json::Str(_)),
        "array" => matches!(value, Json::Arr(_)),
        "object" => matches!(value, Json::Obj(_)),
        _ => false,
    }
}

/// Human rendering of a `type` keyword for messages.
fn type_names(ty: &Json) -> String {
    match ty {
        Json::Str(name) => name.clone(),
        Json::Arr(names) => names
            .iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join("|"),
        _ => "?".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn validates_nested_structures() {
        let schema = s(r#"{
            "type": "object",
            "required": ["name", "items"],
            "properties": {
                "name": {"type": "string"},
                "items": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["n"],
                        "properties": {"n": {"type": "integer"}}
                    }
                },
                "mode": {"enum": ["a", "b"]}
            }
        }"#);
        assert!(validate(&schema, &s(r#"{"name":"x","items":[{"n":3}],"mode":"a"}"#)).is_ok());

        let errs = validate(&schema, &s(r#"{"name":7,"items":[],"mode":"z"}"#)).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("$.name")));
        assert!(errs.iter().any(|e| e.contains("at least 1")));
        assert!(errs.iter().any(|e| e.contains("enum")));

        let errs = validate(&schema, &s(r#"{"items":[{"n":1.5}]}"#)).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing required member \"name\"")));
        assert!(errs.iter().any(|e| e.contains("$.items[0].n")));
    }

    #[test]
    fn type_arrays_allow_nullable_members() {
        let schema = s(r#"{"type":["object","null"],"required":["k"]}"#);
        assert!(validate(&schema, &s("null")).is_ok());
        assert!(validate(&schema, &s(r#"{"k":1}"#)).is_ok());
        assert!(validate(&schema, &s(r#"{}"#)).is_err());
        assert!(validate(&schema, &s("3")).is_err());
    }

    #[test]
    fn additional_properties_false_rejects_unknown_keys() {
        let schema = s(r#"{
            "type": "object",
            "properties": {"a": {"type": "number"}},
            "additionalProperties": false
        }"#);
        assert!(validate(&schema, &s(r#"{"a":1}"#)).is_ok());
        let errs = validate(&schema, &s(r#"{"a":1,"b":2}"#)).unwrap_err();
        assert!(errs[0].contains("unexpected member \"b\""));
    }

    #[test]
    fn unknown_keywords_are_ignored() {
        let schema = s(r#"{"type":"number","description":"ignored","$comment":"x"}"#);
        assert!(validate(&schema, &s("4.5")).is_ok());
    }
}
