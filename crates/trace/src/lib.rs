//! # fupermod-trace — causal trace analysis
//!
//! Post-mortem analysis for traces produced by the reproduction's
//! observability layer (`fupermod_core::trace`, schema v3):
//!
//! * [`merge`] — k-way **causal merge** of per-rank JSONL/CSV traces
//!   into one global timeline, ordered by the Lamport stamps the
//!   runtime piggybacks on its message envelopes. Deterministic:
//!   the same run traced twice (any backend, any file interleaving)
//!   merges to the identical sequence.
//! * [`report`] — per-rank compute/comm/wait decomposition,
//!   collective-round **critical path** through the recorded
//!   `(algorithm, rounds)` metadata, the dynamic-loop imbalance
//!   table, fault/retry summaries, and latency-histogram digests.
//!   Rendered as text or as summary JSON matching
//!   `scripts/tracetool_schema.json`.
//! * [`chrome`] — export to the Chrome trace-event format
//!   (`chrome://tracing`, [Perfetto](https://ui.perfetto.dev)): one
//!   track per rank, duration slices for benchmark/communication
//!   spans reconstructed barrier-aligned from the merged order.
//! * [`mod@tail`] — **live** follow of growing JSONL traces: the same
//!   causal order the batch merge produces, printed as the files
//!   grow, with rolling per-op latency quantiles (torn-write-safe;
//!   picks up files that appear late in a `--trace-dir`).
//! * [`json`] / [`schema`] — a std-only JSON parser and a small
//!   JSON-Schema-subset validator, enough to check tracetool output
//!   against committed schemas in an offline build environment.
//!
//! The `fupermod_tracetool` binary (in the facade crate) fronts all
//! of this with `merge`, `report`, `export`, `validate`, and `tail`
//! subcommands.

pub mod chrome;
pub mod json;
pub mod merge;
pub mod report;
pub mod schema;
pub mod tail;

pub use chrome::export_chrome;
pub use json::Json;
pub use merge::{event_rank, merge_events, Merge, StampedEvent};
pub use report::Report;
pub use schema::validate;
pub use tail::{tail, TailOptions};
