//! Causal merge of per-rank traces into one global timeline.
//!
//! Schema-v3 `comm` events carry a Lamport stamp and a barrier
//! generation (`fupermod_runtime` ticks the clock per operation,
//! piggybacks stamps on message envelopes, and joins all live clocks
//! at every completed barrier generation). Those stamps are a
//! schedule-independent function of the program's communication
//! structure, so sorting events by
//!
//! ```text
//! (lamport, gen, rank, per-rank sequence)
//! ```
//!
//! yields one **causally consistent, deterministic** global order: the
//! same run traced twice — even on different backends (thread vs.
//! sim), even with the per-rank streams interleaved differently in the
//! file — merges to the identical timeline.
//!
//! Non-`comm` events (benchmark samples, model updates, faults)
//! inherit the last stamp their rank recorded in file order;
//! partition/convergence events belong to the driver and attach to
//! rank 0. Events that precede any stamped event sort first, at
//! `(0, 0)`.
//!
//! The merge is **streaming**: inputs are read through
//! [`fupermod_core::trace::TraceReader`] (never fully buffered), and
//! memory is bounded by the cross-rank skew *within* each file — a
//! file that interleaves its ranks fairly merges in O(ranks) memory
//! regardless of file size. Rank sets are discovered in a cheap first
//! pass so the k-way merge knows when a queue head is final.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use fupermod_core::trace::{TraceEvent, TraceReader};
use fupermod_core::CoreError;

/// A trace event stamped with its global ordering key.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Effective Lamport stamp (own for `comm`, inherited otherwise).
    pub lamport: u64,
    /// Effective barrier generation (own for `comm`, inherited
    /// otherwise).
    pub gen: u64,
    /// Attribution rank (the event's `rank` field; driver events —
    /// `partition_step`, `dynamic_converged` — attach to rank 0).
    pub rank: usize,
    /// Per-`(source, rank)` sequence number preserving file order.
    pub seq: u64,
    /// Index of the source file the event came from (tie-break of
    /// last resort when two sources carry the same rank).
    pub source: usize,
    /// The event itself.
    pub event: TraceEvent,
}

impl StampedEvent {
    /// The total-order key the merge sorts by.
    pub fn key(&self) -> (u64, u64, usize, u64, usize) {
        (self.lamport, self.gen, self.rank, self.seq, self.source)
    }
}

/// Attribution rank of an event (driver events attach to rank 0).
pub fn event_rank(event: &TraceEvent) -> usize {
    match event {
        TraceEvent::BenchmarkSample { rank, .. }
        | TraceEvent::BenchmarkDone { rank, .. }
        | TraceEvent::ModelUpdate { rank, .. }
        | TraceEvent::Comm { rank, .. }
        | TraceEvent::Fault { rank, .. }
        | TraceEvent::Metrics { rank, .. } => *rank,
        TraceEvent::PartitionStep { .. } | TraceEvent::DynamicConverged { .. } => 0,
    }
}

/// Per-source stamping state: the last `(lamport, gen)` each rank
/// recorded, inherited by that rank's unstamped events. Public so
/// incremental consumers ([`mod@crate::tail`]) can stamp a stream
/// event-by-event under the same contract the batch merge uses.
#[derive(Debug, Default)]
pub struct Stamper {
    last: Vec<(u64, u64)>, // indexed by rank, grown on demand
    seq: Vec<u64>,
}

impl Stamper {
    /// Stamps one event of source `source` in file order.
    pub fn stamp(&mut self, source: usize, event: TraceEvent) -> StampedEvent {
        let rank = event_rank(&event);
        if rank >= self.last.len() {
            self.last.resize(rank + 1, (0, 0));
            self.seq.resize(rank + 1, 0);
        }
        if let TraceEvent::Comm { lamport, gen, .. } = &event {
            self.last[rank] = (*lamport, *gen);
        }
        let (lamport, gen) = self.last[rank];
        let seq = self.seq[rank];
        self.seq[rank] += 1;
        StampedEvent {
            lamport,
            gen,
            rank,
            seq,
            source,
            event,
        }
    }

}

/// One input of the streaming merge.
struct Source {
    reader: Option<TraceReader<std::io::BufReader<std::fs::File>>>,
    stamper: Stamper,
    /// Per-rank FIFO queues (sorted streams: Lamport stamps are
    /// monotone per rank). Indexed by rank; ranks absent from this
    /// source stay `None`.
    queues: Vec<Option<VecDeque<StampedEvent>>>,
}

impl Source {
    /// Whether every queue of a known rank is non-empty (a queue head
    /// is only comparable once present or the file is exhausted).
    fn saturated(&self) -> bool {
        self.reader.is_none()
            || self
                .queues
                .iter()
                .flatten()
                .all(|q| !q.is_empty())
    }

    /// Reads one event into its rank queue; drops the reader at EOF.
    fn pull(&mut self, source_idx: usize) -> Result<(), CoreError> {
        let Some(reader) = &mut self.reader else {
            return Ok(());
        };
        match reader.next() {
            None => {
                self.reader = None;
            }
            Some(event) => {
                let stamped = self.stamper.stamp(source_idx, event?);
                let rank = stamped.rank;
                if rank >= self.queues.len() {
                    self.queues.resize_with(rank + 1, || None);
                }
                self.queues[rank]
                    .get_or_insert_with(VecDeque::new)
                    .push_back(stamped);
            }
        }
        Ok(())
    }
}

/// Streaming k-way merge over trace files (see the module docs for
/// the ordering contract). Implements `Iterator` over stamped events
/// in global causal order.
pub struct Merge {
    sources: Vec<Source>,
    /// Schema version: the maximum declared by the inputs.
    schema: u32,
}

impl Merge {
    /// Opens `paths` for merging. The first pass discovers each
    /// file's rank set (streaming — nothing is retained but the set);
    /// the second pass is the lazy merge the iterator drives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] on unreadable files, foreign or
    /// future-schema headers, or malformed events.
    pub fn open(paths: &[PathBuf]) -> Result<Self, CoreError> {
        if paths.is_empty() {
            return Err(CoreError::Trace("merge needs at least one trace".to_owned()));
        }
        let mut sources = Vec::with_capacity(paths.len());
        let mut schema = 0;
        for path in paths {
            // Pass 1: rank discovery.
            let ranks = discover_ranks(path)?;
            // Pass 2 reader, rewound.
            let reader = TraceReader::open(path)?;
            schema = schema.max(reader.schema());
            let mut queues: Vec<Option<VecDeque<StampedEvent>>> = Vec::new();
            for r in ranks {
                if r >= queues.len() {
                    queues.resize_with(r + 1, || None);
                }
                queues[r] = Some(VecDeque::new());
            }
            sources.push(Source {
                reader: Some(reader),
                stamper: Stamper::default(),
                queues,
            });
        }
        Ok(Self { sources, schema })
    }

    /// The merged trace's schema version (maximum over the inputs).
    pub fn schema(&self) -> u32 {
        self.schema
    }

    fn next_event(&mut self) -> Result<Option<StampedEvent>, CoreError> {
        // Fill: every known queue must hold its head (or its file be
        // exhausted) before heads are comparable.
        loop {
            let mut progressed = false;
            for (i, src) in self.sources.iter_mut().enumerate() {
                while !src.saturated() {
                    src.pull(i)?;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Pop the minimum head.
        let mut best: Option<(usize, usize)> = None; // (source, rank)
        for (i, src) in self.sources.iter().enumerate() {
            for (r, q) in src.queues.iter().enumerate() {
                if let Some(head) = q.as_ref().and_then(|q| q.front()) {
                    let better = match best {
                        None => true,
                        Some((bi, br)) => {
                            let cur = self.sources[bi].queues[br]
                                .as_ref()
                                .and_then(|q| q.front())
                                .expect("best head present");
                            head.key() < cur.key()
                        }
                    };
                    if better {
                        best = Some((i, r));
                    }
                }
            }
        }
        Ok(best.map(|(i, r)| {
            self.sources[i].queues[r]
                .as_mut()
                .expect("queue exists")
                .pop_front()
                .expect("head present")
        }))
    }
}

impl Iterator for Merge {
    type Item = Result<StampedEvent, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

/// First pass of [`Merge::open`]: the set of attribution ranks a
/// trace file contains (streamed; constant memory beyond the set).
fn discover_ranks(path: &Path) -> Result<Vec<usize>, CoreError> {
    let reader = TraceReader::open(path)?;
    let mut seen: Vec<bool> = Vec::new();
    for event in reader {
        let r = event_rank(&event?);
        if r >= seen.len() {
            seen.resize(r + 1, false);
        }
        seen[r] = true;
    }
    Ok(seen
        .iter()
        .enumerate()
        .filter_map(|(r, &s)| s.then_some(r))
        .collect())
}

/// Merges in-memory per-source event lists (the same ordering
/// contract as [`Merge`], without touching the filesystem — used by
/// tests and by consumers that already hold events).
pub fn merge_events(sources: Vec<Vec<TraceEvent>>) -> Vec<StampedEvent> {
    let mut all: Vec<StampedEvent> = Vec::new();
    for (i, events) in sources.into_iter().enumerate() {
        let mut stamper = Stamper::default();
        for e in events {
            all.push(stamper.stamp(i, e));
        }
    }
    all.sort_by_key(StampedEvent::key);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(rank: usize, op: &str, lamport: u64, gen: u64) -> TraceEvent {
        TraceEvent::Comm {
            rank,
            op: op.to_owned(),
            peer: -1,
            bytes: 8,
            seconds: 1e-6,
            algorithm: "hub".to_owned(),
            rounds: 2,
            lamport,
            gen,
        }
    }

    fn sample(rank: usize, d: u64) -> TraceEvent {
        TraceEvent::BenchmarkSample {
            rank,
            d,
            rep: 0,
            time: 0.5,
            ci_rel: 0.1,
        }
    }

    #[test]
    fn merge_orders_by_lamport_then_rank() {
        // Rank 1's collective events must interleave before rank 0's
        // later ones despite arriving from a separate source.
        let src0 = vec![comm(0, "barrier", 3, 0), comm(0, "allreduce", 6, 1)];
        let src1 = vec![comm(1, "barrier", 3, 0), comm(1, "allreduce", 6, 1)];
        let merged = merge_events(vec![src0, src1]);
        let keys: Vec<(u64, usize)> = merged.iter().map(|s| (s.lamport, s.rank)).collect();
        assert_eq!(keys, [(3, 0), (3, 1), (6, 0), (6, 1)]);
    }

    #[test]
    fn unstamped_events_inherit_their_ranks_last_stamp() {
        let src = vec![
            sample(1, 10), // before any stamp: (0,0)
            comm(1, "barrier", 3, 0),
            sample(1, 20), // inherits (3,0)
            comm(1, "barrier", 7, 1),
            sample(1, 30), // inherits (7,1)
        ];
        let merged = merge_events(vec![src]);
        let stamps: Vec<(u64, u64)> = merged.iter().map(|s| (s.lamport, s.gen)).collect();
        assert_eq!(stamps, [(0, 0), (3, 0), (3, 0), (7, 1), (7, 1)]);
        // File order within the rank is preserved at equal stamps.
        assert!(matches!(merged[1].event, TraceEvent::Comm { .. }));
        assert!(matches!(merged[2].event, TraceEvent::BenchmarkSample { d: 20, .. }));
    }

    #[test]
    fn driver_events_attach_to_rank_zero() {
        let e = TraceEvent::PartitionStep {
            iter: 1,
            dist: vec![5, 5],
            imbalance: 0.1,
            units_moved: 2,
        };
        assert_eq!(event_rank(&e), 0);
        let merged = merge_events(vec![vec![comm(0, "barrier", 4, 0), e.clone()]]);
        assert_eq!(merged[1].lamport, 4);
        assert_eq!(merged[1].rank, 0);
    }

    #[test]
    fn mixed_rank_file_interleaving_does_not_matter() {
        // The same logical events, written in two different physical
        // interleavings (as a shared sink would under different thread
        // schedules), merge identically.
        let a = vec![
            comm(0, "barrier", 2, 0),
            comm(1, "barrier", 2, 0),
            sample(0, 1),
            comm(0, "allreduce", 5, 1),
            comm(1, "allreduce", 5, 1),
        ];
        let b = vec![
            comm(1, "barrier", 2, 0),
            comm(0, "barrier", 2, 0),
            comm(1, "allreduce", 5, 1),
            sample(0, 1),
            comm(0, "allreduce", 5, 1),
        ];
        let ma: Vec<TraceEvent> = merge_events(vec![a]).into_iter().map(|s| s.event).collect();
        let mb: Vec<TraceEvent> = merge_events(vec![b]).into_iter().map(|s| s.event).collect();
        assert_eq!(ma, mb);
    }
}
