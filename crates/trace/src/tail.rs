//! Live follow of growing JSONL traces — `fupermod_tracetool tail`.
//!
//! Post-hoc analysis ([`crate::merge`], [`crate::report`]) waits for
//! the run to finish. `tail` follows trace files *while they grow*,
//! printing events in the same causal order the batch merge produces
//! and keeping rolling per-op latency quantiles.
//!
//! ## Torn-write safety
//!
//! A writer appends whole lines, but a reader polling mid-`write` can
//! observe a prefix of the final line. The follower therefore only
//! parses **newline-terminated** lines; a trailing partial line is
//! stashed and re-joined with the bytes the next poll reads. Files
//! that do not exist yet (a `--trace-dir` whose writers have not
//! started) are retried each poll.
//!
//! ## Ordering
//!
//! Events are stamped exactly like the batch merge
//! ([`crate::merge::Stamper`]): `comm` events carry their own Lamport
//! stamp, other events inherit their rank's last stamp. The tail then
//! *mirrors the batch merge's algorithm* — per-`(source, rank)` FIFO
//! queues, always popping the minimum queue head — rather than
//! sorting globally: a file may hold several runs whose Lamport
//! clocks restart, so per-rank file order (which the FIFO preserves
//! and a global sort would destroy) is part of the contract.
//!
//! While files are growing, a head is only comparable when **every**
//! known stream has one — an empty queue may still fill with a
//! smaller key. A poll round in which no file grew treats every
//! stream as exhausted (the batch merge's EOF) and drains the queues
//! by the same min-head rule. A tail that reads completed files
//! therefore prints byte-for-byte what `merge` prints
//! (`scripts/check.sh` diffs exactly that); if a writer pauses
//! mid-run longer than a poll round, events after the pause are
//! ordered against later arrivals on a best-effort basis — the price
//! of printing anything before the run ends.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fupermod_core::trace::{LatencyHistogram, TraceEvent, SCHEMA_VERSION};
use fupermod_core::CoreError;

use crate::merge::{Stamper, StampedEvent};

/// Tuning knobs of [`tail`].
#[derive(Debug, Clone)]
pub struct TailOptions {
    /// How often to poll the files for new bytes.
    pub poll: Duration,
    /// Exit once every file has been quiet for this long (`None`:
    /// follow forever — interactive use).
    pub idle_exit: Option<Duration>,
    /// Print rolling per-op latency stats to `stats` at this cadence
    /// (`None` disables them).
    pub stats_every: Option<Duration>,
}

impl Default for TailOptions {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(200),
            idle_exit: None,
            stats_every: Some(Duration::from_secs(5)),
        }
    }
}

/// One followed file: byte offset, stashed partial line, header
/// state, and the per-rank stamping state of its event stream.
struct Follower {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
    header_seen: bool,
    stamper: Stamper,
}

impl Follower {
    fn new(path: PathBuf) -> Self {
        Self {
            path,
            offset: 0,
            partial: Vec::new(),
            header_seen: false,
            stamper: Stamper::default(),
        }
    }

    /// Reads newly appended *complete* lines and stamps their events.
    /// Returns `Ok(true)` if any new bytes were seen (even a partial
    /// line counts as progress for idle accounting).
    fn poll(
        &mut self,
        source: usize,
        out: &mut Vec<StampedEvent>,
    ) -> Result<bool, CoreError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            // Not created yet (or vanished): retry next poll.
            Err(_) => return Ok(false),
        };
        let len = file
            .metadata()
            .map_err(|e| self.err(&e.to_string()))?
            .len();
        if len < self.offset {
            // Truncated behind our back: start over rather than emit
            // garbage from a stale offset.
            self.offset = 0;
            self.partial.clear();
            self.header_seen = false;
            self.stamper = Stamper::default();
        }
        if len == self.offset {
            return Ok(false);
        }
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| self.err(&e.to_string()))?;
        let mut fresh = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset)
            .read_to_end(&mut fresh)
            .map_err(|e| self.err(&e.to_string()))?;
        self.offset += fresh.len() as u64;

        let mut buf = std::mem::take(&mut self.partial);
        buf.extend_from_slice(&fresh);
        let mut start = 0;
        while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
            let line = &buf[start..start + nl];
            start += nl + 1;
            let line = std::str::from_utf8(line)
                .map_err(|_| self.err("invalid UTF-8 in trace line"))?
                .trim();
            if line.is_empty() {
                continue;
            }
            if !self.header_seen {
                self.check_header(line)?;
                self.header_seen = true;
                continue;
            }
            let event = TraceEvent::from_jsonl(line)
                .map_err(|e| self.err(&e.to_string()))?;
            out.push(self.stamper.stamp(source, event));
        }
        self.partial = buf.split_off(start);
        Ok(true)
    }

    /// Validates the trace header line (JSONL only: the follow path
    /// does not speak CSV).
    fn check_header(&self, line: &str) -> Result<(), CoreError> {
        if !line.starts_with('{') {
            return Err(self.err(
                "not a JSONL trace header (tail follows JSONL traces only)",
            ));
        }
        if !line.contains("\"trace\":\"fupermod\"") {
            return Err(self.err("not a fupermod trace header"));
        }
        let schema: u32 = line
            .split("\"schema\":")
            .nth(1)
            .and_then(|rest| {
                let digits: String =
                    rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            })
            .ok_or_else(|| self.err("trace header missing schema version"))?;
        if schema > SCHEMA_VERSION {
            return Err(self.err(&format!(
                "trace schema v{schema} is newer than this tool (v{SCHEMA_VERSION})"
            )));
        }
        Ok(())
    }

    fn err(&self, msg: &str) -> CoreError {
        CoreError::Trace(format!("{}: {msg}", self.path.display()))
    }
}

/// Rolling per-op latency digests over the `comm` events seen so far,
/// using the same log-bucketed bins as the core histograms.
#[derive(Debug, Default)]
struct Rolling {
    ops: BTreeMap<String, LatencyHistogram>,
}

impl Rolling {
    fn record(&mut self, op: &str, seconds: f64) {
        self.ops
            .entry(op.to_owned())
            .or_default()
            .record(seconds);
    }

    fn render(&self) -> String {
        let mut s = String::from("tail: rolling comm latency");
        if self.ops.is_empty() {
            s.push_str(" (no comm events yet)");
            return s;
        }
        for (op, hist) in &self.ops {
            let snap = hist.snapshot();
            let p50 = snap.quantile(0.5).unwrap_or(0.0);
            let p99 = snap.quantile(0.99).unwrap_or(0.0);
            s.push_str(&format!(
                "\n  {op}: n={} p50={:.1}us p99={:.1}us",
                snap.count,
                p50 * 1e6,
                p99 * 1e6
            ));
        }
        s
    }
}

/// The followed file set: an explicit list, or a directory rescanned
/// every poll for `*.jsonl` trace files appearing late.
enum FileSet {
    Fixed(Vec<PathBuf>),
    Dir(PathBuf),
}

impl FileSet {
    /// Paths currently in scope, sorted for deterministic source
    /// numbering in the directory case.
    fn scan(&self) -> Vec<PathBuf> {
        match self {
            FileSet::Fixed(paths) => paths.clone(),
            FileSet::Dir(dir) => {
                let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
                    .into_iter()
                    .flatten()
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.extension().and_then(|e| e.to_str()) == Some("jsonl")
                    })
                    .collect();
                found.sort();
                found
            }
        }
    }
}

/// Follows `files` (explicit paths) or, when `dir` is given, every
/// `*.jsonl` in it — including files that appear after the tail
/// starts. Events are written to `out` as a JSONL trace (header line
/// first, exactly like `merge`); rolling stats go to `stats`. Returns
/// when `options.idle_exit` elapses with no growth, or runs forever
/// without it.
///
/// # Errors
///
/// Returns [`CoreError::Trace`] on malformed events, foreign or
/// future-schema headers, and undecodable bytes; I/O errors on the
/// output streams are mapped to the same.
pub fn tail(
    files: Vec<PathBuf>,
    dir: Option<&Path>,
    options: &TailOptions,
    out: &mut dyn Write,
    stats: &mut dyn Write,
) -> Result<(), CoreError> {
    let set = match dir {
        Some(d) => FileSet::Dir(d.to_owned()),
        None => FileSet::Fixed(files),
    };
    let io_err = |e: std::io::Error| CoreError::Trace(format!("tail output: {e}"));
    writeln!(out, "{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}")
        .map_err(io_err)?;

    let mut followers: Vec<Follower> = Vec::new();
    // Per-(source, rank) FIFO queues — the batch merge's structure.
    let mut queues: BTreeMap<(usize, usize), VecDeque<StampedEvent>> =
        BTreeMap::new();
    let mut rolling = Rolling::default();
    let mut last_growth = Instant::now();
    let mut last_stats = Instant::now();

    loop {
        // Adopt newly appeared files (sources keep their index for
        // the lifetime of the tail, so stamps stay stable).
        for path in set.scan() {
            if !followers.iter().any(|f| f.path == path) {
                followers.push(Follower::new(path));
            }
        }

        let mut fresh = Vec::new();
        let mut grew = false;
        for (i, follower) in followers.iter_mut().enumerate() {
            grew |= follower.poll(i, &mut fresh)?;
        }
        for stamped in fresh {
            if let TraceEvent::Comm { op, seconds, .. } = &stamped.event {
                rolling.record(op, *seconds);
            }
            queues
                .entry((stamped.source, stamped.rank))
                .or_default()
                .push_back(stamped);
        }

        // Emit by the batch merge's pop rule: always the minimum
        // stream head. While files grow, hold whenever any known
        // stream's queue is empty (its next event may carry a smaller
        // key); a quiet round is the live analogue of EOF and drains
        // everything.
        loop {
            if grew && queues.values().any(VecDeque::is_empty) {
                break;
            }
            let Some(stream) = queues
                .iter()
                .filter_map(|(k, q)| q.front().map(|h| (h.key(), *k)))
                .min()
                .map(|(_, k)| k)
            else {
                break;
            };
            let stamped = queues
                .get_mut(&stream)
                .expect("stream present")
                .pop_front()
                .expect("head present");
            writeln!(out, "{}", stamped.event.to_jsonl()).map_err(io_err)?;
        }
        out.flush().map_err(io_err)?;

        if grew {
            last_growth = Instant::now();
        }
        if let Some(every) = options.stats_every {
            if last_stats.elapsed() >= every {
                writeln!(stats, "{}", rolling.render()).map_err(io_err)?;
                stats.flush().map_err(io_err)?;
                last_stats = Instant::now();
            }
        }
        if let Some(idle) = options.idle_exit {
            if !grew && last_growth.elapsed() >= idle {
                if options.stats_every.is_some() {
                    writeln!(stats, "{}", rolling.render()).map_err(io_err)?;
                }
                return Ok(());
            }
        }
        std::thread::sleep(options.poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm_line(rank: usize, op: &str, lamport: u64, gen: u64) -> String {
        TraceEvent::Comm {
            rank,
            op: op.to_owned(),
            peer: -1,
            bytes: 8,
            seconds: 2e-6,
            algorithm: "hub".to_owned(),
            rounds: 2,
            lamport,
            gen,
        }
        .to_jsonl()
    }

    fn header() -> String {
        format!("{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}")
    }

    /// The tail of a file written incrementally — including a torn
    /// final line completed later — prints exactly what the batch
    /// merge prints for the finished file.
    #[test]
    fn tail_matches_batch_merge_and_survives_torn_writes() {
        let dir = std::env::temp_dir().join(format!(
            "fupermod_tail_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trace.jsonl");
        let lines = [
            comm_line(0, "barrier", 2, 0),
            comm_line(1, "barrier", 2, 0),
            comm_line(1, "allreduce", 5, 1),
            comm_line(0, "allreduce", 5, 1),
        ];

        let writer = {
            let path = path.clone();
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut f = std::fs::File::create(&path).unwrap();
                writeln!(f, "{}", header()).unwrap();
                f.flush().unwrap();
                for line in &lines {
                    // Torn write: half the line, a pause, the rest.
                    let (a, b) = line.split_at(line.len() / 2);
                    f.write_all(a.as_bytes()).unwrap();
                    f.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                    f.write_all(b.as_bytes()).unwrap();
                    f.write_all(b"\n").unwrap();
                    f.flush().unwrap();
                }
            })
        };

        let mut out = Vec::new();
        let mut stats = Vec::new();
        let options = TailOptions {
            poll: Duration::from_millis(5),
            idle_exit: Some(Duration::from_millis(150)),
            stats_every: None,
        };
        tail(vec![path.clone()], None, &options, &mut out, &mut stats).unwrap();
        writer.join().unwrap();

        let merged = {
            let merge = crate::merge::Merge::open(std::slice::from_ref(&path)).unwrap();
            let mut s = header();
            s.push('\n');
            for ev in merge {
                s.push_str(&ev.unwrap().event.to_jsonl());
                s.push('\n');
            }
            s
        };
        assert_eq!(String::from_utf8(out).unwrap(), merged);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A completed file holding several runs — per-rank Lamport
    /// clocks restart at each run, so stamps are *not* monotone
    /// within a rank — tails to exactly the batch merge's output.
    /// (Regression: a global sort by key would hoist the second run's
    /// low stamps above the first run's high ones.)
    #[test]
    fn tail_matches_merge_on_multi_run_mixed_rank_file() {
        let dir = std::env::temp_dir().join(format!(
            "fupermod_tail_multirun_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.trace.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{}", header()).unwrap();
        for run in 0..3 {
            for lamport in [2, 5, 9] {
                for rank in [1, 0] {
                    writeln!(f, "{}", comm_line(rank, "barrier", lamport, run))
                        .unwrap();
                }
            }
        }
        drop(f);

        let mut out = Vec::new();
        let mut stats = Vec::new();
        let options = TailOptions {
            poll: Duration::from_millis(5),
            idle_exit: Some(Duration::from_millis(100)),
            stats_every: None,
        };
        tail(vec![path.clone()], None, &options, &mut out, &mut stats).unwrap();

        let merged = {
            let merge = crate::merge::Merge::open(std::slice::from_ref(&path)).unwrap();
            let mut s = header();
            s.push('\n');
            for ev in merge {
                s.push_str(&ev.unwrap().event.to_jsonl());
                s.push('\n');
            }
            s
        };
        assert_eq!(String::from_utf8(out).unwrap(), merged);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Directory mode adopts files that appear after the tail starts.
    #[test]
    fn tail_dir_adopts_late_files() {
        let dir = std::env::temp_dir().join(format!(
            "fupermod_tail_dir_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let late = dir.join("late.trace.jsonl");
        let writer = {
            let late = late.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                let mut f = std::fs::File::create(&late).unwrap();
                writeln!(f, "{}", header()).unwrap();
                writeln!(f, "{}", comm_line(0, "barrier", 1, 0)).unwrap();
            })
        };
        let mut out = Vec::new();
        let mut stats = Vec::new();
        let options = TailOptions {
            poll: Duration::from_millis(5),
            idle_exit: Some(Duration::from_millis(150)),
            stats_every: None,
        };
        tail(Vec::new(), Some(&dir), &options, &mut out, &mut stats).unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"op\":\"barrier\""), "missing event:\n{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
