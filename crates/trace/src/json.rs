//! A small, complete JSON value parser (std-only; the build
//! environment is offline, so no `serde_json`).
//!
//! Unlike the escape-free *flat* parser in `fupermod_core::trace`
//! (which only handles single trace lines), this one parses arbitrary
//! nesting, string escapes and all literals — enough to validate
//! `fupermod_tracetool` outputs (summary JSON, Chrome trace-event
//! JSON) against a committed schema without external tools.

use fupermod_core::CoreError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, CoreError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// JSON type name used in schema/validation messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> CoreError {
        CoreError::Trace(format!("bad JSON at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), CoreError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", want as char)))
        }
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, CoreError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("unknown literal"))
        }
    }

    fn value(&mut self) -> Result<Json, CoreError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'0'..=b'9' | b'-') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, CoreError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, CoreError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, CoreError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // own writers; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xc0) == 0x80
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, CoreError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{0001}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
