//! Summary reports over a causally merged timeline.
//!
//! [`Report::build`] folds a stream of [`StampedEvent`]s (from
//! [`crate::merge`]) into:
//!
//! * **per-rank time decomposition** — compute (benchmark repetition
//!   time), communication (all `comm` seconds), and **wait** time:
//!   for every collective, the ranks that finished early waited for
//!   the slowest participant, so `wait_r = max_group − t_r`;
//! * **collective critical path** — per `(op, algorithm)` the sum of
//!   each collective's slowest participant, i.e. the time the
//!   schedule actually cost the run (this is what makes ring vs.
//!   tree vs. hub schedules comparable from a trace alone);
//! * the **dynamic-loop iteration table** (distribution, imbalance,
//!   units moved per step) and its convergence record, encoded
//!   *bit-for-bit* like the trace's own CSV columns
//!   (`;`-joined dist, [`fmt_float`] imbalance);
//! * a **fault summary** (count / attributable seconds / worst retry
//!   attempt per kind);
//! * **latency-histogram digests** (count, mean, p50, p99) from
//!   schema-v3 `metrics` snapshot events.
//!
//! Rendered either as aligned text ([`Report::render_text`]) or as
//! summary JSON ([`Report::render_json`]) that validates against
//! `scripts/tracetool_schema.json`.

use std::collections::BTreeMap;

use fupermod_core::trace::{fmt_float, HistogramSnapshot, TraceEvent};

use crate::json::escape;
use crate::merge::StampedEvent;

/// Whether a `comm` op tag names a collective (participates in
/// barrier-generation grouping) rather than point-to-point traffic.
fn is_collective(op: &str) -> bool {
    !matches!(op, "send" | "recv")
}

/// Per-rank time decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    /// Rank the row describes.
    pub rank: usize,
    /// Seconds spent in benchmark repetitions (compute).
    pub compute_s: f64,
    /// Seconds spent inside communication operations (all ops).
    pub comm_s: f64,
    /// Seconds spent waiting on slower collective participants
    /// (`Σ max_group − t_rank` over this rank's collectives).
    pub wait_s: f64,
    /// Events attributed to the rank.
    pub events: u64,
}

/// Aggregated collective cost per `(op, algorithm)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveStats {
    /// Operation tag (`barrier`, `allreduce`, ...).
    pub op: String,
    /// Schedule that carried it (`hub`, `ring`, `tree`).
    pub algorithm: String,
    /// Collectives of this kind observed.
    pub count: u64,
    /// Total communication rounds the schedule used.
    pub rounds_total: u64,
    /// Critical-path seconds: `Σ` slowest participant per collective.
    pub critical_s: f64,
    /// Aggregate wait seconds across all participants.
    pub wait_s: f64,
}

/// One dynamic-loop partitioning step.
#[derive(Debug, Clone, PartialEq)]
pub struct Iteration {
    /// 1-based dynamic iteration (0 = static one-shot).
    pub iter: u64,
    /// Assigned computation units per process.
    pub dist: Vec<u64>,
    /// Relative imbalance that drove the step.
    pub imbalance: f64,
    /// Units that changed owner.
    pub units_moved: u64,
}

/// Fault summary per kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Fault tag (`delay`, `retry`, `death`, ...).
    pub kind: String,
    /// Occurrences.
    pub count: u64,
    /// Total attributable seconds (delays/backoffs).
    pub seconds: f64,
    /// Worst retry attempt observed (0 for non-retry faults).
    pub max_attempt: u32,
}

/// Digest of one latency-histogram snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDigest {
    /// Rank the snapshot describes.
    pub rank: usize,
    /// Scope tag (`comm.<op>` or `bench.rep`).
    pub scope: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded latencies, seconds.
    pub sum_s: f64,
    /// Mean latency, seconds (0 when empty).
    pub mean_s: f64,
    /// Median (upper bucket bound), seconds.
    pub p50_s: f64,
    /// 99th percentile (upper bucket bound), seconds.
    pub p99_s: f64,
}

/// The full report. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version of the merged inputs.
    pub schema: u32,
    /// Total events folded in.
    pub events: u64,
    /// Per-rank decomposition, ascending rank.
    pub ranks: Vec<RankStats>,
    /// Per-`(op, algorithm)` collective costs, sorted by key.
    pub collectives: Vec<CollectiveStats>,
    /// Total collective critical path, seconds.
    pub critical_path_s: f64,
    /// Dynamic-loop steps in trace order.
    pub iterations: Vec<Iteration>,
    /// Convergence record `(steps, imbalance)` if the loop converged.
    pub converged: Option<(u64, f64)>,
    /// Fault summary per kind, sorted by kind.
    pub faults: Vec<FaultStats>,
    /// Latency-histogram digests in trace order.
    pub histograms: Vec<HistogramDigest>,
}

impl Report {
    /// Folds a merged event stream into a report.
    pub fn build<I>(schema: u32, events: I) -> Report
    where
        I: IntoIterator<Item = StampedEvent>,
    {
        let mut total: u64 = 0;
        let mut ranks: BTreeMap<usize, RankStats> = BTreeMap::new();
        // Collective groups keyed by closing-barrier generation: one
        // collective per generation (every collective closes with its
        // own barrier), so `gen` alone identifies the group.
        // Pre-v3 traces stamp everything (0, 0); fall back to keying
        // by occurrence index per rank so groups still line up.
        let mut groups: BTreeMap<(u64, u64, String), GroupAcc> = BTreeMap::new();
        let mut group_seq: BTreeMap<usize, u64> = BTreeMap::new();
        let mut iterations = Vec::new();
        let mut converged = None;
        let mut faults: BTreeMap<String, FaultStats> = BTreeMap::new();
        let mut histograms = Vec::new();

        for stamped in events {
            total += 1;
            let rank = stamped.rank;
            let row = ranks.entry(rank).or_insert_with(|| RankStats {
                rank,
                compute_s: 0.0,
                comm_s: 0.0,
                wait_s: 0.0,
                events: 0,
            });
            row.events += 1;
            match stamped.event {
                TraceEvent::BenchmarkSample { time, .. } => {
                    if time.is_finite() {
                        row.compute_s += time;
                    }
                }
                TraceEvent::Comm {
                    op,
                    seconds,
                    algorithm,
                    rounds,
                    gen,
                    ..
                } => {
                    if seconds.is_finite() {
                        row.comm_s += seconds;
                    }
                    if is_collective(&op) {
                        let key = if stamped.lamport == 0 && gen == 0 {
                            // Pre-v3: group the i-th collective of
                            // each rank together.
                            let n = group_seq.entry(rank).or_insert(0);
                            let k = *n;
                            *n += 1;
                            (u64::MAX, k, op)
                        } else {
                            (0, gen, op)
                        };
                        let acc = groups.entry(key).or_default();
                        acc.algorithm = algorithm;
                        acc.rounds = acc.rounds.max(rounds);
                        acc.members.push((rank, seconds));
                    }
                }
                TraceEvent::PartitionStep {
                    iter,
                    dist,
                    imbalance,
                    units_moved,
                } => {
                    iterations.push(Iteration {
                        iter,
                        dist,
                        imbalance,
                        units_moved,
                    });
                }
                TraceEvent::DynamicConverged { steps, imbalance } => {
                    converged = Some((steps, imbalance));
                }
                TraceEvent::Fault {
                    kind,
                    attempt,
                    seconds,
                    ..
                } => {
                    let f = faults.entry(kind.clone()).or_insert_with(|| FaultStats {
                        kind,
                        count: 0,
                        seconds: 0.0,
                        max_attempt: 0,
                    });
                    f.count += 1;
                    if seconds.is_finite() {
                        f.seconds += seconds;
                    }
                    f.max_attempt = f.max_attempt.max(attempt);
                }
                TraceEvent::Metrics {
                    rank,
                    scope,
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let snap = HistogramSnapshot::from_parts(count, sum, buckets);
                    let (mean_s, p50_s, p99_s) = snap
                        .as_ref()
                        .map(|s| {
                            (
                                s.mean().unwrap_or(0.0),
                                s.quantile(0.5).unwrap_or(0.0),
                                s.quantile(0.99).unwrap_or(0.0),
                            )
                        })
                        .unwrap_or((0.0, 0.0, 0.0));
                    histograms.push(HistogramDigest {
                        rank,
                        scope,
                        count,
                        sum_s: sum,
                        mean_s,
                        p50_s,
                        p99_s,
                    });
                }
                TraceEvent::BenchmarkDone { .. } | TraceEvent::ModelUpdate { .. } => {}
            }
        }

        // Fold collective groups: critical path + per-rank wait.
        let mut collectives: BTreeMap<(String, String), CollectiveStats> = BTreeMap::new();
        let mut critical_path_s = 0.0;
        for ((_, _, op), acc) in groups {
            let max = acc
                .members
                .iter()
                .map(|&(_, s)| s)
                .filter(|s| s.is_finite())
                .fold(0.0_f64, f64::max);
            critical_path_s += max;
            let entry = collectives
                .entry((op.clone(), acc.algorithm.clone()))
                .or_insert_with(|| CollectiveStats {
                    op,
                    algorithm: acc.algorithm.clone(),
                    count: 0,
                    rounds_total: 0,
                    critical_s: 0.0,
                    wait_s: 0.0,
                });
            entry.count += 1;
            entry.rounds_total += acc.rounds;
            entry.critical_s += max;
            for (rank, s) in acc.members {
                let wait = if s.is_finite() { (max - s).max(0.0) } else { 0.0 };
                entry.wait_s += wait;
                if let Some(row) = ranks.get_mut(&rank) {
                    row.wait_s += wait;
                }
            }
        }

        Report {
            schema,
            events: total,
            ranks: ranks.into_values().collect(),
            collectives: collectives.into_values().collect(),
            critical_path_s,
            iterations,
            converged,
            faults: faults.into_values().collect(),
            histograms,
        }
    }

    /// Renders the report as aligned human-readable text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== fupermod_tracetool report ==");
        let _ = writeln!(
            out,
            "schema {}  events {}  ranks {}",
            self.schema,
            self.events,
            self.ranks.len()
        );

        let _ = writeln!(out, "\nper-rank time (s):");
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>12} {:>8}",
            "rank", "compute", "comm", "wait", "events"
        );
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "{:>5} {:>12.6} {:>12.6} {:>12.6} {:>8}",
                r.rank, r.compute_s, r.comm_s, r.wait_s, r.events
            );
        }

        let _ = writeln!(out, "\ncollective critical path (s):");
        let _ = writeln!(
            out,
            "{:<12} {:<10} {:>6} {:>7} {:>12} {:>12}",
            "op", "algorithm", "count", "rounds", "critical", "wait"
        );
        for c in &self.collectives {
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:>6} {:>7} {:>12.6} {:>12.6}",
                c.op, c.algorithm, c.count, c.rounds_total, c.critical_s, c.wait_s
            );
        }
        let _ = writeln!(out, "total critical path: {:.6} s", self.critical_path_s);

        if !self.iterations.is_empty() {
            let _ = writeln!(out, "\ndynamic iterations:");
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>7}  dist",
                "iter", "imbalance", "moved"
            );
            for it in &self.iterations {
                let _ = writeln!(
                    out,
                    "{:>5} {:>12} {:>7}  {}",
                    it.iter,
                    fmt_float(it.imbalance),
                    it.units_moved,
                    join_dist(&it.dist)
                );
            }
        }
        match self.converged {
            Some((steps, imbalance)) => {
                let _ = writeln!(
                    out,
                    "converged after {steps} steps, imbalance {}",
                    fmt_float(imbalance)
                );
            }
            None => {
                if !self.iterations.is_empty() {
                    let _ = writeln!(out, "no convergence record");
                }
            }
        }

        if !self.faults.is_empty() {
            let _ = writeln!(out, "\nfaults:");
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12} {:>12}",
                "kind", "count", "seconds", "max_attempt"
            );
            for f in &self.faults {
                let _ = writeln!(
                    out,
                    "{:<12} {:>6} {:>12.6} {:>12}",
                    f.kind, f.count, f.seconds, f.max_attempt
                );
            }
        }

        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nlatency histograms:");
            let _ = writeln!(
                out,
                "{:>5} {:<12} {:>8} {:>12} {:>12} {:>12}",
                "rank", "scope", "count", "mean", "p50", "p99"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:>5} {:<12} {:>8} {:>12.3e} {:>12.3e} {:>12.3e}",
                    h.rank, h.scope, h.count, h.mean_s, h.p50_s, h.p99_s
                );
            }
        }
        out
    }

    /// Renders the report as summary JSON (the shape committed in
    /// `scripts/tracetool_schema.json`). Float fields use the trace
    /// encoding ([`fmt_float`]), so imbalance/dist values are
    /// *bit-for-bit* the trace's own CSV encoding.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"tool\":\"fupermod_tracetool\",\"schema\":{},\"events\":{}",
            self.schema, self.events
        );

        out.push_str(",\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"compute_s\":{},\"comm_s\":{},\"wait_s\":{},\"events\":{}}}",
                r.rank,
                fmt_float(r.compute_s),
                fmt_float(r.comm_s),
                fmt_float(r.wait_s),
                r.events
            );
        }
        out.push(']');

        out.push_str(",\"collectives\":[");
        for (i, c) in self.collectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"algorithm\":\"{}\",\"count\":{},\"rounds_total\":{},\
                 \"critical_s\":{},\"wait_s\":{}}}",
                escape(&c.op),
                escape(&c.algorithm),
                c.count,
                c.rounds_total,
                fmt_float(c.critical_s),
                fmt_float(c.wait_s)
            );
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"critical_path_s\":{}",
            fmt_float(self.critical_path_s)
        );

        out.push_str(",\"iterations\":[");
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"iter\":{},\"dist\":\"{}\",\"imbalance\":{},\"units_moved\":{}}}",
                it.iter,
                join_dist(&it.dist),
                fmt_float(it.imbalance),
                it.units_moved
            );
        }
        out.push(']');

        match self.converged {
            Some((steps, imbalance)) => {
                let _ = write!(
                    out,
                    ",\"converged\":{{\"steps\":{steps},\"imbalance\":{}}}",
                    fmt_float(imbalance)
                );
            }
            None => out.push_str(",\"converged\":null"),
        }

        out.push_str(",\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"count\":{},\"seconds\":{},\"max_attempt\":{}}}",
                escape(&f.kind),
                f.count,
                fmt_float(f.seconds),
                f.max_attempt
            );
        }
        out.push(']');

        out.push_str(",\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"scope\":\"{}\",\"count\":{},\"sum_s\":{},\"mean_s\":{},\
                 \"p50_s\":{},\"p99_s\":{}}}",
                h.rank,
                escape(&h.scope),
                h.count,
                fmt_float(h.sum_s),
                fmt_float(h.mean_s),
                fmt_float(h.p50_s),
                fmt_float(h.p99_s)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Accumulator for one collective group.
#[derive(Debug, Default)]
struct GroupAcc {
    algorithm: String,
    rounds: u64,
    members: Vec<(usize, f64)>,
}

/// The trace CSV encoding of a distribution (`;`-joined).
fn join_dist(dist: &[u64]) -> String {
    let mut s = String::new();
    for (i, d) in dist.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        s.push_str(&d.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::merge::merge_events;

    fn comm(rank: usize, op: &str, secs: f64, alg: &str, lamport: u64, gen: u64) -> TraceEvent {
        TraceEvent::Comm {
            rank,
            op: op.to_owned(),
            peer: -1,
            bytes: 64,
            seconds: secs,
            algorithm: alg.to_owned(),
            rounds: 2,
            lamport,
            gen,
        }
    }

    fn build(events: Vec<TraceEvent>) -> Report {
        Report::build(3, merge_events(vec![events]))
    }

    #[test]
    fn wait_and_critical_path_from_collective_groups() {
        // One allreduce at gen 1: rank 0 takes 3s, rank 1 takes 1s.
        let r = build(vec![
            comm(0, "allreduce", 3.0, "ring", 5, 1),
            comm(1, "allreduce", 1.0, "ring", 5, 1),
        ]);
        assert_eq!(r.collectives.len(), 1);
        let c = &r.collectives[0];
        assert_eq!((c.op.as_str(), c.algorithm.as_str()), ("allreduce", "ring"));
        assert_eq!(c.count, 1);
        assert!((c.critical_s - 3.0).abs() < 1e-12);
        assert!((c.wait_s - 2.0).abs() < 1e-12);
        assert!((r.critical_path_s - 3.0).abs() < 1e-12);
        assert!((r.ranks[1].wait_s - 2.0).abs() < 1e-12);
        assert!((r.ranks[0].wait_s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_generations_are_distinct_collectives() {
        let r = build(vec![
            comm(0, "barrier", 1.0, "tree", 2, 0),
            comm(1, "barrier", 2.0, "tree", 2, 0),
            comm(0, "barrier", 4.0, "tree", 6, 1),
            comm(1, "barrier", 1.0, "tree", 6, 1),
        ]);
        let c = &r.collectives[0];
        assert_eq!(c.count, 2);
        assert!((c.critical_s - 6.0).abs() < 1e-12); // 2 + 4
        assert!((r.critical_path_s - 6.0).abs() < 1e-12);
    }

    #[test]
    fn p2p_ops_count_as_comm_but_not_critical_path() {
        let mut e = comm(0, "send", 0.5, "direct", 1, 0);
        if let TraceEvent::Comm { peer, .. } = &mut e {
            *peer = 1;
        }
        let r = build(vec![e]);
        assert!(r.collectives.is_empty());
        assert!((r.ranks[0].comm_s - 0.5).abs() < 1e-12);
        assert_eq!(r.critical_path_s, 0.0);
    }

    #[test]
    fn iteration_rows_match_trace_csv_encoding() {
        let r = build(vec![
            TraceEvent::PartitionStep {
                iter: 1,
                dist: vec![7, 3],
                imbalance: 0.25,
                units_moved: 2,
            },
            TraceEvent::DynamicConverged {
                steps: 1,
                imbalance: 0.01,
            },
        ]);
        assert_eq!(join_dist(&r.iterations[0].dist), "7;3");
        assert_eq!(fmt_float(r.iterations[0].imbalance), "0.25");
        assert_eq!(r.converged, Some((1, 0.01)));
        let json = Json::parse(&r.render_json()).unwrap();
        let it = &json.get("iterations").unwrap().as_array().unwrap()[0];
        assert_eq!(it.get("dist").unwrap().as_str(), Some("7;3"));
        assert_eq!(it.get("imbalance").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn report_json_parses_and_has_required_members() {
        let r = build(vec![
            comm(0, "allreduce", 3e-6, "hub", 4, 0),
            comm(1, "allreduce", 1e-6, "hub", 4, 0),
            TraceEvent::Fault {
                rank: 1,
                kind: "retry".to_owned(),
                peer: 0,
                attempt: 2,
                seconds: 0.001,
            },
            TraceEvent::Metrics {
                rank: 0,
                scope: "comm.allreduce".to_owned(),
                count: 2,
                sum: 4e-6,
                buckets: {
                    let mut b = vec![0u64; fupermod_core::trace::HISTOGRAM_BUCKETS + 2];
                    b[11] = 2; // 2^10..2^11 ns ≈ 1–2 µs
                    b
                },
                kind: "histogram".to_owned(),
                labels: String::new(),
            },
        ]);
        let json = Json::parse(&r.render_json()).unwrap();
        for key in [
            "tool",
            "schema",
            "events",
            "ranks",
            "collectives",
            "critical_path_s",
            "iterations",
            "converged",
            "faults",
            "histograms",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let f = &json.get("faults").unwrap().as_array().unwrap()[0];
        assert_eq!(f.get("kind").unwrap().as_str(), Some("retry"));
        assert_eq!(f.get("max_attempt").unwrap().as_f64(), Some(2.0));
        let h = &json.get("histograms").unwrap().as_array().unwrap()[0];
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        assert!(h.get("p99_s").unwrap().as_f64().unwrap() > 0.0);
        // Text rendering mentions the same sections.
        let text = r.render_text();
        assert!(text.contains("collective critical path"));
        assert!(text.contains("faults:"));
        assert!(text.contains("latency histograms:"));
    }
}
