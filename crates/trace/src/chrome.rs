//! Chrome trace-event (Perfetto) export.
//!
//! Converts a causally merged timeline ([`crate::merge`]) into the
//! [Chrome trace-event JSON format], loadable in `chrome://tracing`
//! or <https://ui.perfetto.dev>: one track (`tid`) per rank under a
//! single process, duration (`"X"`) slices for benchmark repetitions
//! and communication operations, and instant (`"i"`) markers for
//! faults, model updates, and partitioner decisions.
//!
//! Per-rank traces record *durations*, not absolute timestamps (the
//! sim backend has no shared wall clock at all), so the exporter
//! reconstructs a plausible global timeline from the merged causal
//! order: each rank keeps a cumulative cursor, and every collective
//! **aligns its participants** — all slices of one collective end at
//! `T = max_r(cursor_r + dur_r)`, each starting at `T − dur_r`, and
//! every participant's cursor advances to `T`. That renders the wait
//! time skew exactly where a real timeline would show it.
//!
//! [Chrome trace-event JSON format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Only `"M"` (`thread_name`) metadata records carry an `args`
//! object; data slices keep their payload in the `name` to stay
//! compact.

use std::collections::BTreeMap;
use std::io::{self, Write};

use fupermod_core::trace::TraceEvent;

use crate::json::escape;
use crate::merge::StampedEvent;

/// Microseconds per second (trace-event timestamps are µs).
const US: f64 = 1e6;

/// Exports a merged event stream as Chrome trace-event JSON.
///
/// Events must arrive in merged causal order (as produced by
/// [`crate::merge::Merge`] / [`crate::merge::merge_events`]); the
/// collective alignment described in the module docs depends on it.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn export_chrome<I, W>(events: I, out: &mut W) -> io::Result<()>
where
    I: IntoIterator<Item = StampedEvent>,
    W: Write,
{
    let mut w = Emitter {
        out,
        first: true,
        cursors: BTreeMap::new(),
    };
    w.out.write_all(b"{\"traceEvents\":[")?;

    // Events sharing one (lamport, gen) stamp form a *block*: the
    // stamping comm operations plus any per-rank events that
    // inherited the stamp. Collectives inside a block are aligned
    // together; everything else replays in merged order.
    let mut block: Vec<StampedEvent> = Vec::new();
    let mut block_key: Option<(u64, u64)> = None;
    for ev in events {
        let key = (ev.lamport, ev.gen);
        if block_key != Some(key) {
            w.flush_block(&mut block)?;
            block_key = Some(key);
        }
        block.push(ev);
    }
    w.flush_block(&mut block)?;

    w.out.write_all(b"],\"displayTimeUnit\":\"ms\"}")?;
    Ok(())
}

struct Emitter<'a, W: Write> {
    out: &'a mut W,
    first: bool,
    /// Per-rank cumulative time cursor, seconds.
    cursors: BTreeMap<usize, f64>,
}

impl<W: Write> Emitter<'_, W> {
    /// Cursor of `rank`, emitting the track metadata on first use.
    fn cursor(&mut self, rank: usize) -> io::Result<f64> {
        if !self.cursors.contains_key(&rank) {
            self.record(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ))?;
            self.cursors.insert(rank, 0.0);
        }
        Ok(self.cursors[&rank])
    }

    fn record(&mut self, json: &str) -> io::Result<()> {
        if !self.first {
            self.out.write_all(b",")?;
        }
        self.first = false;
        self.out.write_all(json.as_bytes())
    }

    fn slice(&mut self, name: &str, cat: &str, rank: usize, ts: f64, dur: f64) -> io::Result<()> {
        self.record(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{rank}}}",
            escape(name),
            ts * US,
            dur * US
        ))
    }

    fn instant(&mut self, name: &str, cat: &str, rank: usize, ts: f64) -> io::Result<()> {
        self.record(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{:.3},\"s\":\"t\",\
             \"pid\":0,\"tid\":{rank}}}",
            escape(name),
            ts * US
        ))
    }

    /// Flushes one stamp block: collectives aligned, the rest in
    /// order. Leaves `block` empty.
    fn flush_block(&mut self, block: &mut Vec<StampedEvent>) -> io::Result<()> {
        // Pass 1: align the block's collective participants (grouped
        // by op; one collective per generation, so a block holds at
        // most one group per op tag).
        let mut groups: BTreeMap<String, Vec<(usize, f64, String)>> = BTreeMap::new();
        for ev in block.iter() {
            if let TraceEvent::Comm {
                rank,
                op,
                seconds,
                algorithm,
                ..
            } = &ev.event
            {
                if !matches!(op.as_str(), "send" | "recv") {
                    groups.entry(op.clone()).or_default().push((
                        *rank,
                        sane(*seconds),
                        algorithm.clone(),
                    ));
                }
            }
        }
        for (op, members) in groups {
            let mut end = 0.0_f64;
            for &(rank, dur, _) in &members {
                end = end.max(self.cursor(rank)? + dur);
            }
            for (rank, dur, algorithm) in members {
                let name = if algorithm.is_empty() {
                    op.clone()
                } else {
                    format!("{op} ({algorithm})")
                };
                self.slice(&name, "comm", rank, end - dur, dur)?;
                self.cursors.insert(rank, end);
            }
        }

        // Pass 2: everything else, in merged order, at the (possibly
        // just advanced) cursors.
        for ev in block.drain(..) {
            let rank = ev.rank;
            match ev.event {
                TraceEvent::Comm {
                    op, seconds, peer, ..
                } => {
                    if matches!(op.as_str(), "send" | "recv") {
                        let dur = sane(seconds);
                        let ts = self.cursor(rank)?;
                        self.slice(&format!("{op} peer={peer}"), "comm", rank, ts, dur)?;
                        self.cursors.insert(rank, ts + dur);
                    }
                    // Collectives were handled in pass 1.
                }
                TraceEvent::BenchmarkSample { d, rep, time, .. } => {
                    let dur = sane(time);
                    let ts = self.cursor(rank)?;
                    self.slice(&format!("bench d={d} rep={rep}"), "bench", rank, ts, dur)?;
                    self.cursors.insert(rank, ts + dur);
                }
                TraceEvent::BenchmarkDone { d, reps, .. } => {
                    let ts = self.cursor(rank)?;
                    self.instant(&format!("bench_done d={d} reps={reps}"), "bench", rank, ts)?;
                }
                TraceEvent::ModelUpdate { d, points, .. } => {
                    let ts = self.cursor(rank)?;
                    self.instant(&format!("model d={d} points={points}"), "model", rank, ts)?;
                }
                TraceEvent::PartitionStep {
                    iter, units_moved, ..
                } => {
                    let ts = self.cursor(rank)?;
                    self.instant(
                        &format!("partition iter={iter} moved={units_moved}"),
                        "partition",
                        rank,
                        ts,
                    )?;
                }
                TraceEvent::DynamicConverged { steps, .. } => {
                    let ts = self.cursor(rank)?;
                    self.instant(&format!("converged steps={steps}"), "partition", rank, ts)?;
                }
                TraceEvent::Fault { kind, attempt, .. } => {
                    let ts = self.cursor(rank)?;
                    self.instant(&format!("fault:{kind} attempt={attempt}"), "fault", rank, ts)?;
                }
                TraceEvent::Metrics { scope, count, .. } => {
                    let ts = self.cursor(rank)?;
                    self.instant(&format!("metrics {scope} n={count}"), "metrics", rank, ts)?;
                }
            }
        }
        Ok(())
    }
}

/// Clamps non-finite / negative durations to zero.
fn sane(seconds: f64) -> f64 {
    if seconds.is_finite() && seconds > 0.0 {
        seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::merge::merge_events;

    fn comm(rank: usize, op: &str, secs: f64, lamport: u64, gen: u64) -> TraceEvent {
        TraceEvent::Comm {
            rank,
            op: op.to_owned(),
            peer: -1,
            bytes: 8,
            seconds: secs,
            algorithm: "ring".to_owned(),
            rounds: 2,
            lamport,
            gen,
        }
    }

    fn export(events: Vec<TraceEvent>) -> Json {
        let merged = merge_events(vec![events]);
        let mut buf = Vec::new();
        export_chrome(merged, &mut buf).unwrap();
        Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap()
    }

    fn slices(doc: &Json) -> Vec<&Json> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect()
    }

    #[test]
    fn collective_slices_align_at_their_end() {
        let doc = export(vec![
            comm(0, "allreduce", 3e-3, 5, 1),
            comm(1, "allreduce", 1e-3, 5, 1),
        ]);
        let sl = slices(&doc);
        assert_eq!(sl.len(), 2);
        let end = |s: &Json| {
            s.get("ts").unwrap().as_f64().unwrap() + s.get("dur").unwrap().as_f64().unwrap()
        };
        assert!((end(sl[0]) - end(sl[1])).abs() < 1e-6);
        assert!((end(sl[0]) - 3000.0).abs() < 1e-6); // 3 ms in µs
                                                     // The faster rank starts later (waited).
        let by_tid = |tid: f64| {
            sl.iter()
                .find(|s| s.get("tid").unwrap().as_f64() == Some(tid))
                .unwrap()
                .get("ts")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert!(by_tid(1.0) > by_tid(0.0));
    }

    #[test]
    fn one_thread_name_track_per_rank() {
        let doc = export(vec![
            comm(0, "barrier", 1e-6, 2, 0),
            comm(1, "barrier", 1e-6, 2, 0),
            comm(2, "barrier", 1e-6, 2, 0),
        ]);
        let meta: Vec<&Json> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 3);
        for m in &meta {
            assert_eq!(m.get("name").unwrap().as_str(), Some("thread_name"));
            assert!(m.get("args").unwrap().get("name").is_some());
        }
    }

    #[test]
    fn cursors_accumulate_across_blocks() {
        // bench(2ms) then a barrier(1ms): the barrier slice starts at
        // the bench end.
        let doc = export(vec![
            TraceEvent::BenchmarkSample {
                rank: 0,
                d: 10,
                rep: 0,
                time: 2e-3,
                ci_rel: 0.0,
            },
            comm(0, "barrier", 1e-3, 1, 0),
        ]);
        let sl = slices(&doc);
        assert_eq!(sl.len(), 2);
        let bench = sl
            .iter()
            .find(|s| s.get("cat").unwrap().as_str() == Some("bench"))
            .unwrap();
        let bar = sl
            .iter()
            .find(|s| s.get("cat").unwrap().as_str() == Some("comm"))
            .unwrap();
        assert_eq!(bench.get("ts").unwrap().as_f64(), Some(0.0));
        assert!((bar.get("ts").unwrap().as_f64().unwrap() - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn faults_and_driver_events_are_instants() {
        let doc = export(vec![
            comm(0, "barrier", 1e-6, 1, 0),
            TraceEvent::Fault {
                rank: 0,
                kind: "retry".to_owned(),
                peer: 1,
                attempt: 1,
                seconds: 0.5,
            },
            TraceEvent::PartitionStep {
                iter: 1,
                dist: vec![1, 2],
                imbalance: 0.5,
                units_moved: 1,
            },
        ]);
        let instants: Vec<&Json> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .collect();
        assert_eq!(instants.len(), 2);
        for i in &instants {
            assert_eq!(i.get("s").unwrap().as_str(), Some("t"));
        }
    }

    #[test]
    fn export_is_valid_json_with_top_level_shape() {
        let doc = export(vec![comm(0, "bcast", 1e-6, 1, 0)]);
        assert!(doc.get("traceEvents").unwrap().as_array().is_some());
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    }
}
