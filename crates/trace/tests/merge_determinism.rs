//! End-to-end determinism of the causal merge, against the real
//! runtime.
//!
//! The Lamport stamps the runtime records are a function of the
//! program's communication *structure*, not of its schedule — so:
//!
//! * the same workload traced twice on the **sim** backend merges to
//!   the *identical* timeline up to per-op virtual `seconds` (the
//!   virtual clocks settle contention in real arrival order, so the
//!   per-op split of a collective's cost can jitter between runs —
//!   but the stamps, payload sizes, schedules and round counts are
//!   exact);
//! * the same workload traced twice on the **thread** backend merges
//!   to the identical *causal structure* (wall-clock seconds differ,
//!   but every `(event, rank, op, lamport, gen)` key matches);
//! * physically re-interleaving one trace into per-rank files, or
//!   reading it back through JSONL files on disk, does not change the
//!   merged order;
//! * survivor traces from a run where a rank **dies** under a
//!   `FaultPlan` still merge into a gap-free, causally consistent
//!   timeline: all participants of every surviving collective carry
//!   the same stamp, and no event of a live rank is lost;
//! * per-process trace files from a **TCP** run — each rank a
//!   separate data plane joined only by sockets, each with its own
//!   private sink, the real multi-process layout — stitch into one
//!   gap-free causally ordered timeline whose structure matches the
//!   threaded backend's.

use std::sync::Arc;

use fupermod_core::trace::{MemorySink, TraceEvent};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_ranks, AlgorithmPolicy, Communicator, FaultPlan, ReduceOp, RuntimeConfig, RuntimeError,
};
use fupermod_trace::merge::{merge_events, Merge, StampedEvent};

/// A smorgasbord workload: collectives interleaved with point-to-point
/// traffic, so the trace exercises every stamp rule (tick, piggyback
/// merge, barrier join).
fn workload(mut c: impl Communicator) -> Result<(), RuntimeError> {
    let rank = c.rank();
    let size = c.size();
    c.barrier()?;
    let root_val = (rank == 0).then(|| vec![1.0f64, 2.0, 3.0]);
    let _ = c.bcast(0, root_val.as_ref())?;
    // A p2p ring: rank r sends to (r+1) % size, receives from its
    // predecessor. Even ranks send first to avoid deadlock.
    let next = (rank + 1) % size;
    let prev = (rank + size - 1) % size;
    let token = vec![rank as f64; 4];
    if rank.is_multiple_of(2) {
        c.send(next, &token)?;
        let _: Vec<f64> = c.recv(prev)?;
    } else {
        let _: Vec<f64> = c.recv(prev)?;
        c.send(next, &token)?;
    }
    let _ = c.allreduce(rank as f64, ReduceOp::Sum)?;
    let _ = c.allgatherv(&token)?;
    c.barrier()?;
    Ok(())
}

/// Runs the workload on `config` with a shared in-memory sink and
/// returns the recorded events in file order.
fn traced_run(config: RuntimeConfig, size: usize) -> Vec<TraceEvent> {
    let sink = Arc::new(MemorySink::new());
    let comms = config.with_trace(sink.clone()).build(size);
    let results = run_ranks(comms, workload);
    for (rank, r) in results.into_iter().enumerate() {
        r.unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
    }
    sink.events()
}

/// The causal structure of a merged timeline: everything except
/// wall-clock-dependent payloads.
fn structure(merged: &[StampedEvent]) -> Vec<(String, usize, String, u64, u64)> {
    merged
        .iter()
        .map(|s| {
            let op = match &s.event {
                TraceEvent::Comm { op, .. } => op.clone(),
                TraceEvent::Fault { kind, .. } => kind.clone(),
                _ => String::new(),
            };
            (s.event.name().to_owned(), s.rank, op, s.lamport, s.gen)
        })
        .collect()
}

/// Splits one mixed-rank event list into per-rank lists (preserving
/// each rank's file order) — the "one trace file per rank" layout.
fn split_by_rank(events: &[TraceEvent]) -> Vec<Vec<TraceEvent>> {
    let mut by_rank: Vec<Vec<TraceEvent>> = Vec::new();
    for e in events {
        let r = fupermod_trace::event_rank(e);
        if r >= by_rank.len() {
            by_rank.resize_with(r + 1, Vec::new);
        }
        by_rank[r].push(e.clone());
    }
    by_rank
}

/// An event with its wall/virtual `seconds` zeroed: everything the
/// causal merge is *supposed* to pin down exactly.
fn shape(e: &TraceEvent) -> TraceEvent {
    let mut e = e.clone();
    if let TraceEvent::Comm { seconds, .. } = &mut e {
        *seconds = 0.0;
    }
    e
}

#[test]
fn sim_runs_merge_identically_up_to_clock_jitter() {
    let size = 5;
    let config = || {
        RuntimeConfig::sim(size, LinkModel::ethernet()).with_algorithms(AlgorithmPolicy::ring())
    };
    let a = merge_events(vec![traced_run(config(), size)]);
    let b = merge_events(vec![traced_run(config(), size)]);
    assert_eq!(a.len(), b.len());
    // The merged timelines agree event-for-event: same order, same
    // stamps, same ops/peers/bytes/schedules/rounds. (Per-op virtual
    // `seconds` may jitter: the sim settles link contention in real
    // arrival order.)
    let ea: Vec<TraceEvent> = a.iter().map(|s| shape(&s.event)).collect();
    let eb: Vec<TraceEvent> = b.iter().map(|s| shape(&s.event)).collect();
    assert_eq!(ea, eb);
}

#[test]
fn thread_runs_merge_to_identical_causal_structure() {
    let size = 4;
    // Tree schedules + threads: maximal real nondeterminism in the
    // physical event interleaving.
    let config = || RuntimeConfig::thread().with_algorithms(AlgorithmPolicy::tree());
    let a = merge_events(vec![traced_run(config(), size)]);
    let b = merge_events(vec![traced_run(config(), size)]);
    assert_eq!(structure(&a), structure(&b));
}

#[test]
fn per_rank_file_layout_does_not_change_the_merge() {
    let size = 4;
    let events = traced_run(
        RuntimeConfig::sim(size, LinkModel::ethernet()),
        size,
    );
    let single = merge_events(vec![events.clone()]);
    let split = merge_events(split_by_rank(&events));
    let se: Vec<&TraceEvent> = single.iter().map(|s| &s.event).collect();
    let pe: Vec<&TraceEvent> = split.iter().map(|s| &s.event).collect();
    assert_eq!(se, pe);
}

#[test]
fn streaming_file_merge_matches_in_memory_merge() {
    let size = 3;
    let events = traced_run(
        RuntimeConfig::sim(size, LinkModel::ethernet()),
        size,
    );
    // Write per-rank JSONL files to a scratch directory.
    let dir = std::env::temp_dir().join(format!(
        "fupermod-merge-test-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for (r, rank_events) in split_by_rank(&events).into_iter().enumerate() {
        let path = dir.join(format!("rank{r}.trace.jsonl"));
        let mut text = String::from("{\"trace\":\"fupermod\",\"schema\":3}\n");
        for e in &rank_events {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();
        paths.push(path);
    }

    let streamed: Vec<StampedEvent> = Merge::open(&paths)
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    let in_memory = merge_events(vec![events]);
    let se: Vec<&TraceEvent> = streamed.iter().map(|s| &s.event).collect();
    let me: Vec<&TraceEvent> = in_memory.iter().map(|s| &s.event).collect();
    assert_eq!(se, me);

    std::fs::remove_dir_all(&dir).ok();
}

/// Runs [`workload`] on `world` TCP ranks — one thread per rank, but
/// each holding its own *full data plane* joined only over loopback
/// sockets, each writing to its own private sink. This is the
/// multi-process trace layout: no rank ever sees another's events.
fn tcp_traced_run(world: usize) -> Vec<Vec<TraceEvent>> {
    use fupermod_runtime::net::{connect, connect_with_listener, TcpConfig};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let sinks: Vec<Arc<MemorySink>> = (0..world).map(|_| Arc::new(MemorySink::new())).collect();
    let mut listener = Some(listener);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = TcpConfig::new(rank, world, addr.clone())
                    .with_trace(sinks[rank].clone())
                    .with_boot_timeout(std::time::Duration::from_secs(20));
                let listener = (rank == 0).then(|| listener.take().expect("rank 0 listener"));
                s.spawn(move || {
                    let comm = match listener {
                        Some(l) => connect_with_listener(cfg, l),
                        None => connect(cfg),
                    }
                    .unwrap_or_else(|e| panic!("rank {rank} failed to connect: {e}"));
                    // `workload` consumes the handle; drop tears the
                    // rank down gracefully (BYE to peers).
                    workload(comm)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            h.join()
                .expect("rank thread panicked")
                .unwrap_or_else(|e| panic!("tcp rank {rank} failed: {e}"));
        }
    });
    sinks.iter().map(|s| s.events()).collect()
}

#[test]
fn tcp_per_process_traces_stitch_into_one_causal_timeline() {
    let world = 4;
    let per_rank = tcp_traced_run(world);
    for (r, events) in per_rank.iter().enumerate() {
        assert!(!events.is_empty(), "rank {r} produced no events");
        assert!(
            events.iter().all(|e| fupermod_trace::event_rank(e) == r),
            "rank {r}'s private sink holds another rank's events"
        );
    }

    // Round-trip through per-rank JSONL files and the streaming merge
    // — exactly the `fupermod_tracetool merge` path over the files a
    // real multi-process run leaves behind.
    let dir = std::env::temp_dir().join(format!("fupermod-tcp-stitch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut paths = Vec::new();
    for (r, rank_events) in per_rank.iter().enumerate() {
        let path = dir.join(format!("rank{r}.trace.jsonl"));
        let mut text = String::from("{\"trace\":\"fupermod\",\"schema\":3}\n");
        for e in rank_events {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        std::fs::write(&path, text).unwrap();
        paths.push(path);
    }
    let merged: Vec<StampedEvent> = Merge::open(&paths)
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        merged.len(),
        per_rank.iter().map(Vec::len).sum::<usize>(),
        "merge lost or duplicated events"
    );

    // Causal order: keys never go backwards.
    let keys: Vec<(u64, u64, usize)> = merged
        .iter()
        .map(|s| (s.lamport, s.gen, s.rank))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "stitched timeline is out of causal order");

    // Gap-free: fault-free run, so every collective generation must
    // carry *all* ranks, all with the same Lamport stamp.
    use std::collections::BTreeMap;
    let mut by_gen: BTreeMap<(u64, String), Vec<(usize, u64)>> = BTreeMap::new();
    for s in &merged {
        if let TraceEvent::Comm { op, .. } = &s.event {
            if !matches!(op.as_str(), "send" | "recv") {
                by_gen
                    .entry((s.gen, op.clone()))
                    .or_default()
                    .push((s.rank, s.lamport));
            }
        }
    }
    assert!(!by_gen.is_empty(), "no collectives traced");
    for ((gen, op), members) in &by_gen {
        let lamports: Vec<u64> = members.iter().map(|&(_, l)| l).collect();
        assert!(
            lamports.windows(2).all(|w| w[0] == w[1]),
            "collective gen {gen} ({op}) has inconsistent stamps: {members:?}"
        );
        let mut ranks: Vec<usize> = members.iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        assert_eq!(
            ranks,
            (0..world).collect::<Vec<_>>(),
            "collective gen {gen} ({op}) is missing a rank"
        );
    }

    // Same workload on the threaded backend: identical causal
    // structure, socket hops and all.
    let threaded = merge_events(split_by_rank(&traced_run(RuntimeConfig::thread(), world)));
    assert_eq!(
        structure(&merged),
        structure(&threaded),
        "tcp stitch diverges from the threaded backend's causal structure"
    );
}

#[test]
fn survivor_traces_merge_gap_free_after_rank_death() {
    let size = 5;
    let victim = 4usize;
    let plan = FaultPlan::from_json(&format!(
        r#"{{"deadline": 20.0, "deaths": [{{"rank": {victim}, "after_ops": 1}}]}}"#
    ))
    .unwrap();

    let sink = Arc::new(MemorySink::new());
    let comms = RuntimeConfig::thread()
        .with_plan(plan)
        .with_trace(sink.clone())
        .build(size);
    let results = run_ranks(comms, |mut c| -> Result<(), RuntimeError> {
        let rank = c.rank();
        c.barrier()?; // victim completes this, then dies
        c.barrier()?; // survivors observe the death
        let _ = c.allreduce(rank as f64, ReduceOp::Sum)?;
        // `_available`: the strict variant refuses dead peers.
        let _ = c.allgatherv_available(&vec![rank as f64; 3])?;
        c.barrier()?;
        Ok(())
    });
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(()) => assert_ne!(rank, victim, "victim unexpectedly survived"),
            Err(_) => assert_eq!(rank, victim, "unexpected survivor failure"),
        }
    }

    let merged = merge_events(split_by_rank(&sink.events()));

    // Causal order: keys never go backwards.
    let keys: Vec<(u64, u64, usize)> = merged
        .iter()
        .map(|s| (s.lamport, s.gen, s.rank))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "merged timeline is out of causal order");

    // Gap-free: every collective generation recorded by one survivor
    // was recorded by all ranks live at that point, with the same
    // Lamport stamp.
    use std::collections::BTreeMap;
    let mut by_gen: BTreeMap<(u64, String), Vec<(usize, u64)>> = BTreeMap::new();
    for s in &merged {
        if let TraceEvent::Comm { op, .. } = &s.event {
            if !matches!(op.as_str(), "send" | "recv") {
                by_gen
                    .entry((s.gen, op.clone()))
                    .or_default()
                    .push((s.rank, s.lamport));
            }
        }
    }
    assert!(!by_gen.is_empty(), "no collectives traced");
    let mut saw_post_death_group = false;
    for ((gen, op), members) in &by_gen {
        let lamports: Vec<u64> = members.iter().map(|&(_, l)| l).collect();
        assert!(
            lamports.windows(2).all(|w| w[0] == w[1]),
            "collective gen {gen} ({op}) has inconsistent stamps: {members:?}"
        );
        let ranks: Vec<usize> = members.iter().map(|&(r, _)| r).collect();
        if !ranks.contains(&victim) {
            saw_post_death_group = true;
            // Survivors only — and *all* of them.
            assert_eq!(
                ranks.len(),
                size - 1,
                "post-death collective gen {gen} ({op}) lost a survivor: {ranks:?}"
            );
        }
    }
    assert!(
        saw_post_death_group,
        "expected at least one post-death collective"
    );
}
