//! Acceptance: the report's collective critical path reproduces the
//! schedule ranking measured in `BENCH_PR4.json`.
//!
//! That benchmark's `vtime_collectives` series (deterministic Hockney
//! virtual time, p = 16) ranks the rootless-collective schedules
//! `tree < ring < hub`. Tracing the same kind of workload on the sim
//! backend and summing the per-collective critical path out of the
//! *trace* must reproduce the ordering — the report is an offline
//! re-derivation of what the benchmark measured online.

use std::sync::Arc;

use fupermod_core::trace::MemorySink;
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_ranks, Algorithm, AlgorithmPolicy, Communicator, ReduceOp, RuntimeConfig,
    RuntimeError,
};
use fupermod_trace::{merge_events, Report};

const SIZE: usize = 16;
const ROUNDS: usize = 4;

/// Rootless-collective workload: the ops where hub/ring/tree schedules
/// genuinely differ (rooted ops resolve ring back to tree).
fn workload(mut c: impl Communicator) -> Result<(), RuntimeError> {
    let rank = c.rank();
    let payload = vec![rank as f64; 256];
    for _ in 0..ROUNDS {
        let _ = c.allgatherv(&payload)?;
        let _ = c.allreduce(rank as f64, ReduceOp::Sum)?;
    }
    c.barrier()?;
    Ok(())
}

/// Critical path of the workload traced under one uniform policy.
fn critical_path(algorithm: Algorithm) -> f64 {
    let sink = Arc::new(MemorySink::new());
    let comms = RuntimeConfig::sim(SIZE, LinkModel::ethernet())
        .with_algorithms(AlgorithmPolicy::uniform(algorithm))
        .with_trace(sink.clone())
        .build(SIZE);
    for (rank, r) in run_ranks(comms, workload).into_iter().enumerate() {
        r.unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
    }
    let report = Report::build(3, merge_events(vec![sink.events()]));
    assert!(
        report.collectives.iter().all(|c| {
            c.op == "barrier" || c.algorithm == format!("{algorithm:?}").to_lowercase()
        }),
        "trace must record the resolved schedule: {:?}",
        report.collectives
    );
    report.critical_path_s
}

#[test]
fn critical_path_ranks_tree_ring_hub_like_bench_pr4() {
    let hub = critical_path(Algorithm::Hub);
    let ring = critical_path(Algorithm::Ring);
    let tree = critical_path(Algorithm::Tree);
    assert!(
        tree < ring && ring < hub,
        "expected tree < ring < hub at p={SIZE} (BENCH_PR4 vtime_collectives), \
         got tree={tree} ring={ring} hub={hub}"
    );
}
