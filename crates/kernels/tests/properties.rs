//! Property-based tests for the compute kernels: the row-band parallel
//! GEMM must agree with the reference implementations for arbitrary
//! shapes and worker counts, and the parallel result must not depend on
//! the worker count at all.

use fupermod_kernels::gemm::{gemm_blocked, gemm_naive, gemm_parallel};
use proptest::prelude::*;

/// Random (m, n, k) shapes that straddle the 64-wide tile boundary and
/// the thread-banding edge cases (fewer rows than workers, uneven
/// bands).
fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..100, 1usize..70, 1usize..70)
}

fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    // Small deterministic pseudo-random entries; magnitudes near 1 so
    // the 1e-9 absolute tolerance is meaningful.
    (0..rows * cols)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed.wrapping_mul(1442695040888963407));
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ISSUE satellite: `gemm_parallel` agrees with `gemm_naive` to
    /// 1e-9 for random shapes and thread counts. (The naive kernel
    /// accumulates in a different order, so this is a numerical bound,
    /// not bit-identity — that stronger property holds against
    /// `gemm_blocked` and is asserted below.)
    #[test]
    fn parallel_matches_naive_within_1e_9(
        (m, n, k) in shapes(),
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed + 1);
        let mut c_naive = vec![0.0; m * n];
        let mut c_par = vec![0.0; m * n];
        gemm_naive(m, n, k, &a, &b, &mut c_naive);
        gemm_parallel(m, n, k, &a, &b, &mut c_par, threads);
        for (i, (x, y)) in c_par.iter().zip(&c_naive).enumerate() {
            prop_assert!((x - y).abs() < 1e-9, "c[{i}]: {x} vs {y}");
        }
    }

    /// The parallel kernel is bit-identical to the blocked kernel it
    /// bands — row grouping must not change any accumulation order.
    #[test]
    fn parallel_is_bitwise_blocked_for_any_thread_count(
        (m, n, k) in shapes(),
        threads in 0usize..9,
        seed in 0u64..1000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed + 1);
        // Pre-filled C: the kernels accumulate into it, so agreement
        // must hold for non-zero initial contents too.
        let mut c_blocked = vec![0.25; m * n];
        let mut c_par = c_blocked.clone();
        gemm_blocked(m, n, k, &a, &b, &mut c_blocked);
        gemm_parallel(m, n, k, &a, &b, &mut c_par, threads);
        for (i, (x, y)) in c_par.iter().zip(&c_blocked).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "c[{}]", i);
        }
    }
}
