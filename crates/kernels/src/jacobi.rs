//! Jacobi-iteration kernels: the computation unit of the paper's second
//! use case is one matrix **row** of a Jacobi sweep.

use std::time::{Duration, Instant};

use fupermod_core::kernel::{Kernel, KernelContext};
use fupermod_core::CoreError;

/// One Jacobi sweep over a block of rows.
///
/// For each local row `r` (global index `row_offset + r`) of the band
/// `a` (row-major, `rows × n`), computes
/// `x_new[r] = (b[r] - Σ_{j≠g} a[r][j]·x_old[j]) / a[r][g]`.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent or a diagonal entry is
/// zero.
pub fn jacobi_sweep(
    a: &[f64],
    b: &[f64],
    x_old: &[f64],
    row_offset: usize,
    x_new: &mut [f64],
) {
    let n = x_old.len();
    let rows = x_new.len();
    assert_eq!(a.len(), rows * n, "band must be rows×n");
    assert_eq!(b.len(), rows, "one rhs entry per row");
    assert!(row_offset + rows <= n, "rows exceed the system");
    for r in 0..rows {
        let g = row_offset + r;
        let row = &a[r * n..(r + 1) * n];
        let diag = row[g];
        assert!(diag != 0.0, "zero diagonal at row {g}");
        let mut acc = 0.0;
        for (j, (&aij, &xj)) in row.iter().zip(x_old).enumerate() {
            if j != g {
                acc += aij * xj;
            }
        }
        x_new[r] = (b[r] - acc) / diag;
    }
}

/// The Jacobi computation kernel: `d` units are `d` rows of an
/// `n`-unknown system; one execution performs one sweep over those
/// rows. Complexity is `2·d·n` flops.
#[derive(Debug, Clone, Copy)]
pub struct JacobiKernel {
    n: usize,
}

impl JacobiKernel {
    /// Creates the kernel for a system with `n` unknowns.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "system size must be positive");
        Self { n }
    }

    /// The number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Kernel for JacobiKernel {
    fn complexity(&self, d: u64) -> f64 {
        2.0 * d as f64 * self.n as f64
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        let rows = d as usize;
        if rows == 0 || rows > self.n {
            return Err(CoreError::Kernel(format!(
                "jacobi kernel supports 1..={} rows, got {rows}",
                self.n
            )));
        }
        let n = self.n;
        // A diagonally dominant band and a dense old iterate.
        let mut a = vec![0.0; rows * n];
        for (r, row) in a.chunks_mut(n).enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = if j == r {
                    2.0 * n as f64
                } else {
                    0.5 + ((r * 31 + j * 17) % 13) as f64 * 0.05
                };
            }
        }
        Ok(Box::new(JacobiContext {
            a,
            b: (0..rows).map(|r| (r % 7) as f64 + 1.0).collect(),
            x_old: (0..n).map(|j| ((j % 11) as f64 - 5.0) * 0.1).collect(),
            x_new: vec![0.0; rows],
        }))
    }
}

struct JacobiContext {
    a: Vec<f64>,
    b: Vec<f64>,
    x_old: Vec<f64>,
    x_new: Vec<f64>,
}

impl KernelContext for JacobiContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        let start = Instant::now();
        jacobi_sweep(&self.a, &self.b, &self.x_old, 0, &mut self.x_new);
        Ok(start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::kernel::Kernel;

    #[test]
    fn sweep_solves_diagonal_system_in_one_step() {
        // A = diag(2), b = [2,4,6] → x = [1,2,3].
        let a = [2.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0];
        let b = [2.0, 4.0, 6.0];
        let x_old = [0.0; 3];
        let mut x_new = [0.0; 3];
        jacobi_sweep(&a, &b, &x_old, 0, &mut x_new);
        assert_eq!(x_new, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn sweep_respects_row_offset() {
        // Rows 1..3 of a 3-unknown system.
        let a = [1.0, 4.0, 1.0, 1.0, 1.0, 4.0];
        let b = [4.0, 8.0];
        let x_old = [1.0, 1.0, 1.0];
        let mut x_new = [0.0; 2];
        jacobi_sweep(&a, &b, &x_old, 1, &mut x_new);
        // Row 1: (4 - 1 - 1)/4 = 0.5; row 2: (8 - 1 - 1)/4 = 1.5.
        assert_eq!(x_new, [0.5, 1.5]);
    }

    #[test]
    fn repeated_sweeps_converge_for_dominant_systems() {
        // Full Jacobi on a small diagonally dominant system.
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j { 10.0 } else { 0.3 };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 1.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
            .collect();
        let mut x = vec![0.0; n];
        for _ in 0..60 {
            let mut x_next = vec![0.0; n];
            jacobi_sweep(&a, &b, &x, 0, &mut x_next);
            x = x_next;
        }
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn kernel_complexity_is_linear() {
        let k = JacobiKernel::new(1000);
        assert_eq!(k.complexity(10), 20_000.0);
        assert_eq!(k.complexity(20), 40_000.0);
    }

    #[test]
    fn kernel_executes() {
        let mut k = JacobiKernel::new(256);
        let mut ctx = k.context(64).unwrap();
        assert!(ctx.run().unwrap().as_nanos() > 0);
    }

    #[test]
    fn kernel_rejects_bad_sizes() {
        let mut k = JacobiKernel::new(10);
        assert!(k.context(0).is_err());
        assert!(k.context(11).is_err());
    }
}
