#![warn(missing_docs)]

//! Real computation kernels for the FuPerMod reproduction.
//!
//! These kernels execute genuine floating-point work on the host and
//! implement the framework's [`Kernel`](fupermod_core::kernel::Kernel)
//! interface, so the measurement machinery can be exercised against
//! real hardware (the stand-in for the paper's Netlib BLAS / ATLAS /
//! CUBLAS kernels):
//!
//! * [`gemm`] — dense double-precision matrix multiplication, naive and
//!   cache-blocked, plus [`gemm::MatMulKernel`]: the paper's matmul
//!   computation unit (Fig. 1(b)) — one `b×b`-block panel update with
//!   pivot-buffer copies.
//! * [`jacobi`] — one sweep of the Jacobi iteration over a row block,
//!   the computation unit of the paper's second use case.
//! * [`synthetic`] — a tunable-footprint streaming kernel for
//!   memory-hierarchy studies.

pub mod gemm;
pub mod jacobi;
pub mod synthetic;
