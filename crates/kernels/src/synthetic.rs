//! A tunable synthetic kernel for memory-hierarchy studies.
//!
//! One computation unit performs a fixed number of fused multiply-adds
//! over a working buffer whose size grows with the problem size, so the
//! kernel's speed function on a real machine exhibits the cache
//! plateaus the functional performance models are designed to capture —
//! without needing a full matmul.

use std::time::{Duration, Instant};

use fupermod_core::kernel::{Kernel, KernelContext};
use fupermod_core::CoreError;

/// Streaming multiply-add kernel with `flops_per_unit` operations per
/// computation unit and `doubles_per_unit` f64s of working set per
/// unit.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticKernel {
    flops_per_unit: u64,
    doubles_per_unit: usize,
}

impl SyntheticKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(flops_per_unit: u64, doubles_per_unit: usize) -> Self {
        assert!(flops_per_unit > 0, "flops_per_unit must be positive");
        assert!(doubles_per_unit > 0, "doubles_per_unit must be positive");
        Self {
            flops_per_unit,
            doubles_per_unit,
        }
    }
}

impl Kernel for SyntheticKernel {
    fn complexity(&self, d: u64) -> f64 {
        (self.flops_per_unit * d) as f64
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        if d == 0 {
            return Err(CoreError::Kernel("synthetic kernel needs d >= 1".to_owned()));
        }
        let len = self.doubles_per_unit * d as usize;
        Ok(Box::new(SyntheticContext {
            buf: (0..len).map(|i| 1.0 + (i % 7) as f64 * 1e-3).collect(),
            flops: self.flops_per_unit * d,
        }))
    }
}

struct SyntheticContext {
    buf: Vec<f64>,
    flops: u64,
}

impl KernelContext for SyntheticContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        let start = Instant::now();
        // 2 flops per element per pass.
        let passes = (self.flops / (2 * self.buf.len() as u64)).max(1);
        let mut acc = 0.37_f64;
        for p in 0..passes {
            let scale = 1.0 + (p as f64) * 1e-9;
            for v in &mut self.buf {
                *v = v.mul_add(scale, 1e-12);
                acc += *v;
            }
        }
        // Keep the optimiser honest.
        if acc == f64::NEG_INFINITY {
            return Err(CoreError::Kernel("impossible accumulator".to_owned()));
        }
        std::hint::black_box(acc);
        Ok(start.elapsed())
    }
}

/// A latency-bound synthetic kernel: each run *blocks the host thread*
/// for a deterministic duration proportional to the problem size, and
/// reports that nominal duration.
///
/// This models the dominant cost pattern of accelerator devices during
/// model construction: the host submits work and waits, occupying a
/// thread but almost no CPU. Building models for several such devices
/// serially wastes wall-clock time that parallel construction recovers
/// even on a single-core host — the waits overlap. The reported time is
/// the nominal duration (noise-free), so measurements are fully
/// deterministic and the benchmark stopping rule converges at
/// `reps_min`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyKernel {
    base_seconds: f64,
    seconds_per_unit: f64,
}

impl LatencyKernel {
    /// Creates the kernel: one run of size `d` blocks for
    /// `base_seconds + seconds_per_unit · d`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and non-negative with a
    /// positive sum.
    pub fn new(base_seconds: f64, seconds_per_unit: f64) -> Self {
        assert!(
            base_seconds.is_finite() && base_seconds >= 0.0,
            "base_seconds must be finite and non-negative"
        );
        assert!(
            seconds_per_unit.is_finite() && seconds_per_unit >= 0.0,
            "seconds_per_unit must be finite and non-negative"
        );
        assert!(
            base_seconds + seconds_per_unit > 0.0,
            "kernel must take some time"
        );
        Self {
            base_seconds,
            seconds_per_unit,
        }
    }

    /// The blocking duration for size `d`.
    pub fn duration(&self, d: u64) -> Duration {
        Duration::from_secs_f64(self.base_seconds + self.seconds_per_unit * d as f64)
    }
}

impl Kernel for LatencyKernel {
    fn complexity(&self, d: u64) -> f64 {
        d as f64
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        if d == 0 {
            return Err(CoreError::Kernel("latency kernel needs d >= 1".to_owned()));
        }
        Ok(Box::new(LatencyContext {
            dur: self.duration(d),
        }))
    }
}

struct LatencyContext {
    dur: Duration,
}

impl KernelContext for LatencyContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        // Block the host thread like a synchronous device call, then
        // report the *nominal* time so the measurement is exactly
        // reproducible regardless of scheduler jitter.
        std::thread::sleep(self.dur);
        Ok(self.dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::kernel::Kernel;

    #[test]
    fn latency_kernel_reports_nominal_time() {
        let mut k = LatencyKernel::new(0.0, 1e-4);
        let mut ctx = k.context(3).unwrap();
        let start = std::time::Instant::now();
        let t = ctx.run().unwrap();
        assert_eq!(t, Duration::from_secs_f64(3e-4));
        assert!(start.elapsed() >= t, "must actually block");
        assert!(k.context(0).is_err());
    }

    #[test]
    fn latency_kernel_is_noiseless_under_the_benchmark() {
        use fupermod_core::benchmark::Benchmark;
        use fupermod_core::Precision;
        let mut k = LatencyKernel::new(1e-4, 1e-5);
        let p = Precision::default();
        let point = Benchmark::new(&p).measure(&mut k, 10).unwrap();
        assert_eq!(point.reps, p.reps_min);
        assert!((point.t - 2e-4).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "some time")]
    fn latency_kernel_rejects_zero_duration() {
        let _ = LatencyKernel::new(0.0, 0.0);
    }

    #[test]
    fn complexity_is_linear() {
        let k = SyntheticKernel::new(1000, 8);
        assert_eq!(k.complexity(5), 5000.0);
    }

    #[test]
    fn kernel_runs_and_takes_time() {
        let mut k = SyntheticKernel::new(100_000, 64);
        let mut ctx = k.context(10).unwrap();
        let t = ctx.run().unwrap();
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn rejects_zero_units() {
        let mut k = SyntheticKernel::new(100, 8);
        assert!(k.context(0).is_err());
    }

    #[test]
    fn works_with_the_benchmark_machinery() {
        use fupermod_core::benchmark::Benchmark;
        use fupermod_core::Precision;
        let mut k = SyntheticKernel::new(50_000, 16);
        let p = Precision {
            reps_min: 2,
            reps_max: 4,
            ..Precision::default()
        };
        let point = Benchmark::new(&p).measure(&mut k, 20).unwrap();
        assert_eq!(point.d, 20);
        assert!(point.t > 0.0);
        assert!(point.reps >= 2);
    }
}
