//! A tunable synthetic kernel for memory-hierarchy studies.
//!
//! One computation unit performs a fixed number of fused multiply-adds
//! over a working buffer whose size grows with the problem size, so the
//! kernel's speed function on a real machine exhibits the cache
//! plateaus the functional performance models are designed to capture —
//! without needing a full matmul.

use std::time::{Duration, Instant};

use fupermod_core::kernel::{Kernel, KernelContext};
use fupermod_core::CoreError;

/// Streaming multiply-add kernel with `flops_per_unit` operations per
/// computation unit and `doubles_per_unit` f64s of working set per
/// unit.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticKernel {
    flops_per_unit: u64,
    doubles_per_unit: usize,
}

impl SyntheticKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(flops_per_unit: u64, doubles_per_unit: usize) -> Self {
        assert!(flops_per_unit > 0, "flops_per_unit must be positive");
        assert!(doubles_per_unit > 0, "doubles_per_unit must be positive");
        Self {
            flops_per_unit,
            doubles_per_unit,
        }
    }
}

impl Kernel for SyntheticKernel {
    fn complexity(&self, d: u64) -> f64 {
        (self.flops_per_unit * d) as f64
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        if d == 0 {
            return Err(CoreError::Kernel("synthetic kernel needs d >= 1".to_owned()));
        }
        let len = self.doubles_per_unit * d as usize;
        Ok(Box::new(SyntheticContext {
            buf: (0..len).map(|i| 1.0 + (i % 7) as f64 * 1e-3).collect(),
            flops: self.flops_per_unit * d,
        }))
    }
}

struct SyntheticContext {
    buf: Vec<f64>,
    flops: u64,
}

impl KernelContext for SyntheticContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        let start = Instant::now();
        // 2 flops per element per pass.
        let passes = (self.flops / (2 * self.buf.len() as u64)).max(1);
        let mut acc = 0.37_f64;
        for p in 0..passes {
            let scale = 1.0 + (p as f64) * 1e-9;
            for v in &mut self.buf {
                *v = v.mul_add(scale, 1e-12);
                acc += *v;
            }
        }
        // Keep the optimiser honest.
        if acc == f64::NEG_INFINITY {
            return Err(CoreError::Kernel("impossible accumulator".to_owned()));
        }
        std::hint::black_box(acc);
        Ok(start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::kernel::Kernel;

    #[test]
    fn complexity_is_linear() {
        let k = SyntheticKernel::new(1000, 8);
        assert_eq!(k.complexity(5), 5000.0);
    }

    #[test]
    fn kernel_runs_and_takes_time() {
        let mut k = SyntheticKernel::new(100_000, 64);
        let mut ctx = k.context(10).unwrap();
        let t = ctx.run().unwrap();
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn rejects_zero_units() {
        let mut k = SyntheticKernel::new(100, 8);
        assert!(k.context(0).is_err());
    }

    #[test]
    fn works_with_the_benchmark_machinery() {
        use fupermod_core::benchmark::Benchmark;
        use fupermod_core::Precision;
        let mut k = SyntheticKernel::new(50_000, 16);
        let p = Precision {
            reps_min: 2,
            reps_max: 4,
            ..Precision::default()
        };
        let point = Benchmark::new(&p).measure(&mut k, 20).unwrap();
        assert_eq!(point.d, 20);
        assert!(point.t > 0.0);
        assert!(point.reps >= 2);
    }
}
