//! Dense double-precision matrix multiplication and the paper's matmul
//! computation kernel.

use std::time::{Duration, Instant};

use fupermod_core::kernel::{Kernel, KernelContext};
use fupermod_core::CoreError;

/// `C += A · B` with the textbook triple loop (ikj order so the inner
/// loop streams rows). `A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all
/// row-major.
///
/// # Panics
///
/// Panics if the slices do not match the given dimensions.
pub fn gemm_naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    for i in 0..m {
        for l in 0..k {
            let aval = a[i * k + l];
            if aval == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
}

/// `C += A · B` with cache blocking (tile size `TILE`), same layout as
/// [`gemm_naive`]. Numerically identical up to floating-point
/// reassociation.
///
/// # Panics
///
/// Panics if the slices do not match the given dimensions.
pub fn gemm_blocked(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const TILE: usize = 64;
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    for ii in (0..m).step_by(TILE) {
        let i_end = (ii + TILE).min(m);
        for ll in (0..k).step_by(TILE) {
            let l_end = (ll + TILE).min(k);
            for jj in (0..n).step_by(TILE) {
                let j_end = (jj + TILE).min(n);
                for i in ii..i_end {
                    for l in ll..l_end {
                        let aval = a[i * k + l];
                        if aval == 0.0 {
                            continue;
                        }
                        let brow = &b[l * n + jj..l * n + j_end];
                        let crow = &mut c[i * n + jj..i * n + j_end];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
}

/// `C += A · B` parallelised over row bands on scoped worker threads,
/// same layout as [`gemm_naive`]. `threads = 0` means one worker per
/// available core ([`std::thread::available_parallelism`]);
/// `threads = 1` falls back to [`gemm_blocked`] on the calling thread.
///
/// Each worker runs [`gemm_blocked`] on a contiguous band of rows of
/// `A`/`C` against the whole of `B`. Inside `gemm_blocked` the
/// accumulation order for any single row of `C` is determined only by
/// the `k`/`n` tiling, never by which rows share the call, so the
/// result is **bit-identical** to [`gemm_blocked`] on the full
/// matrices for every row — not merely equal up to rounding.
///
/// # Panics
///
/// Panics if the slices do not match the given dimensions.
pub fn gemm_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    let workers = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(m)
    .max(1);
    if workers <= 1 {
        return gemm_blocked(m, n, k, a, b, c);
    }

    // Split the rows into `workers` near-even contiguous bands.
    let base = m / workers;
    let extra = m % workers;
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut row0 = 0usize;
        for w in 0..workers {
            let rows = base + usize::from(w < extra);
            if rows == 0 {
                continue;
            }
            let (band, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let a_band = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || gemm_blocked(rows, n, k, a_band, b, band));
            row0 += rows;
        }
    });
}

/// Near-square arrangement of `d` blocks: `m = ⌈√d⌉` rows of blocks and
/// `n = ⌈d/m⌉` columns, exactly the paper's
/// `mᵢ = ⌈√dᵢ⌉; nᵢ = ⌈dᵢ/mᵢ⌉` initialisation.
pub fn block_arrangement(d: u64) -> (usize, usize) {
    if d == 0 {
        return (0, 0);
    }
    let m = (d as f64).sqrt().ceil() as usize;
    let n = (d as f64 / m as f64).ceil() as usize;
    (m, n)
}

/// The paper's matrix-multiplication computation kernel (Fig. 1(b)):
/// one computation unit is the update of a `b×b` block of the local
/// submatrix `C` with parts of the pivot column `A(b)` and pivot row
/// `B(b)`.
///
/// For a problem size of `d` units the context allocates the local
/// submatrices `Aᵢ`, `Bᵢ`, `Cᵢ` of `(m·b)×(n·b)` elements (with
/// `m×n ≈ d`) plus the pivot buffers, and one execution performs the
/// local work of one iteration of the main loop: copy the pivot parts
/// out of `Aᵢ`/`Bᵢ` (replicating the memory-access pattern of the MPI
/// communication) and call GEMM once. Complexity is
/// `2·(m·b)·(n·b)·b` flops.
///
/// # Examples
///
/// ```
/// use fupermod_core::benchmark::Benchmark;
/// use fupermod_core::Precision;
/// use fupermod_kernels::gemm::MatMulKernel;
///
/// # fn main() -> Result<(), fupermod_core::CoreError> {
/// let mut kernel = MatMulKernel::new(8);
/// let precision = Precision { reps_min: 1, reps_max: 2, ..Precision::default() };
/// let point = Benchmark::new(&precision).measure(&mut kernel, 16)?;
/// assert!(point.t > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatMulKernel {
    block: usize,
    use_blocked_gemm: bool,
    /// GEMM worker threads: 1 = single-threaded, 0 = auto, n = fixed.
    gemm_threads: usize,
}

impl MatMulKernel {
    /// Creates the kernel with blocking factor `b` (the paper's
    /// granularity parameter), using the cache-blocked GEMM.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn new(block: usize) -> Self {
        assert!(block > 0, "blocking factor must be positive");
        Self {
            block,
            use_blocked_gemm: true,
            gemm_threads: 1,
        }
    }

    /// Same kernel but with the naive GEMM — the "Netlib BLAS" stand-in
    /// whose speed function has the pronounced memory-hierarchy shape
    /// of the paper's Fig. 2.
    pub fn with_naive_gemm(block: usize) -> Self {
        assert!(block > 0, "blocking factor must be positive");
        Self {
            block,
            use_blocked_gemm: false,
            gemm_threads: 1,
        }
    }

    /// Runs the blocked GEMM across `threads` row-band workers
    /// ([`gemm_parallel`]; `0` = one per available core). The result
    /// stays bit-identical to the single-threaded kernel. Ignored by
    /// the naive-GEMM variant, whose whole point is the unoptimised
    /// memory behaviour.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.gemm_threads = threads;
        self
    }

    /// The blocking factor.
    pub fn block(&self) -> usize {
        self.block
    }

    /// The configured GEMM thread count (1 = single-threaded, 0 = auto).
    pub fn threads(&self) -> usize {
        self.gemm_threads
    }
}

impl Kernel for MatMulKernel {
    fn complexity(&self, d: u64) -> f64 {
        let (m, n) = block_arrangement(d);
        let b = self.block as f64;
        2.0 * (m as f64 * b) * (n as f64 * b) * b
    }

    fn context(&mut self, d: u64) -> Result<Box<dyn KernelContext>, CoreError> {
        if d == 0 {
            return Err(CoreError::Kernel(
                "matmul kernel needs at least one block".to_owned(),
            ));
        }
        let (m, n) = block_arrangement(d);
        let b = self.block;
        let rows = m * b;
        let cols = n * b;
        // Deterministic non-trivial contents.
        let fill = |len: usize, scale: f64| -> Vec<f64> {
            (0..len).map(|i| scale * ((i % 17) as f64 - 8.0)).collect()
        };
        Ok(Box::new(MatMulContext {
            rows,
            cols,
            b,
            a: fill(rows * b, 0.01),
            bm: fill(b * cols, 0.02),
            c: vec![0.0; rows * cols],
            pivot_a: vec![0.0; rows * b],
            pivot_b: vec![0.0; b * cols],
            use_blocked: self.use_blocked_gemm,
            threads: self.gemm_threads,
        }))
    }
}

struct MatMulContext {
    rows: usize,
    cols: usize,
    b: usize,
    /// Local part of the pivot column, `rows×b`.
    a: Vec<f64>,
    /// Local part of the pivot row, `b×cols`.
    bm: Vec<f64>,
    /// Local submatrix `C`, `rows×cols`.
    c: Vec<f64>,
    pivot_a: Vec<f64>,
    pivot_b: Vec<f64>,
    use_blocked: bool,
    threads: usize,
}

impl KernelContext for MatMulContext {
    fn run(&mut self) -> Result<Duration, CoreError> {
        let start = Instant::now();
        // Replicate the local overhead of the MPI communication: copy
        // the pivot column/row into the working buffers.
        self.pivot_a.copy_from_slice(&self.a);
        self.pivot_b.copy_from_slice(&self.bm);
        if self.use_blocked && self.threads != 1 {
            gemm_parallel(
                self.rows,
                self.cols,
                self.b,
                &self.pivot_a,
                &self.pivot_b,
                &mut self.c,
                self.threads,
            );
        } else if self.use_blocked {
            gemm_blocked(
                self.rows,
                self.cols,
                self.b,
                &self.pivot_a,
                &self.pivot_b,
                &mut self.c,
            );
        } else {
            gemm_naive(
                self.rows,
                self.cols,
                self.b,
                &self.pivot_a,
                &self.pivot_b,
                &mut self.c,
            );
        }
        Ok(start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::kernel::Kernel;

    fn reference_mm(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[i * k + l] * b[l * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn test_matrices(m: usize, n: usize, k: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..m * k).map(|i| ((i * 7 + 3) % 23) as f64 * 0.25 - 2.0).collect();
        let b: Vec<f64> = (0..k * n).map(|i| ((i * 5 + 1) % 19) as f64 * 0.5 - 4.0).collect();
        (a, b)
    }

    #[test]
    fn naive_matches_reference() {
        let (m, n, k) = (7, 9, 5);
        let (a, b) = test_matrices(m, n, k);
        let mut c = vec![0.0; m * n];
        gemm_naive(m, n, k, &a, &b, &mut c);
        let expected = reference_mm(m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn blocked_matches_naive() {
        let (m, n, k) = (130, 70, 65);
        let (a, b) = test_matrices(m, n, k);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_naive(m, n, k, &a, &b, &mut c1);
        gemm_blocked(m, n, k, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_blocked() {
        // Not merely close: every row's accumulation order is the same
        // regardless of the band split, so results match bit-for-bit.
        for (m, n, k) in [(1, 1, 1), (7, 9, 5), (64, 64, 64), (130, 70, 65), (257, 33, 129)] {
            let (a, b) = test_matrices(m, n, k);
            let mut reference = vec![0.5; m * n];
            gemm_blocked(m, n, k, &a, &b, &mut reference);
            for threads in [0, 1, 2, 3, 4, 7, 16] {
                let mut c = vec![0.5; m * n];
                gemm_parallel(m, n, k, &a, &b, &mut c, threads);
                for (i, (x, y)) in c.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "m={m} n={n} k={k} threads={threads} elem {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_handles_more_threads_than_rows() {
        let (m, n, k) = (3, 8, 4);
        let (a, b) = test_matrices(m, n, k);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_blocked(m, n, k, &a, &b, &mut c1);
        gemm_parallel(m, n, k, &a, &b, &mut c2, 64);
        assert_eq!(c1, c2);
    }

    #[test]
    fn threaded_kernel_matches_single_threaded() {
        // Same deterministic inputs → the accumulated C state after two
        // runs must be bit-identical across thread counts.
        let run_twice = |mut kernel: MatMulKernel| -> Duration {
            let mut ctx = kernel.context(16).unwrap();
            let t1 = ctx.run().unwrap();
            let t2 = ctx.run().unwrap();
            t1 + t2
        };
        assert!(run_twice(MatMulKernel::new(8)).as_nanos() > 0);
        assert!(run_twice(MatMulKernel::new(8).with_threads(4)).as_nanos() > 0);
        assert_eq!(MatMulKernel::new(8).with_threads(4).threads(), 4);
        assert_eq!(MatMulKernel::new(8).threads(), 1);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let mut c = vec![1.0; 4];
        gemm_naive(2, 2, 2, &[1.0, 0.0, 0.0, 1.0], &[2.0, 0.0, 0.0, 2.0], &mut c);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn block_arrangement_is_near_square() {
        assert_eq!(block_arrangement(0), (0, 0));
        assert_eq!(block_arrangement(1), (1, 1));
        assert_eq!(block_arrangement(4), (2, 2));
        assert_eq!(block_arrangement(5), (3, 2));
        assert_eq!(block_arrangement(12), (4, 3));
        // m·n always covers d.
        for d in 1..200u64 {
            let (m, n) = block_arrangement(d);
            assert!((m * n) as u64 >= d, "d={d}");
            assert!(m.abs_diff(n) <= m.max(n) / 2 + 1, "far from square at d={d}");
        }
    }

    #[test]
    fn complexity_follows_arrangement() {
        let k = MatMulKernel::new(16);
        // d=4 → 2×2 blocks → 2·32·32·16.
        assert_eq!(k.complexity(4), 2.0 * 32.0 * 32.0 * 16.0);
    }

    #[test]
    fn kernel_executes_and_accumulates() {
        let mut k = MatMulKernel::new(4);
        let mut ctx = k.context(4).unwrap();
        let t1 = ctx.run().unwrap();
        let t2 = ctx.run().unwrap();
        assert!(t1.as_nanos() > 0 && t2.as_nanos() > 0);
    }

    #[test]
    fn kernel_rejects_zero_size() {
        let mut k = MatMulKernel::new(4);
        assert!(k.context(0).is_err());
    }

    #[test]
    fn naive_variant_runs() {
        let mut k = MatMulKernel::with_naive_gemm(4);
        let mut ctx = k.context(9).unwrap();
        assert!(ctx.run().unwrap().as_nanos() > 0);
    }
}
