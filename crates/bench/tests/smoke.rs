//! Smoke tests: the figure/experiment binaries run to completion in
//! `--quick` mode and emit well-formed CSV.

use std::process::Command;

fn run_quick(bin: &str) -> String {
    let out = Command::new(bin)
        .arg("--quick")
        .output()
        .expect("binary failed to launch");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("non-utf8 output")
}

fn assert_csv_shape(stdout: &str, expected_cols: usize, min_rows: usize) {
    let mut lines = stdout.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().expect("missing CSV header");
    assert_eq!(
        header.split(',').count(),
        expected_cols,
        "bad header: {header}"
    );
    let rows: Vec<&str> = lines.collect();
    assert!(
        rows.len() >= min_rows,
        "only {} data rows:\n{stdout}",
        rows.len()
    );
    for row in rows {
        assert_eq!(row.split(',').count(), expected_cols, "bad row: {row}");
    }
}

#[test]
fn fig2_quick_emits_interpolation_series() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_fig2_interpolation"));
    assert_csv_shape(&stdout, 4, 20);
}

#[test]
fn exp1_quick_emits_quality_rows() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp1_partition_quality"));
    // 4 platforms × 2 totals × 4 partitioners.
    assert_csv_shape(&stdout, 6, 32);
    // The heterogeneous testbeds must show model-based speedups > 1.
    assert!(
        stdout
            .lines()
            .filter(|l| l.starts_with("two-speed") && l.contains("fpm-"))
            .all(|l| {
                let speedup: f64 = l.rsplit(',').next().unwrap().parse().unwrap();
                speedup > 1.2
            }),
        "two-speed FPM rows lack speedup:\n{stdout}"
    );
}

#[test]
fn exp3_quick_shows_fpm_at_least_matching_cpm() {
    let stdout = run_quick(env!("CARGO_BIN_EXE_exp3_matmul_speedup"));
    assert_csv_shape(&stdout, 6, 12);
}

#[test]
fn exp4_emits_growing_ratio() {
    // exp4 has no --quick (it is already fast); run as-is.
    let out = Command::new(env!("CARGO_BIN_EXE_exp4_matrix2d_comm"))
        .output()
        .expect("binary failed to launch");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_csv_shape(&stdout, 5, 6);
    let ratios: Vec<f64> = stdout
        .lines()
        .skip(1)
        .map(|l| l.rsplit(',').next().unwrap().parse().unwrap())
        .collect();
    assert!(
        ratios.windows(2).all(|w| w[1] >= w[0] - 1e-9),
        "ratio not monotone: {ratios:?}"
    );
}
