//! Criterion bench: GEMM throughput, naive vs blocked — the host-side
//! stand-ins for the paper's Netlib vs optimised BLAS kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fupermod_kernels::gemm::{gemm_blocked, gemm_naive};

fn matrices(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 13) as f64 * 0.1).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 3) % 11) as f64 * 0.2).collect();
    (a, b)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let (a, b) = matrices(n);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0; n * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_naive(n, n, n, black_box(&a), black_box(&b), &mut cbuf);
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0; n * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_blocked(n, n, n, black_box(&a), black_box(&b), &mut cbuf);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
