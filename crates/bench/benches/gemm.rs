//! Criterion bench: GEMM throughput, naive vs blocked vs row-band
//! parallel — the host-side stand-ins for the paper's Netlib vs
//! optimised BLAS kernels, plus the threaded variant used when one
//! simulated device owns several cores.
//!
//! `gemm_parallel` is bit-identical to `gemm_blocked` per row (tested
//! in fupermod-kernels), so these bars compare *time only*. On a
//! single-core host the parallel bars will not beat blocked — record
//! `host.cpus` alongside the numbers (scripts/bench_record.sh does).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fupermod_kernels::gemm::{gemm_blocked, gemm_naive, gemm_parallel};

fn matrices(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 13) as f64 * 0.1).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 3) % 11) as f64 * 0.2).collect();
    (a, b)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let (a, b) = matrices(n);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0; n * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_naive(n, n, n, black_box(&a), black_box(&b), &mut cbuf);
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0; n * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_blocked(n, n, n, black_box(&a), black_box(&b), &mut cbuf);
            })
        });
    }
    group.finish();
}

/// Blocked vs parallel at the sizes where threading should pay: the
/// ISSUE's acceptance point is 512³ with ≥4 threads.
fn bench_gemm_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_parallel");
    for n in [256usize, 512] {
        let (a, b) = matrices(n);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, &n| {
            let mut cbuf = vec![0.0; n * n];
            bch.iter(|| {
                cbuf.fill(0.0);
                gemm_blocked(n, n, n, black_box(&a), black_box(&b), &mut cbuf);
            })
        });
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel{threads}"), n),
                &n,
                |bch, &n| {
                    let mut cbuf = vec![0.0; n * n];
                    bch.iter(|| {
                        cbuf.fill(0.0);
                        gemm_parallel(n, n, n, black_box(&a), black_box(&b), &mut cbuf, threads);
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_gemm_parallel);
criterion_main!(benches);
