//! Criterion bench: collective algorithms on the message-passing
//! runtime — hub vs ring vs tree schedules.
//!
//! Two things are measured here:
//!
//! * **wall-clock** of the threaded backend executing each schedule
//!   (scheduling + copying overhead of the runtime itself), and
//! * **virtual seconds** of the simulated backend, reported via
//!   `vtime_*` bench names whose "time" is the Hockney virtual clock
//!   charged by each schedule (1 iter = 1 virtual run). These are the
//!   numbers `scripts/bench_record.sh` (MODE=pr4) records into
//!   `BENCH_PR4.json`: the serialized hub grows O(p) per collective
//!   while tree grows O(log p) and ring pipelines, so at p = 64 the
//!   hub loses by well over the 4x the acceptance bar asks for.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{run_ranks, AlgorithmPolicy, Communicator, ReduceOp, RuntimeConfig};

/// One collective round: a ~1 KiB `allgatherv` and an `allreduce`.
fn sweep(config: RuntimeConfig, size: usize) -> f64 {
    let comms = config.build(size);
    let out = run_ranks(comms, |mut c| {
        let own: Vec<f64> = (0..128).map(|i| (i + c.rank()) as f64).collect();
        let gathered = c.allgatherv(&own).expect("allgatherv");
        let reduced = c.allreduce(own[0], ReduceOp::Sum).expect("allreduce");
        gathered.len() as f64 + reduced
    });
    out.into_iter().sum()
}

fn policies() -> [(&'static str, AlgorithmPolicy); 3] {
    [
        ("hub", AlgorithmPolicy::hub()),
        ("ring", AlgorithmPolicy::ring()),
        ("tree", AlgorithmPolicy::tree()),
    ]
}

/// Wall-clock of the threaded backend (runtime overhead per schedule).
fn bench_thread_wall_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_thread");
    for (name, policy) in policies() {
        group.bench_function(&format!("p8_{name}"), |b| {
            b.iter(|| sweep(RuntimeConfig::thread().with_algorithms(policy), black_box(8)))
        });
    }
    group.finish();
}

/// Virtual time of the simulated backend: the bench "measures" a
/// custom duration equal to the Hockney virtual seconds one collective
/// round costs under each schedule at p in {4, 16, 64}. This is the
/// paper-relevant metric — schedule quality, not host speed.
fn bench_sim_virtual_time(c: &mut Criterion) {
    for p in [4usize, 16, 64] {
        for (name, policy) in policies() {
            c.bench_function(&format!("vtime_collectives/p{p}_{name}"), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let (comms, handle) = RuntimeConfig::sim(p, LinkModel::ethernet())
                            .with_algorithms(policy)
                            .build_with_handle(p);
                        black_box(run_ranks(comms, |mut cm| {
                            let own: Vec<f64> =
                                (0..128).map(|i| (i + cm.rank()) as f64).collect();
                            cm.allgatherv(&own).expect("allgatherv");
                            cm.allreduce(own[0], ReduceOp::Sum).expect("allreduce")
                        }));
                        let vt = handle.virtual_time().expect("sim virtual clock");
                        total += Duration::from_secs_f64(vt);
                    }
                    total
                })
            });
        }
    }
}

criterion_group!(benches, bench_thread_wall_clock, bench_sim_virtual_time);
criterion_main!(benches);
