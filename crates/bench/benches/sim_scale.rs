//! Criterion bench: discrete-event engine scaling — wall-clock of the
//! `EventSim` interpreter running a balancing-style collective round
//! (one `allgatherv` of a `u64` per rank plus one `allreduce`) at
//! p ∈ {64, 1k, 10k, 100k} under the ring and tree schedules.
//!
//! Unlike `comm_collectives` (which reports Hockney *virtual* seconds,
//! schedule quality), these names report real host wall-clock: the
//! cost of simulating the schedule, which is what caps the rank count
//! one host can model. `sim_scale/p100k_ring_balance` is the
//! acceptance scenario — eight ring rounds at p = 100 000, the
//! collective skeleton of a balancing run — and must finish in
//! seconds, not minutes.
//!
//! After the timed benches this binary prints `# metric NAME VALUE`
//! lines (events dispatched per wall second at p = 100k, peak RSS),
//! which `scripts/bench_record.sh` (MODE=pr7) records into
//! `BENCH_PR7.json` alongside the timings.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{AlgorithmPolicy, EventSim, ReduceOp, RuntimeConfig, SimEngine};

/// Builds a fresh event engine over a uniform-ethernet topology.
fn engine(p: usize, policy: AlgorithmPolicy) -> EventSim {
    let config = RuntimeConfig::sim(p, LinkModel::ethernet())
        .with_engine(SimEngine::Event)
        .with_algorithms(policy);
    EventSim::from_config(&config, p).expect("event engine")
}

/// One balancing-style collective round on every rank: share a `u64`
/// contribution (`allgatherv`) and agree on a global sum
/// (`allreduce`). No barriers — the balancing loop doesn't use them.
fn round(sim: &mut EventSim, contribs: &[u64], times: &[f64]) {
    for r in sim.allgatherv(contribs) {
        r.expect("rank skipped").expect("allgatherv failed");
    }
    for r in sim.allreduce(times, ReduceOp::Sum) {
        r.expect("rank skipped").expect("allreduce failed");
    }
}

/// Runs `rounds` collective rounds at `p` and returns (wall seconds,
/// events dispatched, final virtual time).
fn scenario(p: usize, policy: AlgorithmPolicy, rounds: usize) -> (f64, u64, f64) {
    let contribs: Vec<u64> = (0..p as u64).collect();
    let times: Vec<f64> = (0..p).map(|r| 1.0 + r as f64 * 1e-6).collect();
    let start = Instant::now();
    let mut sim = engine(p, policy);
    for _ in 0..rounds {
        round(&mut sim, &contribs, &times);
    }
    (start.elapsed().as_secs_f64(), sim.events(), sim.max_time())
}

fn policies() -> [(&'static str, AlgorithmPolicy); 2] {
    [
        ("ring", AlgorithmPolicy::ring()),
        ("tree", AlgorithmPolicy::tree()),
    ]
}

/// Wall-clock of one collective round at each scale point.
fn bench_scale_sweep(c: &mut Criterion) {
    for (label, p) in [("p64", 64usize), ("p1k", 1_000), ("p10k", 10_000), ("p100k", 100_000)] {
        for (name, policy) in policies() {
            c.bench_function(&format!("sim_scale/{label}_{name}"), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let (wall, events, vt) = scenario(p, policy, 1);
                        black_box((events, vt));
                        total += Duration::from_secs_f64(wall);
                    }
                    total
                })
            });
        }
    }
}

/// The acceptance scenario: eight ring rounds at p = 100 000 — the
/// collective skeleton of a balancing run at cluster scale.
fn bench_p100k_balance(c: &mut Criterion) {
    c.bench_function("sim_scale/p100k_ring_balance", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let (wall, events, vt) = scenario(100_000, AlgorithmPolicy::ring(), 8);
                black_box((events, vt));
                total += Duration::from_secs_f64(wall);
            }
            total
        })
    });
}

/// Peak resident set size of this process in MiB, from
/// `/proc/self/status` `VmHWM` (0.0 when unavailable, e.g. non-Linux).
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Emits the derived `# metric` lines for `bench_record.sh MODE=pr7`:
/// dispatch throughput at p = 100k and the process peak RSS after the
/// largest scenario has run.
fn emit_metrics(_c: &mut Criterion) {
    let (wall, events, vt) = scenario(100_000, AlgorithmPolicy::ring(), 8);
    println!("# metric sim_scale_p100k_events {events}");
    println!("# metric sim_scale_p100k_wall_s {wall:.6}");
    println!(
        "# metric sim_scale_p100k_events_per_sec {:.1}",
        events as f64 / wall.max(1e-9)
    );
    println!("# metric sim_scale_p100k_virtual_s {vt:.6}");
    println!("# metric sim_scale_peak_rss_mib {:.1}", peak_rss_mib());
}

criterion_group!(benches, bench_scale_sweep, bench_p100k_balance, emit_metrics);
criterion_main!(benches);
