//! Criterion bench: overhead of the measurement machinery itself —
//! the statistical loop around a (simulated, hence nearly free) kernel,
//! the synchronised group variant, and the cost of the observability
//! instrumentation (default `NullSink` vs an actively recording sink).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_core::benchmark::Benchmark;
use fupermod_core::kernel::{DeviceKernel, Kernel};
use fupermod_core::trace::MemorySink;
use fupermod_core::Precision;
use fupermod_platform::{cluster, WorkloadProfile};

fn bench_single(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 10,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    c.bench_function("benchmark_single_device", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
}

fn bench_group(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 6,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    c.bench_function("benchmark_group_of_4", |b| {
        b.iter(|| {
            let mut ks: Vec<DeviceKernel> = (0..4)
                .map(|i| DeviceKernel::new(cluster::fast_cpu("c", i), profile.clone()))
                .collect();
            let mut refs: Vec<&mut dyn Kernel> =
                ks.iter_mut().map(|k| k as &mut dyn Kernel).collect();
            Benchmark::new(&precision)
                .measure_group(&mut refs, black_box(&[100, 200, 300, 400]))
                .unwrap()
        })
    });
}

/// The NullSink default must cost nothing measurable: compare the same
/// measurement loop untraced (implicit `NullSink`) against one feeding
/// an in-memory recording sink. The first two bars should coincide; the
/// third shows the (accepted) price of actually recording.
fn bench_trace_overhead(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 10,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("null_sink_default", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
    group.bench_function("null_sink_explicit", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .with_trace(fupermod_core::trace::null_sink())
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
    group.bench_function("memory_sink_recording", |b| {
        let sink = MemorySink::new();
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            let p = Benchmark::new(&precision)
                .with_trace(&sink)
                .measure(&mut k, black_box(500))
                .unwrap();
            sink.take(); // keep memory flat across iterations
            p
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single, bench_group, bench_trace_overhead);
criterion_main!(benches);
