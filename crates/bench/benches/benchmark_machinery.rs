//! Criterion bench: overhead of the measurement machinery itself —
//! the statistical loop around a (simulated, hence nearly free) kernel,
//! the synchronised group variant, and the cost of the observability
//! instrumentation (default `NullSink` vs an actively recording sink).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_core::benchmark::Benchmark;
use fupermod_core::kernel::{DeviceKernel, Kernel};
use fupermod_core::trace::MemorySink;
use fupermod_core::Precision;
use fupermod_platform::{cluster, WorkloadProfile};

fn bench_single(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 10,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    c.bench_function("benchmark_single_device", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
}

fn bench_group(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 6,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    c.bench_function("benchmark_group_of_4", |b| {
        b.iter(|| {
            let mut ks: Vec<DeviceKernel> = (0..4)
                .map(|i| DeviceKernel::new(cluster::fast_cpu("c", i), profile.clone()))
                .collect();
            let mut refs: Vec<&mut dyn Kernel> =
                ks.iter_mut().map(|k| k as &mut dyn Kernel).collect();
            Benchmark::new(&precision)
                .measure_group(&mut refs, black_box(&[100, 200, 300, 400]))
                .unwrap()
        })
    });
}

/// The NullSink default must cost nothing measurable: compare the same
/// measurement loop untraced (implicit `NullSink`) against one feeding
/// an in-memory recording sink. The first two bars should coincide; the
/// third shows the (accepted) price of actually recording.
fn bench_trace_overhead(c: &mut Criterion) {
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision {
        reps_min: 3,
        reps_max: 10,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    };
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("null_sink_default", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
    group.bench_function("null_sink_explicit", |b| {
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            Benchmark::new(&precision)
                .with_trace(fupermod_core::trace::null_sink())
                .measure(&mut k, black_box(500))
                .unwrap()
        })
    });
    group.bench_function("memory_sink_recording", |b| {
        let sink = MemorySink::new();
        b.iter(|| {
            let mut k = DeviceKernel::new(cluster::fast_cpu("c", 7), profile.clone());
            let p = Benchmark::new(&precision)
                .with_trace(&sink)
                .measure(&mut k, black_box(500))
                .unwrap();
            sink.take(); // keep memory flat across iterations
            p
        })
    });
    group.finish();
}

/// The per-repetition statistics inside `Benchmark::measure`: after
/// every new sample the stopping rule needs the outlier-filtered mean
/// and confidence interval. The old path re-ran `reject_outliers`
/// (full sort + median + MAD) over the whole sample each repetition —
/// O(n² log n) over a measurement; `IncrementalStats` keeps the sample
/// sorted and answers from it. Both bars compute the identical
/// filtered statistics at every prefix of the same noisy stream.
fn bench_incremental_stats(c: &mut Criterion) {
    use fupermod_num::stats::{reject_outliers, IncrementalStats, OnlineStats};

    // A deterministic noisy stream with genuine outliers, like a timing
    // sample: base level, jitter, and occasional large spikes.
    let samples: Vec<f64> = (0..60)
        .map(|i| {
            let base = 1.0 + 0.01 * ((i * 37 % 17) as f64 - 8.0);
            if i % 13 == 5 {
                base * 3.0
            } else {
                base
            }
        })
        .collect();
    let k = 3.0;

    let mut group = c.benchmark_group("benchmark_stats");
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut inc = IncrementalStats::new();
            let mut last = 0.0;
            for &x in black_box(&samples) {
                inc.push(x);
                let (stats, _) = inc.filtered(k);
                last = stats.mean();
            }
            last
        })
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            let mut all = Vec::new();
            let mut last = 0.0;
            for &x in black_box(&samples) {
                all.push(x);
                let kept = reject_outliers(&all, k);
                let mut stats = OnlineStats::new();
                for &v in &kept {
                    stats.push(v);
                }
                last = stats.mean();
            }
            last
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single,
    bench_group,
    bench_trace_overhead,
    bench_incremental_stats
);
criterion_main!(benches);
