//! Criterion bench: the Beaumont column-arrangement DP as the process
//! count grows — cubic in `p` but `p` is small on real platforms.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fupermod_core::matrix2d::column_partition;

fn bench_column_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix2d");
    for p in [4usize, 16, 64, 128] {
        let areas: Vec<u64> = (0..p).map(|i| 100 + (i as u64 * 37) % 400).collect();
        let n = 1024u64;
        group.bench_with_input(BenchmarkId::new("column_dp", p), &p, |b, _| {
            b.iter(|| column_partition(black_box(n), black_box(&areas)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_column_partition);
criterion_main!(benches);
