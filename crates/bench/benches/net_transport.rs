//! Criterion bench: the TCP transport against the threaded backend it
//! mirrors, over real loopback sockets (`scripts/bench_record.sh
//! MODE=pr8` → `BENCH_PR8.json`; see docs/RUNTIME.md §10).
//!
//! Three questions, all on one host so the numbers isolate *transport*
//! cost (frame codec, reader threads, kernel socket hops) from network
//! cost:
//!
//! * `net_collectives/p4_{tcp,threaded}` — wall time of one balancing
//!   style collective round (`bcast` + `allgatherv` + `allreduce`) on
//!   4 ranks. Rank 0 times the loop; rendezvous/boot is outside the
//!   timed region.
//! * `net_p2p/rtt_{tcp,threaded}` — small-message round-trip latency
//!   between two ranks (one 8-byte float each way per iter).
//! * `# metric net_{tcp,threaded}_bulk_mib_per_sec` — one-way bulk
//!   throughput: 8 × 4 MiB messages, sender-start to ack-received.
//!
//! The derived ratios recorded by `bench_record.sh` are TCP ÷
//! threaded — the socket transport's cost factor over shared-memory
//! mailboxes for the same data plane.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_runtime::net::{connect, connect_with_listener, TcpComm, TcpConfig};
use fupermod_runtime::{run_ranks, Communicator, ReduceOp, RuntimeConfig, RuntimeError};

const WORLD: usize = 4;
const VEC_LEN: usize = 64;
const BULK_BYTES: usize = 1 << 22; // 4 MiB per message
const BULK_REPS: usize = 8;

/// Runs `f` on `world` TCP ranks over loopback — one thread per rank,
/// each with its own data plane, joined only by sockets — and returns
/// rank 0's result. Boot (rendezvous + mesh dial) happens before `f`.
fn tcp_world<T, F>(world: usize, f: F) -> T
where
    T: Send,
    F: Fn(&mut TcpComm) -> Result<T, RuntimeError> + Sync,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("listener addr").to_string();
    let mut listener = Some(listener);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = TcpConfig::new(rank, world, addr.clone())
                    .with_boot_timeout(Duration::from_secs(20));
                let listener = (rank == 0).then(|| listener.take().expect("rank 0 listener"));
                let f = &f;
                s.spawn(move || {
                    let mut comm = match listener {
                        Some(l) => connect_with_listener(cfg, l),
                        None => connect(cfg),
                    }
                    .unwrap_or_else(|e| panic!("rank {rank} failed to connect: {e}"));
                    let out = f(&mut comm);
                    comm.shutdown();
                    out.unwrap_or_else(|e| panic!("rank {rank} failed: {e}"))
                })
            })
            .collect();
        let mut outs: Vec<T> = handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect();
        outs.swap_remove(0)
    })
}

/// One balancing-style collective round: share a root vector, gather
/// everyone's contribution, agree on a sum.
fn collective_round<C: Communicator>(
    c: &mut C,
    payload: &Vec<f64>,
) -> Result<f64, RuntimeError> {
    let rank = c.rank();
    let b = c.bcast(0, (rank == 0).then_some(payload))?;
    let contribution = payload[..8].to_vec();
    let g = c.allgatherv(&contribution)?;
    c.allreduce(b[0] + g[rank][0], ReduceOp::Sum)
}

/// `iters` collective rounds, timed from after an aligning barrier.
fn timed_rounds<C: Communicator>(c: &mut C, iters: u64) -> Result<Duration, RuntimeError> {
    let payload = vec![1.5f64; VEC_LEN];
    c.barrier()?;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(collective_round(c, &payload)?);
    }
    Ok(start.elapsed())
}

/// `iters` two-rank ping-pongs of a single float, timed on rank 0.
fn timed_pingpong<C: Communicator>(c: &mut C, iters: u64) -> Result<Duration, RuntimeError> {
    let token = vec![0.5f64];
    c.barrier()?;
    let start = Instant::now();
    if c.rank() == 0 {
        for _ in 0..iters {
            c.send(1, &token)?;
            let _: Vec<f64> = c.recv(1)?;
        }
    } else {
        for _ in 0..iters {
            let t: Vec<f64> = c.recv(0)?;
            c.send(0, &t)?;
        }
    }
    Ok(start.elapsed())
}

/// One-way bulk stream: rank 0 pushes `BULK_REPS` × `BULK_BYTES`
/// messages, rank 1 acks once after draining them all.
fn timed_bulk<C: Communicator>(c: &mut C) -> Result<Duration, RuntimeError> {
    let payload = vec![0.25f64; BULK_BYTES / std::mem::size_of::<f64>()];
    c.barrier()?;
    let start = Instant::now();
    if c.rank() == 0 {
        for _ in 0..BULK_REPS {
            c.send(1, &payload)?;
        }
        let _: Vec<f64> = c.recv(1)?;
    } else {
        for _ in 0..BULK_REPS {
            let m: Vec<f64> = c.recv(0)?;
            black_box(m);
        }
        c.send(0, &vec![1.0f64])?;
    }
    Ok(start.elapsed())
}

/// Rank 0's result of `f` on the threaded (shared-memory) backend.
fn threaded_world<T, F>(world: usize, f: F) -> T
where
    T: Send,
    F: Fn(&mut fupermod_runtime::ThreadedComm) -> Result<T, RuntimeError> + Send + Sync + Clone,
{
    let comms = RuntimeConfig::thread().build(world);
    let mut outs = run_ranks(comms, move |mut c| f(&mut c));
    outs.swap_remove(0).expect("threaded rank 0 failed")
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("net_collectives/p4_tcp", |bch| {
        bch.iter_custom(|iters| tcp_world(WORLD, |comm| timed_rounds(comm, iters)))
    });
    c.bench_function("net_collectives/p4_threaded", |bch| {
        bch.iter_custom(|iters| threaded_world(WORLD, move |comm| timed_rounds(comm, iters)))
    });
}

fn bench_p2p_rtt(c: &mut Criterion) {
    c.bench_function("net_p2p/rtt_tcp", |bch| {
        bch.iter_custom(|iters| tcp_world(2, |comm| timed_pingpong(comm, iters)))
    });
    c.bench_function("net_p2p/rtt_threaded", |bch| {
        bch.iter_custom(|iters| threaded_world(2, move |comm| timed_pingpong(comm, iters)))
    });
}

/// Emits the `# metric` lines `bench_record.sh MODE=pr8` records:
/// bulk throughput on each backend, in MiB/s.
fn emit_metrics(_c: &mut Criterion) {
    let mib = (BULK_REPS * BULK_BYTES) as f64 / (1u64 << 20) as f64;
    let tcp = tcp_world(2, timed_bulk::<TcpComm>);
    let threaded = threaded_world(2, timed_bulk);
    println!("# metric net_tcp_bulk_mib_per_sec {:.1}", mib / tcp.as_secs_f64());
    println!(
        "# metric net_threaded_bulk_mib_per_sec {:.1}",
        mib / threaded.as_secs_f64()
    );
}

criterion_group!(benches, bench_collectives, bench_p2p_rtt, emit_metrics);
criterion_main!(benches);
