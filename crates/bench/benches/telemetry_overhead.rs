//! Criterion bench: hot-path cost of the live telemetry registry
//! (`fupermod_core::telemetry`), recorded by `bench_record.sh
//! MODE=pr10` into `BENCH_PR10.json`.
//!
//! Four bars, one question each:
//!
//! * `no_telemetry` — the bare baseline: the same black-boxed operand
//!   traffic with no telemetry call at all. What the loop costs
//!   before any instrumentation.
//! * `registry_disabled` — one counter `inc` plus one histogram
//!   `record` against a disabled registry. The gating discipline says
//!   each call must collapse to a single relaxed `AtomicBool` load,
//!   so this bar minus the baseline is the price every *untraced* run
//!   pays — acceptance-checked to a few ns/op by the recorder.
//! * `registry_enabled` — the same two calls recording for real: two
//!   relaxed `fetch_add`s for the counter, a log2 bucket index plus
//!   two more for the histogram.
//! * `global_disabled` — `telemetry::record_comm` through the
//!   process-global registry while disabled: the exact call the
//!   runtime's comm hot path makes in an untraced process (op-name
//!   lookup is behind the gate, so this too must be one load).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_core::telemetry::{self, Registry};

fn bench_registry_paths(c: &mut Criterion) {
    let disabled = Registry::new(false);
    let d_counter = disabled.counter("bench_ops_total", "", &[("kind", "x")]);
    let d_hist = disabled.histogram("bench_latency_seconds", "", &[("op", "x")]);

    let enabled = Registry::new(true);
    let e_counter = enabled.counter("bench_ops_total", "", &[("kind", "x")]);
    let e_hist = enabled.histogram("bench_latency_seconds", "", &[("op", "x")]);

    c.bench_function("telemetry_overhead/no_telemetry", |b| {
        b.iter(|| black_box(black_box(3.2e-6_f64) * 1e9))
    });

    c.bench_function("telemetry_overhead/registry_disabled", |b| {
        b.iter(|| {
            d_counter.inc();
            d_hist.record(black_box(3.2e-6));
        })
    });

    c.bench_function("telemetry_overhead/registry_enabled", |b| {
        b.iter(|| {
            e_counter.inc();
            e_hist.record(black_box(3.2e-6));
        })
    });

    telemetry::global().set_enabled(false);
    c.bench_function("telemetry_overhead/global_disabled", |b| {
        b.iter(|| telemetry::record_comm(black_box("send"), black_box(3.2e-6)))
    });
}

criterion_group!(benches, bench_registry_paths);
criterion_main!(benches);
