//! Criterion bench: cost of building and evaluating the two FPM
//! interpolants — the per-step overhead the dynamic algorithms pay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fupermod_num::interp::{AkimaSpline, Interpolation, PiecewiseLinear};

fn dataset(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (1..=n).map(|i| (i * i) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x / (1.0 + (x / 500.0).sin().abs())).collect();
    (xs, ys)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_build");
    for n in [8usize, 32, 128] {
        let (xs, ys) = dataset(n);
        group.bench_with_input(BenchmarkId::new("piecewise", n), &n, |b, _| {
            b.iter(|| PiecewiseLinear::new(black_box(&xs), black_box(&ys)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("akima", n), &n, |b, _| {
            b.iter(|| AkimaSpline::new(black_box(&xs), black_box(&ys)).unwrap())
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_eval");
    let (xs, ys) = dataset(64);
    let pw = PiecewiseLinear::new(&xs, &ys).unwrap();
    let ak = AkimaSpline::new(&xs, &ys).unwrap();
    group.bench_function("piecewise", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += pw.value(black_box(10.0 + i as f64 * 40.0));
            }
            acc
        })
    });
    group.bench_function("akima", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += ak.value(black_box(10.0 + i as f64 * 40.0));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_eval);
criterion_main!(benches);
