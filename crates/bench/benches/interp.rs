//! Criterion bench: cost of building and evaluating the two FPM
//! interpolants — the per-step overhead the dynamic algorithms pay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fupermod_num::interp::{AkimaSpline, Interpolation, PiecewiseLinear};

fn dataset(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (1..=n).map(|i| (i * i) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x / (1.0 + (x / 500.0).sin().abs())).collect();
    (xs, ys)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_build");
    for n in [8usize, 32, 128] {
        let (xs, ys) = dataset(n);
        group.bench_with_input(BenchmarkId::new("piecewise", n), &n, |b, _| {
            b.iter(|| PiecewiseLinear::new(black_box(&xs), black_box(&ys)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("akima", n), &n, |b, _| {
            b.iter(|| AkimaSpline::new(black_box(&xs), black_box(&ys)).unwrap())
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_eval");
    let (xs, ys) = dataset(64);
    let pw = PiecewiseLinear::new(&xs, &ys).unwrap();
    let ak = AkimaSpline::new(&xs, &ys).unwrap();
    group.bench_function("piecewise", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += pw.value(black_box(10.0 + i as f64 * 40.0));
            }
            acc
        })
    });
    group.bench_function("akima", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += ak.value(black_box(10.0 + i as f64 * 40.0));
            }
            acc
        })
    });
    group.finish();
}

/// Reference evaluator reproducing the pre-optimisation hot path of
/// `AkimaSpline::value` exactly: segment lookup through the old
/// fallible `binary_search_by` comparator (a `partial_cmp` + `expect`
/// branch per probe), then per-call re-derivation of the segment's
/// Hermite coefficients (three divisions plus a squared width). The
/// spline now uses a `partition_point` lookup and caches the
/// coefficients at construction, so this baseline quantifies exactly
/// what those two changes save inside the partitioners'
/// Newton/bisection loops.
fn akima_value_recompute(xs: &[f64], ys: &[f64], ds: &[f64], x: f64) -> f64 {
    let n = xs.len();
    let (lo, hi) = (xs[0], xs[n - 1]);
    if x < lo {
        return ys[0] + ds[0] * (x - lo);
    }
    if x > hi {
        return ys[n - 1] + ds[n - 1] * (x - hi);
    }
    let seg = match xs.binary_search_by(|v| v.partial_cmp(&x).expect("finite")) {
        Ok(i) => i.min(n - 2),
        Err(0) => 0,
        Err(i) => (i - 1).min(n - 2),
    };
    let h = xs[seg + 1] - xs[seg];
    let m = (ys[seg + 1] - ys[seg]) / h;
    let c2 = (3.0 * m - 2.0 * ds[seg] - ds[seg + 1]) / h;
    let c3 = (ds[seg] + ds[seg + 1] - 2.0 * m) / (h * h);
    let t = x - xs[seg];
    ys[seg] + t * (ds[seg] + t * (c2 + t * c3))
}

/// Cached `value()` vs per-call coefficient recomputation on a
/// 64-point spline, 100 evaluations per iteration (the granularity a
/// numerical partitioner actually uses). The first pair measures the
/// full call; the `segment_resolved` pair pre-resolves the segment
/// index outside the timed region, isolating what the coefficient
/// cache alone saves (the lookup dominates the full call at 64
/// points, so read the pairs together).
fn bench_akima_cached(c: &mut Criterion) {
    let mut group = c.benchmark_group("akima_eval64");
    let (xs, ys) = dataset(64);
    let ak = AkimaSpline::new(&xs, &ys).unwrap();
    let (nxs, nys, nds) = (ak.xs().to_vec(), ak.ys().to_vec(), ak.derivatives().to_vec());
    let points: Vec<f64> = (0..100).map(|i| 10.0 + i as f64 * 40.0).collect();
    group.bench_function("cached", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&points) {
                acc += ak.value(x);
            }
            acc
        })
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&points) {
                acc += akima_value_recompute(&nxs, &nys, &nds, x);
            }
            acc
        })
    });

    // Segment-resolved decomposition: same points, segment index
    // precomputed, so only the per-segment evaluation differs.
    let segs: Vec<usize> = points
        .iter()
        .map(|&x| {
            nxs.partition_point(|&v| v <= x)
                .saturating_sub(1)
                .min(nxs.len() - 2)
        })
        .collect();
    // Cached per-segment evaluation reads the spline's precomputed
    // coefficients through the public accessors' layout: reproduce it
    // with local copies so both bars touch comparable memory.
    let (c2s, c3s): (Vec<f64>, Vec<f64>) = (0..nxs.len() - 1)
        .map(|seg| {
            let h = nxs[seg + 1] - nxs[seg];
            let m = (nys[seg + 1] - nys[seg]) / h;
            let c2 = (3.0 * m - 2.0 * nds[seg] - nds[seg + 1]) / h;
            let c3 = (nds[seg] + nds[seg + 1] - 2.0 * m) / (h * h);
            (c2, c3)
        })
        .unzip();
    group.bench_function("cached_segment_resolved", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (&x, &seg) in black_box(&points).iter().zip(black_box(&segs)) {
                let t = x - nxs[seg];
                acc += nys[seg] + t * (nds[seg] + t * (c2s[seg] + t * c3s[seg]));
            }
            acc
        })
    });
    group.bench_function("recompute_segment_resolved", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (&x, &seg) in black_box(&points).iter().zip(black_box(&segs)) {
                let h = nxs[seg + 1] - nxs[seg];
                let m = (nys[seg + 1] - nys[seg]) / h;
                let c2 = (3.0 * m - 2.0 * nds[seg] - nds[seg + 1]) / h;
                let c3 = (nds[seg] + nds[seg + 1] - 2.0 * m) / (h * h);
                let t = x - nxs[seg];
                acc += nys[seg] + t * (nds[seg] + t * (c2 + t * c3));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_eval, bench_akima_cached);
criterion_main!(benches);
