//! Criterion bench: compute/communication overlap via nonblocking
//! requests (`isend`/`irecv`/`ibcast`) against the blocking schedules
//! they replace.
//!
//! Two metrics, mirroring `comm_collectives.rs`:
//!
//! * **virtual seconds** (`vtime_*` benches) — the simulated backend's
//!   Hockney makespan of the broadcast-driven matmul and of the
//!   distributed balancing loop, blocking vs overlapped. 1 iter = 1
//!   virtual run; the "time" criterion reports is the virtual clock.
//! * **wall-clock** (`wall_*` benches) — the threaded backend under a
//!   fault-plan message delay (the container is single-core, so the
//!   honest wall win is latency hiding: the injected delay elapses
//!   while the receiver computes, exactly the paper's overlap).
//!
//! `scripts/bench_record.sh` (MODE=pr6) records these into
//! `BENCH_PR6.json` and derives the pipeline speedups.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_apps::matmul::run_bcast;
use fupermod_apps::workload::{random_matrix, DenseMatrix};
use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_core::{CoreError, Point};
use fupermod_platform::comm::LinkModel;
use fupermod_runtime::{
    run_to_balance_distributed_with, DelayRule, FaultPlan, OverlapMode, RuntimeConfig,
};

const P: usize = 4;
const BLOCK: usize = 32;
const N_BLOCKS: usize = 16;

fn matrices() -> (DenseMatrix, DenseMatrix) {
    let n = N_BLOCKS * BLOCK;
    (random_matrix(n, n, 61), random_matrix(n, n, 62))
}

fn even_areas(p: u64) -> Vec<u64> {
    let total = (N_BLOCKS * N_BLOCKS) as u64;
    (0..p).map(|i| total / p + u64::from(i < total % p)).collect()
}

/// Every message delayed by 2 ms: the latency the pipelined schedule
/// gets to hide under compute on a single-core host.
fn delay_plan() -> FaultPlan {
    FaultPlan {
        delays: vec![DelayRule {
            src: None,
            dst: None,
            every: 1,
            seconds: 0.002,
        }],
        ..FaultPlan::default()
    }
}

fn modes() -> [(&'static str, OverlapMode); 2] {
    [
        ("blocking", OverlapMode::Blocking),
        ("overlapped", OverlapMode::Overlapped),
    ]
}

/// Virtual makespan of the broadcast-driven matmul, per pivot mode.
fn bench_matmul_vtime(c: &mut Criterion) {
    let (a, b) = matrices();
    let areas = even_areas(P as u64);
    for (name, mode) in modes() {
        c.bench_function(&format!("vtime_matmul_pipeline/{name}"), |bch| {
            bch.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let run = run_bcast(
                        &a,
                        &b,
                        BLOCK,
                        &areas,
                        RuntimeConfig::sim(P, LinkModel::ethernet()),
                        mode,
                    )
                    .expect("sim matmul");
                    total += Duration::from_secs_f64(run.virtual_time.expect("sim clock"));
                    black_box(run.product);
                }
                total
            })
        });
    }
}

/// Wall-clock of the broadcast-driven matmul on the threaded backend
/// under the delay plan. Two ranks, not four: on the single-core
/// container more rank threads only lengthen the gap between a
/// barrier release and the next pivot owner's post (the OS runs the
/// other ranks' GEMMs first), shrinking the window the delay can hide
/// in — a scheduling artifact, not a property of the schedule.
fn bench_matmul_wall(c: &mut Criterion) {
    let (a, b) = matrices();
    let areas = even_areas(2);
    for (name, mode) in modes() {
        c.bench_function(&format!("wall_matmul_pipeline/{name}"), |bch| {
            bch.iter(|| {
                let run = run_bcast(
                    &a,
                    &b,
                    BLOCK,
                    &areas,
                    RuntimeConfig::thread().with_plan(delay_plan()),
                    mode,
                )
                .expect("threaded matmul");
                black_box(run.product)
            })
        });
    }
}

fn make_ctx(total: u64) -> DynamicContext {
    let models: Vec<Box<dyn Model>> = (0..P)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, 0.03)
}

fn measure(rank: usize, d: u64) -> Result<Point, CoreError> {
    let speed = [120.0, 40.0, 80.0, 20.0][rank];
    Ok(Point::single(d, d as f64 / speed))
}

/// Virtual makespan of the distributed balancing loop, per executor
/// mode: the overlapped loop replaces three barrier-crossing
/// collectives per step with two point-to-point hops.
fn bench_balance_vtime(c: &mut Criterion) {
    for (name, mode) in modes() {
        c.bench_function(&format!("vtime_balance_overlap/{name}"), |bch| {
            bch.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let outcome = run_to_balance_distributed_with(
                        RuntimeConfig::sim(P, LinkModel::ethernet()),
                        P,
                        || make_ctx(12_000),
                        measure,
                        30,
                        mode,
                    )
                    .expect("sim balance");
                    total += Duration::from_secs_f64(
                        outcome.virtual_time.expect("sim clock"),
                    );
                    black_box(outcome.final_sizes);
                }
                total
            })
        });
    }
}

/// Wall-clock of the distributed balancing loop on the threaded
/// backend under the delay plan.
fn bench_balance_wall(c: &mut Criterion) {
    for (name, mode) in modes() {
        c.bench_function(&format!("wall_balance_overlap/{name}"), |bch| {
            bch.iter(|| {
                let outcome = run_to_balance_distributed_with(
                    RuntimeConfig::thread().with_plan(delay_plan()),
                    P,
                    || make_ctx(12_000),
                    measure,
                    30,
                    mode,
                )
                .expect("threaded balance");
                black_box(outcome.final_sizes)
            })
        });
    }
}

criterion_group!(
    benches,
    bench_matmul_vtime,
    bench_matmul_wall,
    bench_balance_vtime,
    bench_balance_wall
);
criterion_main!(benches);
