//! Criterion bench: cost of the schema-v3 observability additions on
//! hot paths.
//!
//! Three questions, one bar each:
//!
//! * `histogram_gate_off` — the latency histograms are gated by one
//!   relaxed `AtomicBool` (`Metrics::set_histograms_enabled`); with
//!   the gate off (the untraced default) a `record_comm_latency`
//!   call must cost a single boolean load, preserving the always-on
//!   counters' "no measurable overhead" property.
//! * `histogram_gate_on` — the accepted price of recording: a log2
//!   bucket index plus two relaxed atomic adds.
//! * `comm_event_encode` — encoding one stamped `comm` event to
//!   canonical JSONL, the per-operation serialization cost a traced
//!   runtime run pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_core::trace::{metrics, TraceEvent};

fn bench_histogram_gate(c: &mut Criterion) {
    let m = metrics();

    m.set_histograms_enabled(false);
    c.bench_function("trace_overhead/histogram_gate_off", |b| {
        b.iter(|| {
            m.record_comm_latency(black_box("send"), black_box(3.2e-6));
            m.record_bench_rep(black_box(1.4e-3));
        })
    });

    m.set_histograms_enabled(true);
    c.bench_function("trace_overhead/histogram_gate_on", |b| {
        b.iter(|| {
            m.record_comm_latency(black_box("send"), black_box(3.2e-6));
            m.record_bench_rep(black_box(1.4e-3));
        })
    });
    m.set_histograms_enabled(false);
}

fn bench_comm_event_encode(c: &mut Criterion) {
    let event = TraceEvent::Comm {
        rank: 3,
        op: "allreduce".to_owned(),
        peer: -1,
        bytes: 8192,
        seconds: 4.25e-5,
        algorithm: "ring".to_owned(),
        rounds: 7,
        lamport: 12_345,
        gen: 42,
    };
    c.bench_function("trace_overhead/comm_event_encode", |b| {
        b.iter(|| black_box(&event).to_jsonl())
    });
}

criterion_group!(benches, bench_histogram_gate, bench_comm_event_encode);
criterion_main!(benches);
