//! Criterion bench: the partitioning-as-a-service hot paths
//! (`fupermod-store`, PR 9 / `BENCH_PR9.json`).
//!
//! * `store_serve/cold_build_partition` — what every request costs
//!   *without* the service: rebuild the member Akima models from their
//!   saved points and re-solve the partition from scratch.
//! * `store_serve/warm_lookup` — the same partition query answered by a
//!   warm [`ModelStore`]: sharded entry lookup, epoch stamp, plan-cache
//!   hit. The acceptance bar is warm >= 10x cold.
//! * `store_ingest/incremental` vs `store_ingest/rebuild` — streaming
//!   640 observations over 128 distinct sizes through the
//!   incrementally-patching ingest path vs the from-scratch-rebuild
//!   reference path (the two are bit-identical by construction; see the
//!   store's `prefix_identity` suite). The acceptance bar is
//!   incremental >= 2x rebuild at >= 100 absorbed points.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fupermod_core::model::{AkimaModel, Model};
use fupermod_core::partition::{NumericalPartitioner, Partitioner};
use fupermod_core::Point;
use fupermod_store::{EntryConfig, ModelEntry, ModelStore, StoreConfig, StoreKey};

/// Deterministic per-member model points: 12 sizes, smoothly varying
/// times so the numerical partitioner has real curvature to work with.
fn member_points(member: usize) -> Vec<Point> {
    (0..12)
        .map(|i| {
            let d = (64u64 << i.min(10)) + i;
            let t = d as f64 * 1e-6 * (1.0 + member as f64 * 0.37) * (1.0 + 0.02 * i as f64);
            Point { d, t, reps: 5, ci: t * 0.01 }
        })
        .collect()
}

const MEMBERS: usize = 8;
const TOTAL: u64 = 100_000;

fn bench_serve(c: &mut Criterion) {
    let partitioner = NumericalPartitioner::default();

    // Cold path: rebuild every member model from its points, then solve.
    let all_points: Vec<Vec<Point>> = (0..MEMBERS).map(member_points).collect();
    c.bench_function("store_serve/cold_build_partition", |b| {
        b.iter(|| {
            let models: Vec<AkimaModel> = all_points
                .iter()
                .map(|pts| {
                    let mut m = AkimaModel::new();
                    for &p in pts {
                        m.update(p).unwrap();
                    }
                    m
                })
                .collect();
            let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
            partitioner.partition(black_box(TOTAL), &refs).unwrap()
        })
    });

    // Warm path: the same query against a populated store — after the
    // first solve, every iteration is a plan-cache hit.
    let store = ModelStore::new(StoreConfig::default());
    let keys: Vec<StoreKey> = (0..MEMBERS)
        .map(|m| StoreKey::new(format!("dev{m}"), "gemm", "default"))
        .collect();
    for (key, pts) in keys.iter().zip(&all_points) {
        for &p in pts {
            store.ingest_point(key, p).unwrap();
        }
    }
    c.bench_function("store_serve/warm_lookup", |b| {
        b.iter(|| {
            store
                .partition(black_box(&keys), TOTAL, &partitioner, "numerical")
                .unwrap()
        })
    });
}

/// 128 distinct sizes, then 4 more observations of each (640 total):
/// past the first sighting of a size the incremental path patches one
/// spline window instead of rebuilding the 128-node model.
fn ingest_stream() -> Vec<(u64, f64)> {
    let sizes: Vec<u64> = (0..128).map(|i| 100 + 37 * i as u64).collect();
    let mut stream: Vec<(u64, f64)> = sizes.iter().map(|&d| (d, d as f64 * 1e-5)).collect();
    for rep in 1..=4 {
        for &d in &sizes {
            stream.push((d, d as f64 * 1e-5 * (1.0 + 0.003 * rep as f64)));
        }
    }
    stream
}

fn bench_ingest(c: &mut Criterion) {
    let stream = ingest_stream();
    let config = EntryConfig::default();
    c.bench_function("store_ingest/incremental", |b| {
        b.iter(|| {
            let mut entry = ModelEntry::new(config);
            for &(d, t) in black_box(&stream) {
                entry.ingest_sample(d, t).unwrap();
            }
            entry.epoch()
        })
    });
    c.bench_function("store_ingest/rebuild", |b| {
        b.iter(|| {
            let mut entry = ModelEntry::new(config);
            for &(d, t) in black_box(&stream) {
                entry.ingest_sample_rebuilding(d, t).unwrap();
            }
            entry.epoch()
        })
    });
}

criterion_group!(benches, bench_serve, bench_ingest);
criterion_main!(benches);
