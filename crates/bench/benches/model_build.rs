//! Criterion bench: device-model construction, serial vs parallel.
//!
//! The kernels are [`LatencyKernel`]s — each measurement *blocks* the
//! host thread like a synchronous accelerator call and reports a
//! deterministic nominal time. That is the dominant cost pattern of
//! model construction on a hybrid node: the host submits work and
//! waits. Worker threads overlap those waits, so the parallel build
//! wins even on a single-core host, and (by `ModelBuilder`'s replay
//! contract, tested in fupermod-core) produces bit-identical models
//! and traces.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fupermod_core::builder::ModelBuilder;
use fupermod_core::kernel::Kernel;
use fupermod_core::model::PiecewiseModel;
use fupermod_core::Precision;
use fupermod_kernels::synthetic::LatencyKernel;

const DEVICES: usize = 4;
const SIZES: [u64; 3] = [10, 100, 1000];

fn kernels() -> Vec<Box<dyn Kernel + Send>> {
    (0..DEVICES)
        .map(|rank| {
            // Heterogeneous latencies, ~1-2 ms per call.
            let base = 1.0e-3 + rank as f64 * 2.5e-4;
            Box::new(LatencyKernel::new(base, 1e-7)) as Box<dyn Kernel + Send>
        })
        .collect()
}

fn precision() -> Precision {
    Precision {
        reps_min: 2,
        reps_max: 4,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 1e9,
    }
}

fn bench_model_build(c: &mut Criterion) {
    let precision = precision();
    let mut group = c.benchmark_group("model_build");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(
                if workers == 1 { "serial" } else { "parallel" },
                workers,
            ),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    ModelBuilder::new(&precision)
                        .with_parallelism(workers)
                        .build::<PiecewiseModel>(black_box(kernels()), &SIZES)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_build);
criterion_main!(benches);
