//! Criterion bench: cost of the three partitioning algorithms as the
//! process count grows (the paper's §4.3 claim that the CPM algorithm
//! is the fastest, the numerical the most expensive).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fupermod_core::model::{AkimaModel, ConstantModel, Model, PiecewiseModel};
use fupermod_core::partition::{
    ConstantPartitioner, GeometricPartitioner, NumericalPartitioner, Partitioner,
};
use fupermod_core::Point;

fn nonlinear_points(rank: usize) -> Vec<Point> {
    // Each process gets a distinct memory-cliff time function.
    let base = 1.0 + rank as f64 * 0.3;
    let cliff = 500.0 + (rank as f64 * 137.0) % 1500.0;
    [50u64, 200, 400, 800, 1600, 3200, 6400]
        .iter()
        .map(|&d| {
            let x = d as f64;
            let t = if x <= cliff {
                x / (100.0 * base)
            } else {
                cliff / (100.0 * base) + (x - cliff) / (20.0 * base)
            };
            Point::single(d, t)
        })
        .collect()
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for p in [4usize, 16, 64] {
        let mut cpms = Vec::new();
        let mut pwls = Vec::new();
        let mut akimas = Vec::new();
        for rank in 0..p {
            let pts = nonlinear_points(rank);
            let mut cpm = ConstantModel::new();
            cpm.update(pts[3]).unwrap();
            let mut pwl = PiecewiseModel::new();
            let mut ak = AkimaModel::new();
            for pt in &pts {
                pwl.update(*pt).unwrap();
                ak.update(*pt).unwrap();
            }
            cpms.push(cpm);
            pwls.push(pwl);
            akimas.push(ak);
        }
        let total = 4000 * p as u64;

        let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
        group.bench_with_input(BenchmarkId::new("constant", p), &p, |b, _| {
            b.iter(|| {
                ConstantPartitioner
                    .partition(black_box(total), &cpm_refs)
                    .unwrap()
            })
        });
        let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
        group.bench_with_input(BenchmarkId::new("geometric", p), &p, |b, _| {
            b.iter(|| {
                GeometricPartitioner::default()
                    .partition(black_box(total), &pwl_refs)
                    .unwrap()
            })
        });
        let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
        group.bench_with_input(BenchmarkId::new("numerical", p), &p, |b, _| {
            b.iter(|| {
                NumericalPartitioner::default()
                    .partition(black_box(total), &akima_refs)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
