#![warn(missing_docs)]

//! Shared harness for the figure/experiment regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or experiment of
//! the paper (see DESIGN.md's experiment index) and prints CSV to
//! stdout, so results can be diffed, plotted, or recorded in
//! EXPERIMENTS.md. This library holds the pieces they share.

use std::path::PathBuf;
use std::sync::Arc;

use fupermod_core::model::Model;
use fupermod_core::partition::Partitioner;
use fupermod_core::trace::{metrics, null_sink, JsonlSink, TraceSink};
use fupermod_core::{CoreError, Point, Precision};
use fupermod_platform::{Platform, WorkloadProfile};

/// Opens the structured trace sink for the experiment binary `name`
/// when tracing was requested — via `--trace PATH` (exact file, wins),
/// `--trace-dir DIR` on the command line, or the `FUPERMOD_TRACE_DIR`
/// environment variable (the unified trace flags every `fupermod_*`
/// binary accepts). The directory forms write
/// `DIR/<name>.trace.jsonl` next to the CSV the binary prints to
/// stdout (schema in `docs/OBSERVABILITY.md`). Opening a sink also
/// enables the process-wide latency histograms, which
/// [`finish_experiment_trace`] exports as `metrics` snapshot events.
///
/// Returns `None` when tracing was not requested. Exits with status 1
/// when the requested directory/file cannot be created — a requested
/// trace that silently vanishes would be worse than no trace.
pub fn experiment_trace(name: &str) -> Option<Arc<dyn TraceSink>> {
    let path = match flag_value("--trace") {
        Some(path) => PathBuf::from(path),
        None => {
            let dir = flag_value("--trace-dir")
                .or_else(|| std::env::var("FUPERMOD_TRACE_DIR").ok())?;
            let dir = PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create trace directory {}: {e}", dir.display());
                std::process::exit(1);
            }
            dir.join(format!("{name}.trace.jsonl"))
        }
    };
    match JsonlSink::create(&path) {
        Ok(sink) => {
            eprintln!("# trace -> {}", path.display());
            metrics().set_histograms_enabled(true);
            Some(Arc::new(sink))
        }
        Err(e) => {
            eprintln!("cannot create trace file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Model-build worker-thread count for the experiment binaries: the
/// value of `--parallelism N` on the command line, else the
/// `FUPERMOD_PARALLELISM` environment variable, else `1` (serial — the
/// reproducible default). `0` means one worker per available core.
/// Parallel and serial builds produce bit-identical models and traces
/// (see [`fupermod_core::builder::ModelBuilder`]), so this knob only
/// changes wall-clock time.
pub fn parallelism_from_args() -> usize {
    let mut args = std::env::args();
    let arg = loop {
        match args.next() {
            Some(a) if a == "--parallelism" => break args.next(),
            Some(_) => continue,
            None => break None,
        }
    };
    let raw = arg.or_else(|| std::env::var("FUPERMOD_PARALLELISM").ok());
    match raw {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("invalid --parallelism value {s:?} (want a non-negative integer)");
            std::process::exit(2);
        }),
        None => 1,
    }
}

/// Exports the latency-histogram snapshots as `metrics` events and
/// flushes an experiment trace sink (if one was opened), then prints
/// the process-wide metrics summary to stderr. Call once before
/// exiting. Exits with status 1 on a deferred trace write error.
pub fn finish_experiment_trace(sink: Option<&Arc<dyn TraceSink>>) {
    if let Some(sink) = sink {
        metrics().export_histogram_events(sink.as_ref());
        if let Err(e) = sink.flush() {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("# {}", metrics().summary());
}

/// The sink to hand to `*_traced` helpers: the opened experiment sink,
/// or the no-op default.
pub fn sink_or_null(sink: &Option<Arc<dyn TraceSink>>) -> &dyn TraceSink {
    sink.as_deref().unwrap_or(null_sink())
}

/// A geometric grid of problem sizes from `lo` to `hi` (inclusive-ish)
/// with `n` points — the usual sampling for building full models.
pub fn size_grid(lo: u64, hi: u64, n: usize) -> Vec<u64> {
    assert!(lo >= 1 && hi > lo && n >= 2, "degenerate size grid");
    let ratio = (hi as f64 / lo as f64).powf(1.0 / (n as f64 - 1.0));
    let mut sizes: Vec<u64> = (0..n)
        .map(|i| (lo as f64 * ratio.powi(i as i32)).round() as u64)
        .collect();
    sizes.dedup();
    sizes
}

/// Benchmarks device `rank` of `platform` at the given sizes and feeds
/// the points into `model`, routing benchmark events and model updates
/// (tagged with the device `rank`) to `sink` — pass
/// [`fupermod_core::trace::null_sink`] when no tracing is wanted.
/// Returns the total (virtual) benchmarking cost in seconds — time ×
/// repetitions summed over all measurements, the cost metric EXP2
/// compares.
///
/// This is a thin wrapper over
/// [`fupermod_core::builder::build_one_model`], the single shared
/// measure→update→trace loop.
///
/// # Errors
///
/// Propagates benchmark/model errors.
#[allow(clippy::too_many_arguments)]
pub fn build_model_for_device(
    platform: &Platform,
    rank: usize,
    profile: &WorkloadProfile,
    sizes: &[u64],
    precision: &Precision,
    model: &mut dyn Model,
    sink: &dyn TraceSink,
) -> Result<f64, CoreError> {
    use fupermod_core::kernel::DeviceKernel;
    let mut kernel = DeviceKernel::new(platform.device(rank).clone(), profile.clone());
    fupermod_core::builder::build_one_model(rank, &mut kernel, sizes, precision, model, sink)
}

/// Ground-truth evaluation of a distribution: per-device ideal times
/// and their relative imbalance. This is what the paper would measure
/// on the real machine after partitioning.
pub fn ground_truth_times(
    platform: &Platform,
    profile: &WorkloadProfile,
    sizes: &[u64],
) -> Vec<f64> {
    sizes
        .iter()
        .enumerate()
        .map(|(rank, &d)| platform.device(rank).ideal_time(d, profile))
        .collect()
}

/// Max over min-style imbalance of ground-truth times (0 = perfect).
pub fn ground_truth_imbalance(times: &[f64]) -> f64 {
    fupermod_core::partition::Distribution::imbalance_of(times)
}

/// Partitions `total` with `partitioner` over `models` and returns
/// (sizes, ground-truth times, imbalance, makespan), recording the
/// resulting distribution as a one-shot `partition_step` trace event on
/// `sink` — pass [`fupermod_core::trace::null_sink`] when no tracing is
/// wanted.
///
/// # Errors
///
/// Propagates partitioning errors.
pub fn evaluate_partitioner(
    platform: &Platform,
    profile: &WorkloadProfile,
    total: u64,
    partitioner: &dyn Partitioner,
    models: &[&dyn Model],
    sink: &dyn TraceSink,
) -> Result<PartitionEvaluation, CoreError> {
    let dist = partitioner.partition_traced(total, models, sink)?;
    let sizes = dist.sizes();
    let times = ground_truth_times(platform, profile, &sizes);
    let imbalance = ground_truth_imbalance(&times);
    let makespan = times.iter().fold(0.0_f64, |m, t| m.max(*t));
    Ok(PartitionEvaluation {
        sizes,
        times,
        imbalance,
        makespan,
    })
}

/// Outcome of evaluating one partitioner against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionEvaluation {
    /// Assigned sizes per device.
    pub sizes: Vec<u64>,
    /// Ground-truth times per device.
    pub times: Vec<f64>,
    /// Relative imbalance of those times.
    pub imbalance: f64,
    /// Max ground-truth time.
    pub makespan: f64,
}

/// Measures one device point for dynamic loops (quick precision),
/// routing benchmark events to `sink` — pass
/// [`fupermod_core::trace::null_sink`] when no tracing is wanted.
///
/// # Errors
///
/// Propagates benchmark errors.
pub fn quick_measure(
    platform: &Platform,
    rank: usize,
    profile: &WorkloadProfile,
    d: u64,
    sink: &dyn TraceSink,
) -> Result<Point, CoreError> {
    use fupermod_core::benchmark::Benchmark;
    use fupermod_core::kernel::DeviceKernel;
    let mut kernel = DeviceKernel::new(platform.device(rank).clone(), profile.clone());
    Benchmark::new(&Precision::quick())
        .with_trace(sink)
        .measure(&mut kernel, d)
}

/// Prints a CSV header and rows through a tiny helper so every binary
/// formats identically.
pub fn print_csv_row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// The value of `--NAME VALUE` on the command line, if present.
/// (`name` includes the leading dashes, e.g. `"--runtime"`.)
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Parses `--fault-plan SPEC` — inline JSON when SPEC starts with `{`,
/// otherwise a path to a JSON file (schema in `docs/RUNTIME.md`).
/// Returns the empty plan when the flag is absent; exits with status 2
/// on an invalid plan.
pub fn fault_plan_from_args() -> fupermod_runtime::FaultPlan {
    use fupermod_runtime::FaultPlan;
    match flag_value("--fault-plan") {
        None => FaultPlan::none(),
        Some(spec) => {
            let parsed = if spec.trim_start().starts_with('{') {
                FaultPlan::from_json(&spec)
            } else {
                FaultPlan::from_json_file(std::path::Path::new(&spec))
            };
            parsed.unwrap_or_else(|e| {
                eprintln!("invalid --fault-plan: {e}");
                std::process::exit(2);
            })
        }
    }
}

/// Parses `--collectives hub|ring|tree|auto` into an
/// [`fupermod_runtime::AlgorithmPolicy`] (default `hub`, the
/// compatibility schedule; see `docs/RUNTIME.md` §6). Exits with
/// status 2 on an unknown spelling.
pub fn collectives_from_args() -> fupermod_runtime::AlgorithmPolicy {
    use fupermod_runtime::AlgorithmPolicy;
    match flag_value("--collectives") {
        None => AlgorithmPolicy::default(),
        Some(s) => AlgorithmPolicy::parse(&s).unwrap_or_else(|| {
            eprintln!("--collectives must be hub, ring, tree or auto (got '{s}')");
            std::process::exit(2);
        }),
    }
}

/// Parses `--sim-engine thread|event` into a
/// [`fupermod_runtime::SimEngine`] (default `thread`). `event` selects
/// the single-threaded discrete-event interpreter — same virtual
/// clocks, `10⁴`–`10⁶` ranks (see `docs/RUNTIME.md` §9). Exits with
/// status 2 on an unknown spelling.
pub fn sim_engine_from_args() -> fupermod_runtime::SimEngine {
    use fupermod_runtime::SimEngine;
    match flag_value("--sim-engine") {
        None => SimEngine::default(),
        Some(s) => SimEngine::parse(&s).unwrap_or_else(|e| {
            eprintln!("--sim-engine: {e}");
            std::process::exit(2);
        }),
    }
}

/// Parses the `--ranks N` process-count override for the scale-sweep
/// experiment legs. Returns `None` when absent; exits with status 2 on
/// `--ranks 0` or a non-integer value.
pub fn ranks_from_args() -> Option<usize> {
    let s = flag_value("--ranks")?;
    match s.parse::<usize>() {
        Ok(0) => {
            eprintln!("--ranks must be at least 1 (got 0)");
            std::process::exit(2);
        }
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("invalid --ranks value {s:?} (want a positive integer)");
            std::process::exit(2);
        }
    }
}

/// Builds the runtime configuration selected by `--runtime thread|sim`
/// and `--sim-engine thread|event` for a distributed dynamic run on
/// `platform`, applying `--fault-plan` and the `--collectives`
/// algorithm policy, and routing runtime trace events to `trace` when
/// given. Returns `None` when the run stays serial (the classic
/// in-process loop): `--runtime` absent without `--sim-engine event`,
/// or an explicit `--runtime serial`.
///
/// `--sim-engine event` needs the virtual-clock backend, so it implies
/// `--runtime sim` when `--runtime` is absent and rejects an explicit
/// `--runtime thread`. The thread engine refuses more ranks than it
/// can sanely spawn threads for (512). Exits with status 2 on an
/// unknown backend or a rejected combination.
pub fn runtime_from_args(
    platform: &Platform,
    trace: Option<&Arc<dyn TraceSink>>,
) -> Option<fupermod_runtime::RuntimeConfig> {
    use fupermod_runtime::{RuntimeConfig, SimEngine};
    let engine = sim_engine_from_args();
    let backend = match flag_value("--runtime") {
        Some(b) => b,
        None if engine == SimEngine::Event => "sim".to_owned(),
        None => return None,
    };
    let config = match backend.as_str() {
        "serial" => return None,
        "thread" => {
            if engine == SimEngine::Event {
                eprintln!(
                    "--sim-engine event needs the virtual-clock backend: \
                     use --runtime sim (or drop --sim-engine)"
                );
                std::process::exit(2);
            }
            RuntimeConfig::thread()
        }
        "sim" => RuntimeConfig::sim(platform.size(), platform.link()),
        other => {
            eprintln!("--runtime must be serial, thread or sim (got '{other}')");
            std::process::exit(2);
        }
    };
    if engine == SimEngine::Thread && platform.size() > 512 {
        eprintln!(
            "the thread engine spawns one OS thread per rank and is capped \
             at 512 ranks (asked for {}); use --sim-engine event",
            platform.size()
        );
        std::process::exit(2);
    }
    let config = config
        .with_engine(engine)
        .with_plan(fault_plan_from_args())
        .with_algorithms(collectives_from_args());
    Some(match trace {
        Some(sink) => config.with_trace(sink.clone()),
        None => config,
    })
}

/// Runs the dynamic partitioning loop for `platform` through the
/// distributed runtime executor ([`fupermod_runtime`]): every rank
/// benchmarks its own share (quick precision, like
/// [`quick_measure`]), the observations are gathered onto rank 0,
/// and rank 0 repartitions. On a fault-free plan the result is
/// bit-identical to the serial `DynamicContext` loop.
///
/// # Errors
///
/// Propagates root-rank runtime failures.
pub fn distributed_dynamic(
    platform: &Platform,
    profile: &WorkloadProfile,
    total: u64,
    eps: f64,
    max_steps: usize,
    config: fupermod_runtime::RuntimeConfig,
) -> Result<fupermod_runtime::BalanceOutcome, fupermod_runtime::RuntimeError> {
    use fupermod_core::dynamic::DynamicContext;
    use fupermod_core::model::PiecewiseModel;
    use fupermod_core::partition::GeometricPartitioner;
    let size = platform.size();
    fupermod_runtime::run_to_balance_distributed(
        config,
        size,
        || {
            let models: Vec<Box<dyn Model>> = (0..size)
                .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
                .collect();
            DynamicContext::new(Box::new(GeometricPartitioner::default()), models, total, eps)
        },
        |rank, d| quick_measure(platform, rank, profile, d, null_sink()),
        max_steps,
    )
}

/// Virtual benchmarking cost of a distributed dynamic run: the sum of
/// `t × reps` over every observation absorbed into the models —
/// comparable to the cost the serial loops accumulate.
pub fn distributed_bench_cost(outcome: &fupermod_runtime::BalanceOutcome) -> f64 {
    outcome
        .steps
        .iter()
        .flat_map(|s| s.observed.iter())
        .map(|p| p.t * f64::from(p.reps))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grid_is_geometric_and_bounded() {
        let grid = size_grid(10, 1000, 5);
        assert_eq!(grid.first(), Some(&10));
        assert_eq!(grid.last(), Some(&1000));
        for w in grid.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn imbalance_of_equal_times_is_zero() {
        assert_eq!(ground_truth_imbalance(&[2.0, 2.0]), 0.0);
    }
}
