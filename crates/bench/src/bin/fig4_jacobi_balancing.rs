//! FIG4 — Dynamic load balancing of the Jacobi method (paper Fig. 4).
//!
//! Three heterogeneous processes solve a diagonally dominant system;
//! the load balancer redistributes rows from the application's own
//! iteration times. The paper's figure shows per-iteration times
//! converging after a few iterations, annotated with the row counts of
//! the slowest process (16, 11, 9, ...). This binary prints the same
//! series.
//!
//! Output: CSV `iteration,device,rows,compute_time,iteration_time,rows_moved,error`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/fig4_jacobi_balancing.trace.jsonl` (see docs/OBSERVABILITY.md).

use std::sync::Arc;

use fupermod_apps::jacobi::{run_traced, JacobiConfig};
use fupermod_apps::workload::dominant_system;
use fupermod_bench::{finish_experiment_trace, print_csv_row};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_core::trace::{NullSink, TraceSink};
use fupermod_platform::{cluster, LinkModel, Platform};

fn main() {
    let trace = fupermod_bench::experiment_trace("fig4_jacobi_balancing");
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 120 } else { 480 };

    // Three devices of distinctly different speeds, like the paper's
    // small demo run.
    let platform = Platform::new(
        "fig4-trio",
        vec![
            cluster::fast_cpu("cpu-fast", 41),
            cluster::slow_cpu("cpu-slow", 42),
            cluster::multicore_cores("mc", 1, 43).pop().expect("one core"),
        ],
        LinkModel::ethernet(),
    );

    let system = dominant_system(n, 44);
    let events: Arc<dyn TraceSink> = trace
        .clone()
        .unwrap_or_else(|| Arc::new(NullSink) as Arc<dyn TraceSink>);
    let report = run_traced(
        &system,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &JacobiConfig {
            tol: 1e-10,
            max_iters: 40,
            eps_balance: 0.05,
            balance: true,
        },
        events,
    )
    .expect("jacobi run failed");

    print_csv_row(&[
        "iteration".into(),
        "device".into(),
        "rows".into(),
        "compute_time".into(),
        "iteration_time".into(),
        "rows_moved".into(),
        "error".into(),
    ]);
    for rec in &report.iterations {
        for (rank, (&rows, &t)) in rec.sizes.iter().zip(&rec.compute_times).enumerate() {
            print_csv_row(&[
                rec.iteration.to_string(),
                platform.device(rank).name().to_owned(),
                rows.to_string(),
                format!("{t:.6}"),
                format!("{:.6}", rec.iteration_time),
                rec.rows_moved.to_string(),
                format!("{:.3e}", rec.error),
            ]);
        }
    }
    eprintln!(
        "converged: {}, iterations: {}, makespan: {:.4} s",
        report.converged,
        report.iterations.len(),
        report.makespan
    );
    finish_experiment_trace(trace.as_ref());
}
