//! EXP2 — Cost of dynamic partial estimation vs building full models
//! (paper §4.3/§4.4: "building full functional performance models is
//! not suitable for an application that is run a small number of
//! times").
//!
//! Compares, on each testbed, (a) building full FPMs over a size grid
//! and partitioning once, against (b) the dynamic partitioner that only
//! benchmarks at the sizes its own iterations visit. Reported costs are
//! the virtual seconds spent benchmarking (time × repetitions); quality
//! is the ground-truth imbalance of the final distribution.
//!
//! Output: CSV `platform,total,approach,bench_cost_s,steps,imbalance`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp2_dynamic_cost.trace.jsonl` (see docs/OBSERVABILITY.md).
//!
//! With `--runtime thread|sim` the dynamic loop runs through the
//! distributed message-passing executor (`fupermod-runtime`) instead of
//! the serial in-process loop — bit-identical results on a fault-free
//! plan; `--fault-plan SPEC` (inline JSON or a file, see
//! docs/RUNTIME.md) injects faults and `--collectives hub|ring|tree|auto`
//! selects the collective schedules (docs/RUNTIME.md §6).
//! `--sim-engine event` swaps the rank threads for the single-threaded
//! discrete-event interpreter (implies `--runtime sim`; see
//! docs/RUNTIME.md §9), and `--ranks P` scales the run to a single
//! two-speed platform of P devices, keeping only the dynamic leg —
//! building full models for 10⁴+ devices is exactly the cost the
//! dynamic approach avoids.

use fupermod_bench::{
    evaluate_partitioner, finish_experiment_trace, ground_truth_imbalance, ground_truth_times,
    print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = fupermod_bench::experiment_trace("exp2_dynamic_cost");
    let profile = WorkloadProfile::matrix_update(16);
    let ranks = fupermod_bench::ranks_from_args();
    let platforms = match ranks {
        // Scale-sweep mode: one two-speed platform of the requested
        // size; the full-FPM leg is skipped below.
        Some(p) => vec![Platform::two_speed(p.div_ceil(2), p / 2, 201)],
        None => vec![
            Platform::two_speed(2, 2, 201),
            Platform::hybrid_node(4, 202),
            Platform::grid_site(203),
        ],
    };
    let total: u64 = if quick { 20_000 } else { 100_000 };

    print_csv_row(&[
        "platform".into(),
        "total".into(),
        "approach".into(),
        "bench_cost_s".into(),
        "steps".into(),
        "imbalance".into(),
    ]);

    for platform in &platforms {
        // --- (a) full models (skipped under --ranks: modelling every
        // device of a 10⁴+ platform is the cost being avoided) ---
        if ranks.is_none() {
            let sizes = size_grid(16, total, if quick { 8 } else { 16 });
            let mut full_cost = 0.0;
            let mut models = Vec::new();
            for rank in 0..platform.size() {
                let mut m = PiecewiseModel::new();
                full_cost += fupermod_bench::build_model_for_device(
                    platform,
                    rank,
                    &profile,
                    &sizes,
                    &Precision::thorough(),
                    &mut m,
                    sink_or_null(&trace),
                )
                .expect("full model build failed");
                models.push(m);
            }
            let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
            let eval = evaluate_partitioner(
                platform,
                &profile,
                total,
                &GeometricPartitioner::default(),
                &refs,
                sink_or_null(&trace),
            )
            .expect("full-model partition failed");
            print_csv_row(&[
                platform.name().to_owned(),
                total.to_string(),
                "full-fpm".to_owned(),
                format!("{full_cost:.3}"),
                sizes.len().to_string(),
                format!("{:.4}", eval.imbalance),
            ]);
        }

        // --- (b) dynamic partial estimation ---
        // With --runtime thread|sim the loop runs distributed over the
        // message-passing runtime; otherwise the classic serial loop.
        let (dyn_cost, steps, final_sizes) =
            match fupermod_bench::runtime_from_args(platform, trace.as_ref()) {
                Some(config) => {
                    let outcome = fupermod_bench::distributed_dynamic(
                        platform, &profile, total, 0.05, 25, config,
                    )
                    .expect("distributed dynamic run failed");
                    (
                        fupermod_bench::distributed_bench_cost(&outcome),
                        outcome.steps.len(),
                        outcome.final_sizes.clone(),
                    )
                }
                None => {
                    let partials: Vec<Box<dyn Model>> = (0..platform.size())
                        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
                        .collect();
                    let mut ctx = DynamicContext::new(
                        Box::new(GeometricPartitioner::default()),
                        partials,
                        total,
                        0.05,
                    );
                    if let Some(sink) = &trace {
                        ctx = ctx.with_trace(sink.clone());
                    }
                    let mut dyn_cost = 0.0;
                    let mut steps = 0;
                    for _ in 0..25 {
                        let step = ctx
                            .partition_iterate(|rank, d| {
                                let p = fupermod_bench::quick_measure(
                                    platform,
                                    rank,
                                    &profile,
                                    d,
                                    sink_or_null(&trace),
                                )?;
                                dyn_cost += p.t * p.reps as f64;
                                Ok(p)
                            })
                            .expect("dynamic step failed");
                        steps += 1;
                        if step.converged {
                            break;
                        }
                    }
                    (dyn_cost, steps, ctx.dist().sizes())
                }
            };
        let times = ground_truth_times(platform, &profile, &final_sizes);
        print_csv_row(&[
            platform.name().to_owned(),
            total.to_string(),
            "dynamic-partial".to_owned(),
            format!("{dyn_cost:.3}"),
            steps.to_string(),
            format!("{:.4}", ground_truth_imbalance(&times)),
        ]);
    }
    finish_experiment_trace(trace.as_ref());
}
