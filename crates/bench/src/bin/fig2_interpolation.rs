//! FIG2 — Speed functions of the matrix-multiplication kernel under
//! piecewise-linear and Akima-spline interpolation (paper Fig. 2).
//!
//! The paper benchmarks a Netlib-BLAS GEMM kernel across problem sizes
//! and shows (a) the coarsened piecewise-linear FPM and (b) the Akima
//! FPM against the true speed function. Here the kernel is the real
//! naive-GEMM matmul kernel running on the host CPU, whose speed
//! function exhibits the same memory-hierarchy shape.
//!
//! Output: CSV `d,measured_gflops,piecewise_gflops,akima_gflops`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/fig2_interpolation.trace.jsonl` (see docs/OBSERVABILITY.md).
//!
//! Run with `cargo run --release -p fupermod-bench --bin fig2_interpolation`.
//! Pass `--quick` for a smaller sweep (used in smoke tests).

use fupermod_bench::{finish_experiment_trace, print_csv_row, sink_or_null, size_grid};
use fupermod_core::benchmark::Benchmark;
use fupermod_core::kernel::Kernel;
use fupermod_core::model::{AkimaModel, Model, PiecewiseModel};
use fupermod_core::Precision;
use fupermod_kernels::gemm::MatMulKernel;

fn main() {
    let trace = fupermod_bench::experiment_trace("fig2_interpolation");
    let quick = std::env::args().any(|a| a == "--quick");
    let block = 16usize;
    let (hi, npoints, reps) = if quick { (400, 8, 2) } else { (4000, 22, 3) };

    let mut kernel = MatMulKernel::with_naive_gemm(block);
    let precision = Precision {
        reps_min: reps,
        reps_max: reps * 4,
        cl: 0.95,
        rel_err: 0.05,
        max_seconds: 2.0,
    };
    let bench = Benchmark::new(&precision).with_trace(sink_or_null(&trace));

    let mut pwl = PiecewiseModel::new();
    let mut akima = AkimaModel::new();
    let mut raw = Vec::new();
    for d in size_grid(1, hi, npoints) {
        let point = bench.measure(&mut kernel, d).expect("benchmark failed");
        raw.push(point);
        pwl.update(point).expect("piecewise update failed");
        akima.update(point).expect("akima update failed");
    }

    // The per-unit complexity converts units/s into flop/s.
    let flops_per_unit = |d: u64| kernel.complexity(d) / d as f64;

    print_csv_row(&[
        "d".into(),
        "measured_gflops".into(),
        "piecewise_gflops".into(),
        "akima_gflops".into(),
    ]);
    // Dense sweep so the interpolants' shapes are visible between the
    // measured points.
    let (lo_d, hi_d) = (1u64, *size_grid(1, hi, npoints).last().unwrap());
    for d in size_grid(lo_d, hi_d, 80) {
        let x = d as f64;
        let to_gflops = |units_per_sec: f64| units_per_sec * flops_per_unit(d) / 1e9;
        let measured = raw
            .iter()
            .min_by_key(|p| p.d.abs_diff(d))
            .filter(|p| p.d == d)
            .map(|p| to_gflops(p.speed()));
        let pw = pwl.speed(x).map(to_gflops).unwrap_or(f64::NAN);
        let ak = akima.speed(x).map(to_gflops).unwrap_or(f64::NAN);
        print_csv_row(&[
            d.to_string(),
            measured.map(|v| format!("{v:.4}")).unwrap_or_default(),
            format!("{pw:.4}"),
            format!("{ak:.4}"),
        ]);
    }
    finish_experiment_trace(trace.as_ref());
}
