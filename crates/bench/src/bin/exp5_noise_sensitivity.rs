//! EXP5 (ablation) — Sensitivity of partition quality to measurement
//! noise.
//!
//! The paper's benchmark machinery exists because "the use of wrong
//! estimates can fully destroy the resulting performance". This
//! ablation injects increasing relative noise into the devices and
//! compares the ground-truth imbalance of partitions computed (a) from
//! single-shot measurements and (b) from statistically controlled
//! measurements (Student-t stopping rule). The confidence-interval
//! machinery should hold quality roughly flat while single-shot
//! degrades.
//!
//! Output: CSV `noise,strategy,imbalance,mean_reps`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp5_noise_sensitivity.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{
    finish_experiment_trace, ground_truth_imbalance, ground_truth_times, print_csv_row,
    sink_or_null, size_grid,
};
use fupermod_core::benchmark::Benchmark;
use fupermod_core::kernel::DeviceKernel;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::{GeometricPartitioner, Partitioner};
use fupermod_core::Precision;
use fupermod_platform::{cluster, Device, LinkModel, Platform, WorkloadProfile};

fn noisy_platform(noise: f64, seed: u64) -> Platform {
    let renoise = |d: Device, s: u64| Device::new(d.name().to_owned(), d.spec().clone(), noise, s);
    Platform::new(
        format!("noisy-{noise}"),
        vec![
            renoise(cluster::fast_cpu("f0", 0), seed),
            renoise(cluster::fast_cpu("f1", 0), seed + 1),
            renoise(cluster::slow_cpu("s0", 0), seed + 2),
            renoise(cluster::slow_cpu("s1", 0), seed + 3),
        ],
        LinkModel::ethernet(),
    )
}

fn main() {
    let trace = fupermod_bench::experiment_trace("exp5_noise_sensitivity");
    let profile = WorkloadProfile::matrix_update(16);
    let total = 100_000u64;
    let sizes = size_grid(16, 50_000, 12);

    print_csv_row(&[
        "noise".into(),
        "strategy".into(),
        "imbalance".into(),
        "mean_reps".into(),
    ]);

    for noise in [0.0, 0.02, 0.05, 0.10, 0.20, 0.40] {
        let platform = noisy_platform(noise, 500);
        for (strategy, precision) in [
            (
                "single-shot",
                Precision {
                    reps_min: 1,
                    reps_max: 1,
                    cl: 0.95,
                    rel_err: 1.0,
                    max_seconds: 1e9,
                },
            ),
            (
                "student-t",
                Precision {
                    reps_min: 5,
                    reps_max: 100,
                    cl: 0.95,
                    rel_err: 0.02,
                    max_seconds: 1e9,
                },
            ),
        ] {
            let bench = Benchmark::new(&precision).with_trace(sink_or_null(&trace));
            let mut models = Vec::new();
            let mut total_reps = 0u64;
            let mut measurements = 0u64;
            for dev in platform.devices() {
                let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
                let mut model = PiecewiseModel::new();
                for &d in &sizes {
                    let point = bench.measure(&mut kernel, d).expect("benchmark failed");
                    total_reps += point.reps as u64;
                    measurements += 1;
                    model.update(point).expect("update failed");
                }
                models.push(model);
            }
            let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
            let dist = GeometricPartitioner::default()
                .partition_traced(total, &refs, sink_or_null(&trace))
                .expect("partition failed");
            let times = ground_truth_times(&platform, &profile, &dist.sizes());
            print_csv_row(&[
                format!("{noise:.2}"),
                strategy.to_owned(),
                format!("{:.4}", ground_truth_imbalance(&times)),
                format!("{:.1}", total_reps as f64 / measurements as f64),
            ]);
        }
    }
    finish_experiment_trace(trace.as_ref());
}
