//! EXP4 — Communication volume of the column-based 2D arrangement vs
//! 1D row strips (Beaumont et al. \[2\], used by the paper's matmul).
//!
//! For growing process counts and a heterogeneous area mix, compares
//! the sum of rectangle half-perimeters (proportional to the data
//! broadcast per matmul iteration) of the column-based DP arrangement
//! against naive 1D row strips. Columns should win, and the gap should
//! grow with `p` (strips cost `p·n + n`; columns approach `2n√p`).
//!
//! Output: CSV `p,n_blocks,columns_hp,strips_hp,ratio`.

use fupermod_bench::print_csv_row;
use fupermod_core::matrix2d::{column_partition, row_strip_half_perimeters};

fn main() {
    let n_blocks: u64 = 512;
    print_csv_row(&[
        "p".into(),
        "n_blocks".into(),
        "columns_hp".into(),
        "strips_hp".into(),
        "ratio".into(),
    ]);
    for p in [2usize, 4, 8, 16, 32, 64] {
        // Heterogeneous mix: geometric speeds, normalised to the grid.
        let weights: Vec<f64> = (0..p).map(|i| 1.25f64.powi((i % 8) as i32)).collect();
        let total = n_blocks * n_blocks;
        let areas = fupermod_num::apportion::largest_remainder(&weights, total)
            .expect("apportionment failed");
        let columns = column_partition(n_blocks, &areas).expect("column partition failed");
        let strips = row_strip_half_perimeters(n_blocks, &areas).expect("strip partition failed");
        let chp = columns.sum_half_perimeters();
        print_csv_row(&[
            p.to_string(),
            n_blocks.to_string(),
            chp.to_string(),
            strips.to_string(),
            format!("{:.3}", strips as f64 / chp as f64),
        ]);
    }
}
