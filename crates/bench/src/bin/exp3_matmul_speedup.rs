//! EXP3 — Heterogeneous matrix multiplication: even vs CPM vs FPM
//! partitioning (the paper's §4.1 use case and the motivation of §1).
//!
//! Simulates the full column-based matmul on heterogeneous testbeds for
//! a sweep of matrix sizes. The expectation (the paper's headline
//! shape): model-based partitioning beats the even distribution
//! everywhere; the FPM beats the CPM once per-device shares span memory
//! cliffs or the GPU memory boundary.
//!
//! Output: CSV `platform,n_blocks,strategy,total_time_s,speedup_vs_even,comm_s`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp3_matmul_speedup.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_apps::matmul::{build_device_models_with, partition_areas, simulate, MatMulConfig};
use fupermod_bench::{
    finish_experiment_trace, parallelism_from_args, print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::model::{AkimaModel, ConstantModel, Model};
use fupermod_core::partition::{ConstantPartitioner, NumericalPartitioner};
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

fn main() {
    let trace = fupermod_bench::experiment_trace("exp3_matmul_speedup");
    let quick = std::env::args().any(|a| a == "--quick");
    let block = 16usize;
    let profile = WorkloadProfile::matrix_update(block);
    let platforms = vec![Platform::two_speed(2, 2, 301), Platform::hybrid_node(4, 302)];
    let n_blocks_sweep: Vec<u64> = if quick {
        vec![32, 96]
    } else {
        vec![32, 64, 128, 256, 512]
    };

    print_csv_row(&[
        "platform".into(),
        "n_blocks".into(),
        "strategy".into(),
        "total_time_s".into(),
        "speedup_vs_even".into(),
        "comm_s".into(),
    ]);

    for platform in &platforms {
        let max_area = n_blocks_sweep.last().unwrap().pow(2);
        let sizes = size_grid(16, max_area / 2, if quick { 8 } else { 14 });
        // `--parallelism N` builds the per-device models on N worker
        // threads; the models and the trace are bit-identical to the
        // serial build (see fupermod_core::builder::ModelBuilder).
        let parallelism = parallelism_from_args();
        let cpms: Vec<ConstantModel> = build_device_models_with(
            platform,
            &profile,
            &[sizes[sizes.len() / 2]],
            &Precision::default(),
            sink_or_null(&trace),
            parallelism,
        )
        .expect("cpm build failed");
        let akimas: Vec<AkimaModel> = build_device_models_with(
            platform,
            &profile,
            &sizes,
            &Precision::default(),
            sink_or_null(&trace),
            parallelism,
        )
        .expect("akima build failed");

        for &n_blocks in &n_blocks_sweep {
            let cfg = MatMulConfig { n_blocks, block };
            let total = n_blocks * n_blocks;

            let even_areas: Vec<u64> = {
                let p = platform.size() as u64;
                (0..p).map(|i| total / p + u64::from(i < total % p)).collect()
            };
            let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
            let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
            let cpm_areas = partition_areas(&ConstantPartitioner, n_blocks, &cpm_refs)
                .expect("cpm partition failed");
            let fpm_areas = partition_areas(&NumericalPartitioner::default(), n_blocks, &akima_refs)
                .expect("fpm partition failed");

            let even = simulate(platform, &even_areas, &cfg).expect("even sim failed");
            for (name, areas) in [("even", even_areas), ("cpm", cpm_areas), ("fpm", fpm_areas)] {
                let report = simulate(platform, &areas, &cfg).expect("sim failed");
                print_csv_row(&[
                    platform.name().to_owned(),
                    n_blocks.to_string(),
                    name.to_owned(),
                    format!("{:.4}", report.total_time),
                    format!("{:.3}", even.total_time / report.total_time),
                    format!("{:.4}", report.comm_seconds),
                ]);
            }
        }
    }
    finish_experiment_trace(trace.as_ref());
}
