//! EXP1 — Partition quality of CPM vs piecewise-FPM vs Akima-FPM
//! (paper §4.3: "the fastest but least accurate" CPM against the two
//! FPM algorithms).
//!
//! For each testbed and problem size, full models of every device are
//! built from the same benchmark data; each partitioner then splits the
//! workload, and the resulting distribution is scored against the
//! devices' *ground-truth* time functions (which the framework never
//! sees). The interesting region is where per-device shares cross
//! memory cliffs: constant models keep extrapolating the small-size
//! speed and overload devices, while the functional models keep the
//! load balanced.
//!
//! Output: CSV `platform,total,partitioner,imbalance,makespan,speedup_vs_even`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp1_partition_quality.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{
    evaluate_partitioner, finish_experiment_trace, print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::trace::null_sink;
use fupermod_core::model::{AkimaModel, ConstantModel, Model, PiecewiseModel};
use fupermod_core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

/// One partitioning configuration: label, algorithm, and the models it runs on.
type Run<'a> = (&'a str, Box<dyn Partitioner>, Vec<&'a dyn Model>);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = fupermod_bench::experiment_trace("exp1_partition_quality");
    let profile = WorkloadProfile::matrix_update(16);
    let precision = Precision::default();

    let platforms = vec![
        Platform::two_speed(2, 2, 101),
        Platform::multicore_node(6, 102),
        Platform::hybrid_node(4, 103),
        Platform::grid_site(104),
    ];
    let totals: Vec<u64> = if quick {
        vec![2_000, 50_000]
    } else {
        vec![2_000, 10_000, 50_000, 200_000, 800_000]
    };

    print_csv_row(&[
        "platform".into(),
        "total".into(),
        "partitioner".into(),
        "imbalance".into(),
        "makespan".into(),
        "speedup_vs_even".into(),
    ]);

    for platform in &platforms {
        // One shared benchmark sweep per device feeds all three models.
        let sizes = size_grid(16, *totals.last().unwrap() / 2, if quick { 8 } else { 16 });
        let mut cpms = Vec::new();
        let mut pwls = Vec::new();
        let mut akimas = Vec::new();
        for rank in 0..platform.size() {
            let mut cpm = ConstantModel::new();
            let mut pwl = PiecewiseModel::new();
            let mut akima = AkimaModel::new();
            // The CPM sees only a single mid-range point (the
            // "traditional serial benchmark of some given size").
            fupermod_bench::build_model_for_device(
                platform,
                rank,
                &profile,
                &[sizes[sizes.len() / 2]],
                &precision,
                &mut cpm,
                sink_or_null(&trace),
            )
            .expect("cpm build failed");
            fupermod_bench::build_model_for_device(
                platform,
                rank,
                &profile,
                &sizes,
                &precision,
                &mut pwl,
                null_sink(),
            )
            .expect("pwl build failed");
            fupermod_bench::build_model_for_device(
                platform,
                rank,
                &profile,
                &sizes,
                &precision,
                &mut akima,
                null_sink(),
            )
            .expect("akima build failed");
            cpms.push(cpm);
            pwls.push(pwl);
            akimas.push(akima);
        }

        for &total in &totals {
            let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
            let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
            let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();

            let even = evaluate_partitioner(
                platform,
                &profile,
                total,
                &EvenPartitioner,
                &cpm_refs,
                null_sink(),
            )
            .expect("even failed");

            let runs: Vec<Run> = vec![
                ("even", Box::new(EvenPartitioner), cpm_refs.clone()),
                ("cpm", Box::new(ConstantPartitioner), cpm_refs),
                (
                    "fpm-geometric",
                    Box::new(GeometricPartitioner::default()),
                    pwl_refs,
                ),
                (
                    "fpm-numerical",
                    Box::new(NumericalPartitioner::default()),
                    akima_refs,
                ),
            ];
            for (name, partitioner, models) in runs {
                let eval = evaluate_partitioner(
                    platform,
                    &profile,
                    total,
                    partitioner.as_ref(),
                    &models,
                    sink_or_null(&trace),
                )
                .expect("evaluation failed");
                print_csv_row(&[
                    platform.name().to_owned(),
                    total.to_string(),
                    name.to_owned(),
                    format!("{:.4}", eval.imbalance),
                    format!("{:.4}", eval.makespan),
                    format!("{:.3}", even.makespan / eval.makespan),
                ]);
            }
        }
    }
    finish_experiment_trace(trace.as_ref());
}
