//! EXP6 (ablation) — Cost/accuracy trade-off of model resolution.
//!
//! The framework promises models "to a given accuracy and
//! cost-effectiveness" (§1). This ablation sweeps the number of
//! benchmark points per full model and reports both the benchmarking
//! cost and the ground-truth imbalance of the resulting geometric and
//! numerical partitions. The expected shape: quality saturates after a
//! modest number of points (the memory cliffs are bracketed), while
//! cost keeps growing linearly — the motivation for partial models.
//!
//! Output: CSV `points,algorithm,bench_cost_s,imbalance`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp6_model_points.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{
    build_model_for_device, finish_experiment_trace, ground_truth_imbalance, ground_truth_times,
    print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::model::{AkimaModel, Model, PiecewiseModel};
use fupermod_core::partition::{GeometricPartitioner, NumericalPartitioner, Partitioner};
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

fn main() {
    let trace = fupermod_bench::experiment_trace("exp6_model_points");
    let profile = WorkloadProfile::matrix_update(16);
    let platform = Platform::grid_site(600);
    let total = 150_000u64;
    let precision = Precision::default();

    print_csv_row(&[
        "points".into(),
        "algorithm".into(),
        "bench_cost_s".into(),
        "imbalance".into(),
    ]);

    for npoints in [2usize, 3, 4, 6, 8, 12, 16, 24] {
        let sizes = size_grid(16, 80_000, npoints);

        let mut pwls = Vec::new();
        let mut akimas = Vec::new();
        let mut cost = 0.0;
        for rank in 0..platform.size() {
            let mut pwl = PiecewiseModel::new();
            let mut akima = AkimaModel::new();
            cost += build_model_for_device(
                &platform,
                rank,
                &profile,
                &sizes,
                &precision,
                &mut pwl,
                sink_or_null(&trace),
            )
            .expect("pwl build failed");
            // Reuse the same benchmark data for the Akima model: zero
            // extra cost, identical information.
            for p in pwl.points() {
                akima.update(*p).expect("akima update failed");
            }
            pwls.push(pwl);
            akimas.push(akima);
        }

        let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
        let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
        for (name, dist) in [
            (
                "geometric",
                GeometricPartitioner::default()
                    .partition(total, &pwl_refs)
                    .expect("geometric failed"),
            ),
            (
                "numerical",
                NumericalPartitioner::default()
                    .partition(total, &akima_refs)
                    .expect("numerical failed"),
            ),
        ] {
            let times = ground_truth_times(&platform, &profile, &dist.sizes());
            print_csv_row(&[
                sizes.len().to_string(),
                name.to_owned(),
                format!("{cost:.3}"),
                format!("{:.4}", ground_truth_imbalance(&times)),
            ]);
        }
    }
    finish_experiment_trace(trace.as_ref());
}
