//! EXP7 (extension) — Hierarchical vs flat partitioning.
//!
//! The paper's target is a *hierarchical* heterogeneous system; its
//! models can describe whole nodes as single super-processes ("the
//! total performance of a multi-CPU/GPU node"). This experiment
//! partitions a clustered platform both flat (all devices at once) and
//! hierarchically (across nodes via aggregate models, then within
//! nodes) and compares ground-truth makespans — the two should agree
//! closely, with the hierarchical solve operating on far smaller
//! systems at each level.
//!
//! Output: CSV `total,approach,makespan,imbalance`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp7_hierarchy.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{
    finish_experiment_trace, ground_truth_imbalance, print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::hierarchy::partition_hierarchical;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::{GeometricPartitioner, Partitioner};
use fupermod_core::Precision;
use fupermod_platform::{cluster, LinkModel, Platform, WorkloadProfile};

fn main() {
    let trace = fupermod_bench::experiment_trace("exp7_hierarchy");
    let profile = WorkloadProfile::matrix_update(16);
    // Three two-device "nodes" of very different strengths.
    let devices = vec![
        cluster::fast_cpu("n0c0", 700),
        cluster::fast_cpu("n0c1", 701),
        cluster::slow_cpu("n1c0", 702),
        cluster::slow_cpu("n1c1", 703),
        cluster::fast_cpu("n2c0", 704),
        cluster::slow_cpu("n2c1", 705),
    ];
    let platform = Platform::new("three-nodes", devices, LinkModel::ethernet());

    let sizes = size_grid(16, 200_000, 12);
    let mut models = Vec::new();
    for rank in 0..platform.size() {
        let mut m = PiecewiseModel::new();
        fupermod_bench::build_model_for_device(
            &platform,
            rank,
            &profile,
            &sizes,
            &Precision::default(),
            &mut m,
            sink_or_null(&trace),
        )
        .expect("model build failed");
        models.push(m);
    }
    let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
    let groups: Vec<Vec<&dyn Model>> = vec![
        vec![refs[0], refs[1]],
        vec![refs[2], refs[3]],
        vec![refs[4], refs[5]],
    ];

    print_csv_row(&[
        "total".into(),
        "approach".into(),
        "makespan".into(),
        "imbalance".into(),
    ]);
    for total in [10_000u64, 60_000, 300_000] {
        let flat = GeometricPartitioner::default()
            .partition_traced(total, &refs, sink_or_null(&trace))
            .expect("flat partition failed");
        let flat_times: Vec<f64> = flat
            .sizes()
            .iter()
            .enumerate()
            .map(|(i, &d)| platform.device(i).ideal_time(d, &profile))
            .collect();

        let hier = partition_hierarchical(
            total,
            &groups,
            &GeometricPartitioner::default(),
            &GeometricPartitioner::default(),
        )
        .expect("hierarchical partition failed");
        let hier_times: Vec<f64> = hier
            .flat_sizes()
            .iter()
            .enumerate()
            .map(|(i, &d)| platform.device(i).ideal_time(d, &profile))
            .collect();

        for (name, times) in [("flat", flat_times), ("hierarchical", hier_times)] {
            let makespan = times.iter().fold(0.0_f64, |m, t| m.max(*t));
            print_csv_row(&[
                total.to_string(),
                name.to_owned(),
                format!("{makespan:.4}"),
                format!("{:.4}", ground_truth_imbalance(&times)),
            ]);
        }
    }
    finish_experiment_trace(trace.as_ref());
}
