//! FIG3 — Construction of partial piecewise FPMs by the geometrical
//! dynamic data-partitioning algorithm (paper Fig. 3).
//!
//! Two simulated heterogeneous devices; the dynamic partitioner starts
//! from the even distribution, benchmarks at the current sizes, refines
//! the partial models and re-partitions until balanced. The output
//! traces, per step, the model points accumulated so far and the
//! resulting distribution — the data behind the paper's Fig. 3(a,b).
//!
//! Output: CSV `step,device,point_d,point_t,assigned_d,imbalance`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/fig3_partial_fpm.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{finish_experiment_trace, print_csv_row, quick_measure, sink_or_null};
use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_platform::{cluster, LinkModel, Platform, WorkloadProfile};

fn main() {
    let trace = fupermod_bench::experiment_trace("fig3_partial_fpm");
    let total: u64 = 4000;
    let eps = 0.03;
    let platform = Platform::new(
        "fig3-pair",
        vec![cluster::fast_cpu("fast", 33), cluster::slow_cpu("slow", 34)],
        LinkModel::ethernet(),
    );
    let profile = WorkloadProfile::matrix_update(16);

    let models: Vec<Box<dyn Model>> = (0..2)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(
        Box::new(GeometricPartitioner::default()),
        models,
        total,
        eps,
    );
    if let Some(sink) = &trace {
        ctx = ctx.with_trace(sink.clone());
    }

    print_csv_row(&[
        "step".into(),
        "device".into(),
        "point_d".into(),
        "point_t".into(),
        "assigned_d".into(),
        "imbalance".into(),
    ]);

    for step in 1..=12 {
        let result = ctx
            .partition_iterate(|rank, d| {
                quick_measure(&platform, rank, &profile, d, sink_or_null(&trace))
            })
            .expect("dynamic step failed");
        let sizes = ctx.dist().sizes();
        for (rank, model) in ctx.models().iter().enumerate() {
            for p in model.points() {
                print_csv_row(&[
                    step.to_string(),
                    platform.device(rank).name().to_owned(),
                    p.d.to_string(),
                    format!("{:.6}", p.t),
                    sizes[rank].to_string(),
                    format!("{:.4}", result.imbalance),
                ]);
            }
        }
        if result.converged {
            eprintln!("converged after {step} steps (imbalance {:.4})", result.imbalance);
            break;
        }
    }
    finish_experiment_trace(trace.as_ref());
}
