//! EXP9 (end-to-end) — What a user actually pays: total cost of
//! optimising the heterogeneous matmul with (a) full prebuilt models,
//! (b) dynamic partial models built on the spot, and (c) no models at
//! all (even split).
//!
//! The paper's §4.3 framing: prebuilt models amortise over repeated
//! runs; dynamic estimation suits one-shot executions. This experiment
//! reports `model_cost + k × run_time` for k = 1 and k = 20 runs, so
//! the crossover is visible.
//!
//! Output: CSV `platform,n_blocks,approach,model_cost_s,run_time_s,total_1run,total_20runs`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp9_dynamic_matmul.trace.jsonl` (see docs/OBSERVABILITY.md).
//!
//! With `--runtime thread|sim` the dynamic-estimation leg runs through
//! the distributed message-passing executor (`fupermod-runtime`) —
//! bit-identical results on a fault-free plan; `--fault-plan SPEC`
//! (inline JSON or a file, see docs/RUNTIME.md) injects faults and
//! `--collectives hub|ring|tree|auto` selects the collective schedules
//! (docs/RUNTIME.md §6). `--sim-engine event` swaps the rank threads
//! for the single-threaded discrete-event interpreter (implies
//! `--runtime sim`; see docs/RUNTIME.md §9).

use fupermod_apps::matmul::{partition_areas, simulate, MatMulConfig};
use fupermod_bench::{
    build_model_for_device, finish_experiment_trace, print_csv_row, quick_measure, sink_or_null,
    size_grid,
};
use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::{EvenPartitioner, GeometricPartitioner, Partitioner};
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

fn main() {
    let trace = fupermod_bench::experiment_trace("exp9_dynamic_matmul");
    let block = 16usize;
    let profile = WorkloadProfile::matrix_update(block);
    let platforms = vec![Platform::two_speed(2, 2, 901), Platform::grid_site(902)];
    let cfg = MatMulConfig {
        n_blocks: 256,
        block,
    };
    let total_area = cfg.n_blocks * cfg.n_blocks;

    print_csv_row(&[
        "platform".into(),
        "n_blocks".into(),
        "approach".into(),
        "model_cost_s".into(),
        "run_time_s".into(),
        "total_1run".into(),
        "total_20runs".into(),
    ]);

    for platform in &platforms {
        let p = platform.size();

        // (c) even: no modelling cost at all.
        let even_areas: Vec<u64> = (0..p as u64)
            .map(|i| total_area / p as u64 + u64::from(i < total_area % p as u64))
            .collect();
        let even_run = simulate(platform, &even_areas, &cfg).expect("even sim").total_time;
        emit(platform, &cfg, "even", 0.0, even_run);

        // (a) full prebuilt models.
        let sizes = size_grid(16, total_area / 2, 14);
        let mut full_cost = 0.0;
        let mut models = Vec::new();
        for rank in 0..p {
            let mut m = PiecewiseModel::new();
            full_cost += build_model_for_device(
                platform,
                rank,
                &profile,
                &sizes,
                &Precision::thorough(),
                &mut m,
                sink_or_null(&trace),
            )
            .expect("model build failed");
            models.push(m);
        }
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
        let areas = partition_areas(&GeometricPartitioner::default(), cfg.n_blocks, &refs)
            .expect("partition failed");
        let run = simulate(platform, &areas, &cfg).expect("sim failed").total_time;
        emit(platform, &cfg, "full-models", full_cost, run);

        // (b) dynamic partial estimation at run time — distributed
        // over the runtime when --runtime thread|sim is given.
        let (dyn_cost, areas) =
            match fupermod_bench::runtime_from_args(platform, trace.as_ref()) {
                Some(config) => {
                    let outcome = fupermod_bench::distributed_dynamic(
                        platform, &profile, total_area, 0.05, 20, config,
                    )
                    .expect("distributed dynamic run failed");
                    (
                        fupermod_bench::distributed_bench_cost(&outcome),
                        outcome.final_sizes.clone(),
                    )
                }
                None => {
                    let partials: Vec<Box<dyn Model>> = (0..p)
                        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
                        .collect();
                    let mut ctx = DynamicContext::new(
                        Box::new(GeometricPartitioner::default()),
                        partials,
                        total_area,
                        0.05,
                    );
                    if let Some(sink) = &trace {
                        ctx = ctx.with_trace(sink.clone());
                    }
                    let mut dyn_cost = 0.0;
                    for _ in 0..20 {
                        let step = ctx
                            .partition_iterate(|rank, d| {
                                let pt = quick_measure(
                                    platform,
                                    rank,
                                    &profile,
                                    d,
                                    sink_or_null(&trace),
                                )?;
                                dyn_cost += pt.t * pt.reps as f64;
                                Ok(pt)
                            })
                            .expect("dynamic step failed");
                        if step.converged {
                            break;
                        }
                    }
                    (dyn_cost, ctx.dist().sizes())
                }
            };
        let run = simulate(platform, &areas, &cfg).expect("sim failed").total_time;
        emit(platform, &cfg, "dynamic", dyn_cost, run);

        // Sanity row: what the ideal (even) baseline with a Partitioner
        // object would give (should match the handmade split).
        let even_check = EvenPartitioner
            .partition(total_area, &refs)
            .expect("even partition failed");
        assert_eq!(even_check.total_assigned(), total_area);
    }
    finish_experiment_trace(trace.as_ref());
}

fn emit(platform: &Platform, cfg: &MatMulConfig, name: &str, model_cost: f64, run: f64) {
    print_csv_row(&[
        platform.name().to_owned(),
        cfg.n_blocks.to_string(),
        name.to_owned(),
        format!("{model_cost:.3}"),
        format!("{run:.3}"),
        format!("{:.3}", model_cost + run),
        format!("{:.3}", model_cost + 20.0 * run),
    ]);
}
