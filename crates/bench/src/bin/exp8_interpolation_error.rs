//! EXP8 (ablation) — Interpolation choice near memory cliffs.
//!
//! The paper adopts Akima splines for the smooth FPM "since this
//! approximation provides continuous derivative" and, unlike global
//! splines, does not oscillate at abrupt slope changes. This ablation
//! quantifies that: build four models (piecewise-restricted, Akima,
//! natural cubic, linear regression) from the *same* benchmark data on
//! devices with genuine memory cliffs, and measure each model's
//! time-prediction error against the ground truth on a dense size
//! sweep, plus the ground-truth imbalance of the partition each model
//! family produces.
//!
//! Output: CSV `device,model,max_rel_err,mean_rel_err,imbalance`.
//! With `--trace-dir DIR` (or `FUPERMOD_TRACE_DIR`), also writes
//! `DIR/exp8_interpolation_error.trace.jsonl` (see docs/OBSERVABILITY.md).

use fupermod_bench::{
    build_model_for_device, finish_experiment_trace, ground_truth_imbalance, ground_truth_times,
    print_csv_row, sink_or_null, size_grid,
};
use fupermod_core::model::{AkimaModel, CubicModel, LinearModel, Model, PiecewiseModel};
use fupermod_core::partition::{NumericalPartitioner, Partitioner};
use fupermod_core::Precision;
use fupermod_platform::{Platform, WorkloadProfile};

fn prediction_errors(
    platform: &Platform,
    rank: usize,
    profile: &WorkloadProfile,
    model: &dyn Model,
    lo: u64,
    hi: u64,
) -> (f64, f64) {
    let mut max_rel = 0.0_f64;
    let mut sum_rel = 0.0;
    let mut n = 0;
    for d in size_grid(lo, hi, 200) {
        let truth = platform.device(rank).ideal_time(d, profile);
        if truth <= 0.0 {
            continue;
        }
        let predicted = model.time(d as f64).unwrap_or(f64::INFINITY);
        let rel = (predicted - truth).abs() / truth;
        max_rel = max_rel.max(rel);
        sum_rel += rel;
        n += 1;
    }
    (max_rel, sum_rel / n as f64)
}

fn main() {
    let trace = fupermod_bench::experiment_trace("exp8_interpolation_error");
    let profile = WorkloadProfile::matrix_update(16);
    let platform = Platform::two_speed(2, 2, 800);
    let precision = Precision::thorough();
    let (lo, hi) = (16u64, 400_000u64);
    let sizes = size_grid(lo, hi, 14);
    let total = 600_000u64;

    print_csv_row(&[
        "device".into(),
        "model".into(),
        "max_rel_err".into(),
        "mean_rel_err".into(),
        "imbalance".into(),
    ]);

    let mut pwls = Vec::new();
    let mut akimas = Vec::new();
    let mut cubics = Vec::new();
    let mut linears = Vec::new();
    for rank in 0..platform.size() {
        let mut pwl = PiecewiseModel::new();
        let mut akima = AkimaModel::new();
        let mut cubic = CubicModel::new();
        let mut linear = LinearModel::new();
        build_model_for_device(
            &platform,
            rank,
            &profile,
            &sizes,
            &precision,
            &mut pwl,
            sink_or_null(&trace),
        )
        .expect("build failed");
        // Reuse identical data for the other models.
        for p in pwl.points() {
            akima.update(*p).expect("akima update");
            cubic.update(*p).expect("cubic update");
            linear.update(*p).expect("linear update");
        }
        pwls.push(pwl);
        akimas.push(akima);
        cubics.push(cubic);
        linears.push(linear);
    }

    // Partition quality per model family (numerical algorithm for all,
    // so only the model differs).
    let imbalance_of = |models: Vec<&dyn Model>| -> f64 {
        let dist = NumericalPartitioner::default()
            .partition_traced(total, &models, sink_or_null(&trace))
            .expect("partition failed");
        let times = ground_truth_times(&platform, &profile, &dist.sizes());
        ground_truth_imbalance(&times)
    };
    let pwl_imb = imbalance_of(pwls.iter().map(|m| m as &dyn Model).collect());
    let akima_imb = imbalance_of(akimas.iter().map(|m| m as &dyn Model).collect());
    let cubic_imb = imbalance_of(cubics.iter().map(|m| m as &dyn Model).collect());
    let linear_imb = imbalance_of(linears.iter().map(|m| m as &dyn Model).collect());

    for rank in 0..platform.size() {
        let rows: Vec<(&str, &dyn Model, f64)> = vec![
            ("piecewise", &pwls[rank], pwl_imb),
            ("akima", &akimas[rank], akima_imb),
            ("cubic", &cubics[rank], cubic_imb),
            ("linear", &linears[rank], linear_imb),
        ];
        for (name, model, imb) in rows {
            let (max_rel, mean_rel) =
                prediction_errors(&platform, rank, &profile, model, lo, hi);
            print_csv_row(&[
                platform.device(rank).name().to_owned(),
                name.to_owned(),
                format!("{max_rel:.4}"),
                format!("{mean_rel:.4}"),
                format!("{imb:.4}"),
            ]);
        }
    }
    finish_experiment_trace(trace.as_ref());
}
