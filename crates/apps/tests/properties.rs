//! Property-based tests for the applications: the distributed matmul
//! is correct for *arbitrary* area splits, and the heat stencil obeys
//! the discrete maximum principle for arbitrary initial data.

use fupermod_apps::heat::{run as heat_run, HeatConfig};
use fupermod_apps::matmul::run_threaded;
use fupermod_apps::workload::{random_matrix, DenseMatrix};
use fupermod_core::partition::GeometricPartitioner;
use fupermod_kernels::gemm::gemm_blocked;
use fupermod_platform::Platform;
use proptest::prelude::*;

fn serial_product(a: &DenseMatrix, b: &DenseMatrix) -> Vec<f64> {
    let n = a.rows;
    let mut c = vec![0.0; n * n];
    gemm_blocked(n, n, n, &a.data, &b.data, &mut c);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_matmul_is_correct_for_any_area_split(
        weights in proptest::collection::vec(0u64..20, 1..7),
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let block = 4usize;
        let n_blocks = 6u64;
        let n = n_blocks as usize * block;
        // Scale weights into exact areas for the 6x6 block grid.
        let areas = fupermod_num::apportion::largest_remainder(
            &weights.iter().map(|&w| w as f64).collect::<Vec<_>>(),
            n_blocks * n_blocks,
        )
        .unwrap();
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let c = run_threaded(&a, &b, block, &areas).unwrap();
        let reference = serial_product(&a, &b);
        for (x, y) in c.data.iter().zip(&reference) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn heat_obeys_the_discrete_maximum_principle(
        seed in 0u64..1000,
        steps in 1usize..15,
    ) {
        let (rows, cols) = (12usize, 10usize);
        let initial = random_matrix(rows, cols, seed).data;
        let lo = initial.iter().cloned().fold(0.0_f64, f64::min);
        let hi = initial.iter().cloned().fold(0.0_f64, f64::max);
        let platform = Platform::uniform(2, seed);
        let report = heat_run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.25,
                steps,
                eps_balance: 0.05,
                balance: true,
            },
        )
        .unwrap();
        // With zero Dirichlet boundaries the range can only contract
        // towards [min(0, lo), max(0, hi)].
        for v in &report.grid {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "escaped: {v}");
        }
    }

    #[test]
    fn heat_conserves_row_ownership(
        seed in 0u64..100,
    ) {
        let (rows, cols) = (40usize, 16usize);
        let initial = random_matrix(rows, cols, seed).data;
        let platform = Platform::two_speed(1, 2, seed);
        let report = heat_run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.2,
                steps: 10,
                eps_balance: 0.05,
                balance: true,
            },
        )
        .unwrap();
        for rec in &report.steps {
            prop_assert_eq!(rec.sizes.iter().sum::<u64>(), rows as u64);
        }
    }
}

// Parallel model construction must be a pure wall-clock optimisation:
// for any worker count, the models *and* the recorded trace are
// bit-identical to the serial build (ModelBuilder's replay contract).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_model_build_is_bit_identical_to_serial(
        parallelism in 0usize..9,
        seed in 0u64..500,
    ) {
        use fupermod_apps::matmul::build_device_models_with;
        use fupermod_core::model::PiecewiseModel;
        use fupermod_core::trace::MemorySink;
        use fupermod_core::Precision;
        use fupermod_platform::WorkloadProfile;

        let platform = Platform::two_speed(2, 2, seed);
        let profile = WorkloadProfile::matrix_update(8);
        let sizes = [32u64, 256, 2048];
        let precision = Precision::quick();

        let serial_sink = MemorySink::new();
        let serial: Vec<PiecewiseModel> = build_device_models_with(
            &platform, &profile, &sizes, &precision, &serial_sink, 1,
        )
        .unwrap();

        let par_sink = MemorySink::new();
        let parallel: Vec<PiecewiseModel> = build_device_models_with(
            &platform, &profile, &sizes, &precision, &par_sink, parallelism,
        )
        .unwrap();

        prop_assert_eq!(serial, parallel);
        prop_assert_eq!(serial_sink.take(), par_sink.take());
    }
}
