#![warn(missing_docs)]

//! FuPerMod use cases: the two data-parallel applications the paper
//! optimises with model-based data partitioning.
//!
//! * [`matmul`] — heterogeneous parallel matrix multiplication
//!   (paper §4.1): matrices partitioned over a 2D column-based
//!   arrangement with rectangle areas proportional to device speeds.
//!   Provides a *real* multi-threaded execution (numerically verified
//!   against serial GEMM) and a *simulated-time* execution on a
//!   synthetic heterogeneous [`Platform`](fupermod_platform::Platform).
//! * [`jacobi`] — the Jacobi method with dynamic load balancing
//!   (paper §4.4, Fig. 4): rows redistributed between iterations from
//!   partial functional performance models built out of the
//!   application's own iteration times.
//! * [`heat`] — explicit 2D heat diffusion with halo exchange, the
//!   "computer simulation" class of application from the paper's
//!   introduction, balanced the same way.
//! * [`workload`] — deterministic generators for the linear systems and
//!   matrices the applications run on.

pub mod heat;
pub mod jacobi;
pub mod matmul;
pub mod workload;
