//! Deterministic workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major matrix with its dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows × cols`.
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }
}

/// Generates a `rows × cols` matrix with entries uniform in `[-1, 1]`,
/// deterministically from `seed`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix {
        rows,
        cols,
        data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    }
}

/// A linear system `A x = b` with a known solution, for convergence
/// checks.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSystem {
    /// Coefficient matrix, `n × n`, strictly diagonally dominant so the
    /// Jacobi iteration converges.
    pub a: DenseMatrix,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// The solution the system was built from.
    pub x_true: Vec<f64>,
}

/// Generates a strictly diagonally dominant `n × n` system with a known
/// random solution, deterministically from `seed`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn dominant_system(n: usize, seed: u64) -> LinearSystem {
    assert!(n > 0, "system size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        let mut off_sum = 0.0;
        for j in 0..n {
            if j != i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[i * n + j] = v;
                off_sum += v.abs();
            }
        }
        // Strict dominance with margin.
        a[i * n + i] = off_sum + rng.gen_range(1.0..2.0);
    }
    let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    let b: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| a[i * n + j] * x_true[j]).sum())
        .collect();
    LinearSystem {
        a: DenseMatrix {
            rows: n,
            cols: n,
            data: a,
        },
        b,
        x_true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_matrix_is_deterministic() {
        assert_eq!(random_matrix(5, 7, 3), random_matrix(5, 7, 3));
        assert_ne!(random_matrix(5, 7, 3), random_matrix(5, 7, 4));
    }

    #[test]
    fn dominant_system_is_dominant() {
        let sys = dominant_system(20, 11);
        let n = 20;
        for i in 0..n {
            let diag = sys.a.at(i, i).abs();
            let off: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| sys.a.at(i, j).abs())
                .sum();
            assert!(diag > off, "row {i} not dominant");
        }
    }

    #[test]
    fn dominant_system_rhs_matches_solution() {
        let sys = dominant_system(10, 5);
        for i in 0..10 {
            let lhs: f64 = (0..10).map(|j| sys.a.at(i, j) * sys.x_true[j]).sum();
            assert!((lhs - sys.b[i]).abs() < 1e-9);
        }
    }
}
