//! Heterogeneous parallel matrix multiplication (paper §4.1).
//!
//! The application multiplies dense `N × N` matrices partitioned over a
//! 2D column-based arrangement of processes (Beaumont et al. \[2\]), with
//! a blocking factor `b` controlling granularity. At every iteration of
//! the main loop the pivot block-column of `A` and block-row of `B` are
//! broadcast and every process updates its rectangle of `C` with one
//! GEMM call.
//!
//! Two execution paths are provided:
//!
//! * [`run_threaded`] — a *real* run on worker threads synchronising
//!   through the [`fupermod_runtime::ThreadedComm`] communicator,
//!   numerically verified against serial GEMM; it validates that the
//!   2D partition computes the right answer.
//! * [`simulate`] — a *simulated-time* run on a synthetic heterogeneous
//!   [`Platform`], used by the experiments to compare partitioning
//!   strategies at scales no laptop could multiply for real.

use fupermod_core::matrix2d::{column_partition, ColumnPartition};
use fupermod_core::model::Model;
use fupermod_core::partition::Partitioner;
use fupermod_core::{CoreError, Point};
use fupermod_kernels::gemm::{gemm_blocked, gemm_parallel};
use fupermod_platform::comm::SimComm;
use fupermod_platform::{Platform, WorkloadProfile};
use fupermod_runtime::{
    run_ranks, Communicator, OverlapMode, Request, RuntimeConfig, RuntimeError,
};

use crate::workload::DenseMatrix;

/// Configuration of the simulated matmul run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatMulConfig {
    /// Matrix dimension in blocks (`N = n_blocks · block` elements).
    pub n_blocks: u64,
    /// Blocking factor `b`.
    pub block: usize,
}

/// Outcome of a simulated matmul run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated wall time of the whole multiplication, in seconds.
    pub total_time: f64,
    /// Per-process compute time of one (representative) iteration.
    pub iter_compute_times: Vec<f64>,
    /// Total simulated seconds spent communicating, summed over ranks.
    pub comm_seconds: f64,
    /// Sum of rectangle half-perimeters of the 2D partition, in blocks.
    pub half_perimeters: u64,
    /// The 2D partition used.
    pub partition: ColumnPartition,
}

/// Benchmarks every device of `platform` at the given sizes and builds
/// one model per device. The generic parameter picks the model type.
///
/// # Errors
///
/// Propagates benchmark and model errors.
pub fn build_device_models<M: Model + Default + Send>(
    platform: &Platform,
    profile: &WorkloadProfile,
    sizes: &[u64],
    precision: &fupermod_core::Precision,
) -> Result<Vec<M>, CoreError> {
    build_device_models_with(
        platform,
        profile,
        sizes,
        precision,
        fupermod_core::trace::null_sink(),
        1,
    )
}

/// Like [`build_device_models`], additionally routing every benchmark
/// repetition/summary and every model update to `sink` as structured
/// trace events. The model-update events carry the device rank.
///
/// # Errors
///
/// Exactly those of [`build_device_models`].
pub fn build_device_models_traced<M: Model + Default + Send>(
    platform: &Platform,
    profile: &WorkloadProfile,
    sizes: &[u64],
    precision: &fupermod_core::Precision,
    sink: &dyn fupermod_core::trace::TraceSink,
) -> Result<Vec<M>, CoreError> {
    build_device_models_with(platform, profile, sizes, precision, sink, 1)
}

/// The full-control variant of [`build_device_models`]: structured
/// trace events go to `sink` and the per-device builds run on up to
/// `parallelism` scoped worker threads (`1` = serial, `0` = one worker
/// per available core). Devices on a dedicated platform measure
/// independently, so models **and** the trace-event stream are
/// bit-identical to the serial build at every worker count (see
/// [`fupermod_core::builder::ModelBuilder`]).
///
/// # Errors
///
/// Exactly those of [`build_device_models`].
pub fn build_device_models_with<M: Model + Default + Send>(
    platform: &Platform,
    profile: &WorkloadProfile,
    sizes: &[u64],
    precision: &fupermod_core::Precision,
    sink: &dyn fupermod_core::trace::TraceSink,
    parallelism: usize,
) -> Result<Vec<M>, CoreError> {
    use fupermod_core::builder::ModelBuilder;
    use fupermod_core::kernel::{DeviceKernel, Kernel};

    let kernels: Vec<Box<dyn Kernel + Send>> = platform
        .devices()
        .iter()
        .map(|dev| {
            Box::new(DeviceKernel::new(dev.clone(), profile.clone())) as Box<dyn Kernel + Send>
        })
        .collect();
    let built = ModelBuilder::new(precision)
        .with_parallelism(parallelism)
        .with_trace(sink)
        .build::<M>(kernels, sizes)?;
    Ok(built.into_iter().map(|b| b.model).collect())
}

/// Partitions the total block area `n_blocks²` over the devices with
/// the given partitioner and returns per-device areas (in blocks).
///
/// # Errors
///
/// Propagates partitioning errors.
pub fn partition_areas(
    partitioner: &dyn Partitioner,
    n_blocks: u64,
    models: &[&dyn Model],
) -> Result<Vec<u64>, CoreError> {
    let dist = partitioner.partition(n_blocks * n_blocks, models)?;
    Ok(dist.sizes())
}

/// Simulates the full heterogeneous matmul on `platform` with the given
/// per-device block areas.
///
/// The schedule is the paper's: `n_blocks` iterations; in each, the
/// pivot block-column/row is broadcast (each process receives data
/// proportional to its rectangle's half-perimeter) and every process
/// updates its rectangle (its full area, once per iteration) — compute
/// times come from the device ground-truth models with per-iteration
/// noise.
///
/// # Errors
///
/// Returns [`CoreError::Partition`] if the areas cannot tile the grid.
///
/// # Panics
///
/// Panics if `areas.len()` differs from the platform size.
pub fn simulate(
    platform: &Platform,
    areas: &[u64],
    cfg: &MatMulConfig,
) -> Result<SimReport, CoreError> {
    let mut comm = SimComm::new(platform.size(), platform.link());
    simulate_on(platform, areas, cfg, &mut comm)
}

/// Like [`simulate`], but additionally returns the Gantt-style
/// [`TraceEvent`](fupermod_platform::TraceEvent) timeline of the run —
/// per-rank compute/communication/idle intervals.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_traced(
    platform: &Platform,
    areas: &[u64],
    cfg: &MatMulConfig,
) -> Result<(SimReport, Vec<fupermod_platform::TraceEvent>), CoreError> {
    let mut comm = SimComm::new(platform.size(), platform.link());
    comm.enable_trace();
    let report = simulate_on(platform, areas, cfg, &mut comm)?;
    Ok((report, comm.trace().to_vec()))
}

fn simulate_on(
    platform: &Platform,
    areas: &[u64],
    cfg: &MatMulConfig,
    comm: &mut SimComm,
) -> Result<SimReport, CoreError> {
    assert_eq!(areas.len(), platform.size(), "one area per device");
    let partition = column_partition(cfg.n_blocks, areas)?;
    let profile = WorkloadProfile::matrix_update(cfg.block);
    let bytes_per_block = (cfg.block * cfg.block * 8) as f64;
    let p = platform.size();
    let rounds = (usize::BITS - (p.max(2) - 1).leading_zeros()) as f64;

    let mut iter_compute_times = vec![0.0; p];
    let mut comm_secs = 0.0;

    for iter in 0..cfg.n_blocks {
        for (rank, rect) in partition.rects().iter().enumerate() {
            // Receive the pivot parts intersecting this rectangle: a
            // (h×1 + 1×w) block strip per iteration, via a tree bcast.
            let bytes = rect.half_perimeter() as f64 * bytes_per_block;
            if bytes > 0.0 {
                let cost = rounds * platform.link().cost(bytes);
                comm.advance(rank, cost);
                comm_secs += cost;
            }
            // Update the whole rectangle once.
            let units = rect.area();
            if units > 0 {
                let t = platform
                    .device(rank)
                    .measured_time(units, &profile, iter);
                comm.advance(rank, t);
                if iter == 0 {
                    iter_compute_times[rank] = t;
                }
            }
        }
        // The next pivot depends on updated data: synchronise.
        comm.barrier();
    }

    Ok(SimReport {
        total_time: comm.max_time(),
        iter_compute_times,
        comm_seconds: comm_secs + comm.comm_seconds(),
        half_perimeters: partition.sum_half_perimeters(),
        partition,
    })
}

/// Builds experimental points for one device by "benchmarking" the
/// matmul kernel at the given sizes on the simulated platform —
/// convenience used by the dynamic experiments.
///
/// # Errors
///
/// Propagates benchmark errors.
pub fn measure_device_point(
    platform: &Platform,
    rank: usize,
    profile: &WorkloadProfile,
    d: u64,
    precision: &fupermod_core::Precision,
) -> Result<Point, CoreError> {
    use fupermod_core::benchmark::Benchmark;
    use fupermod_core::kernel::DeviceKernel;
    let mut kernel = DeviceKernel::new(platform.device(rank).clone(), profile.clone());
    Benchmark::new(precision).measure(&mut kernel, d)
}

/// Executes the distributed multiplication for real on worker threads:
/// each process owns one rectangle of `C`, receives the full `A` row
/// band and `B` column band it needs (synchronised through the runtime
/// [`fupermod_runtime::ThreadedComm`]), computes with blocked GEMM,
/// and the assembled product is returned.
///
/// `a` and `b` must be square `N × N` with `N = n_blocks · block` where
/// `n_blocks` is derived from `areas` tiling; the function checks
/// divisibility.
///
/// # Errors
///
/// Returns [`CoreError::Partition`] on geometry errors and
/// [`CoreError::Kernel`] on dimension mismatches.
pub fn run_threaded(
    a: &DenseMatrix,
    b: &DenseMatrix,
    block: usize,
    areas: &[u64],
) -> Result<DenseMatrix, CoreError> {
    run_threaded_with(a, b, block, areas, 1)
}

/// Like [`run_threaded`], with each process's local GEMM additionally
/// split across `gemm_threads` row-band workers
/// ([`fupermod_kernels::gemm::gemm_parallel`]; `1` = single-threaded,
/// `0` = one worker per available core). The assembled product is
/// bit-identical at every thread count.
///
/// # Errors
///
/// Exactly those of [`run_threaded`].
pub fn run_threaded_with(
    a: &DenseMatrix,
    b: &DenseMatrix,
    block: usize,
    areas: &[u64],
    gemm_threads: usize,
) -> Result<DenseMatrix, CoreError> {
    let n = a.rows;
    if a.cols != n || b.rows != n || b.cols != n {
        return Err(CoreError::Kernel("matrices must be square and equal".to_owned()));
    }
    if block == 0 || !n.is_multiple_of(block) {
        return Err(CoreError::Kernel(format!(
            "matrix size {n} not divisible by block {block}"
        )));
    }
    let n_blocks = (n / block) as u64;
    let partition = column_partition(n_blocks, areas)?;

    let comms = RuntimeConfig::thread().build(areas.len());
    let comm_err = |e: RuntimeError| CoreError::Kernel(format!("communicator: {e}"));
    let results: Vec<Result<(usize, Vec<f64>), CoreError>> =
        run_ranks(comms, |mut comm| -> Result<(usize, Vec<f64>), CoreError> {
            let rank = comm.rank();
            let rect = partition.rects()[rank];
            // Element-space bounds of this process's C rectangle.
            let row0 = rect.y as usize * block;
            let rows = rect.h as usize * block;
            let col0 = rect.x as usize * block;
            let cols = rect.w as usize * block;
            if rows == 0 || cols == 0 {
                comm.barrier().map_err(comm_err)?;
                return Ok((rank, Vec::new()));
            }
            // "Receive" the needed bands: in this in-process setting
            // the matrices are shared read-only; the barrier stands in
            // for the broadcast arrival.
            comm.barrier().map_err(comm_err)?;
            // Pack the B column band (strided) and the A row band
            // (contiguous), exactly the pivot-buffer copies of the
            // paper's kernel.
            let a_band = &a.data[row0 * n..(row0 + rows) * n];
            let mut b_band = vec![0.0; n * cols];
            for r in 0..n {
                b_band[r * cols..(r + 1) * cols]
                    .copy_from_slice(&b.data[r * n + col0..r * n + col0 + cols]);
            }
            let mut c = vec![0.0; rows * cols];
            if gemm_threads == 1 {
                gemm_blocked(rows, cols, n, a_band, &b_band, &mut c);
            } else {
                gemm_parallel(rows, cols, n, a_band, &b_band, &mut c, gemm_threads);
            }
            Ok((rank, c))
        });

    // Assemble C from the rectangles.
    let mut c = vec![0.0; n * n];
    for result in results {
        let (rank, data) = result?;
        let rect = partition.rects()[rank];
        let row0 = rect.y as usize * block;
        let rows = rect.h as usize * block;
        let col0 = rect.x as usize * block;
        let cols = rect.w as usize * block;
        for r in 0..rows {
            c[(row0 + r) * n + col0..(row0 + r) * n + col0 + cols]
                .copy_from_slice(&data[r * cols..(r + 1) * cols]);
        }
    }
    Ok(DenseMatrix {
        rows: n,
        cols: n,
        data: c,
    })
}

/// Outcome of a broadcast-driven matmul run ([`run_bcast`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BcastRun {
    /// The assembled product matrix.
    pub product: DenseMatrix,
    /// Virtual makespan of the run on the sim backend; `None` on the
    /// threaded backend.
    pub virtual_time: Option<f64>,
    /// Wall-clock duration of the rank phase, in seconds.
    pub wall_seconds: f64,
}

/// FNV-1a checksum over the raw `f64` bit patterns of a matrix — the
/// stable fingerprint the CLI prints so `scripts/check.sh` can diff a
/// pipelined run against a blocking one bit-for-bit.
#[must_use]
pub fn matrix_checksum(m: &DenseMatrix) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in &m.data {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The paper's pivot loop with *real* broadcasts: at iteration `k` the
/// owner of pivot `k` (rank `k mod p`) broadcasts the pivot
/// block-column of `A` and block-row of `B`, and every rank updates its
/// `C` rectangle with one rank-`block` GEMM.
///
/// `mode` picks the communication structure:
///
/// * [`OverlapMode::Blocking`] — `bcast(k)`, then compute the update;
///   the schedule the serial paper loop implies.
/// * [`OverlapMode::Overlapped`] — `ibcast(k+1)` is posted *before*
///   the update for pivot `k` runs, so the next pivot travels while
///   the current one is being consumed (double buffering).
///
/// Both modes run the identical GEMM sequence per rank, so the
/// assembled product is **bit-identical** between them; only the
/// makespan differs. On the sim backend each update credits its
/// modelled compute time via `advance_compute`, making the virtual
/// makespan comparison deterministic.
///
/// # Errors
///
/// Returns [`CoreError::Partition`] on geometry errors and
/// [`CoreError::Kernel`] on dimension mismatches or communicator
/// failures.
pub fn run_bcast(
    a: &DenseMatrix,
    b: &DenseMatrix,
    block: usize,
    areas: &[u64],
    config: RuntimeConfig,
    mode: OverlapMode,
) -> Result<BcastRun, CoreError> {
    let n = a.rows;
    if a.cols != n || b.rows != n || b.cols != n {
        return Err(CoreError::Kernel("matrices must be square and equal".to_owned()));
    }
    if block == 0 || !n.is_multiple_of(block) {
        return Err(CoreError::Kernel(format!(
            "matrix size {n} not divisible by block {block}"
        )));
    }
    let n_blocks = n / block;
    let partition = column_partition(n_blocks as u64, areas)?;
    let p = areas.len();

    // Pivot k's payload: A's block-column k (n × block, row-major)
    // followed by B's block-row k (block × n, row-major).
    let pack_pivot = |k: usize| -> Vec<f64> {
        let mut pivot = Vec::with_capacity(2 * n * block);
        for r in 0..n {
            pivot.extend_from_slice(&a.data[r * n + k * block..r * n + (k + 1) * block]);
        }
        for i in 0..block {
            pivot.extend_from_slice(&b.data[(k * block + i) * n..(k * block + i + 1) * n]);
        }
        pivot
    };

    let (comms, handle) = config.build_with_handle(p);
    let comm_err = |e: RuntimeError| CoreError::Kernel(format!("communicator: {e}"));
    let started = std::time::Instant::now();
    let results: Vec<Result<(usize, Vec<f64>), CoreError>> =
        run_ranks(comms, |mut comm| -> Result<(usize, Vec<f64>), CoreError> {
            let rank = comm.rank();
            let rect = partition.rects()[rank];
            let row0 = rect.y as usize * block;
            let rows = rect.h as usize * block;
            let col0 = rect.x as usize * block;
            let cols = rect.w as usize * block;
            let mut c = vec![0.0; rows * cols];
            // Sim-backend compute model for one rectangle update:
            // 2·rows·cols·block flops at a nominal 1 Gflop/s.
            let update_seconds = 2.0 * rows as f64 * cols as f64 * block as f64 / 1e9;

            let mut b_piece = vec![0.0; block * cols];
            let mut update = |c: &mut [f64], pivot: &[f64]| {
                if rows == 0 || cols == 0 {
                    return;
                }
                let (a_col, b_row) = pivot.split_at(n * block);
                let a_piece = &a_col[row0 * block..(row0 + rows) * block];
                for i in 0..block {
                    b_piece[i * cols..(i + 1) * cols]
                        .copy_from_slice(&b_row[i * n + col0..i * n + col0 + cols]);
                }
                gemm_blocked(rows, cols, block, a_piece, &b_piece, c);
            };

            match mode {
                OverlapMode::Blocking => {
                    for k in 0..n_blocks {
                        let owner = k % p;
                        let pivot = comm
                            .bcast::<Vec<f64>>(
                                owner,
                                (rank == owner).then(|| pack_pivot(k)).as_ref(),
                            )
                            .map_err(comm_err)?;
                        comm.advance_compute(update_seconds).map_err(comm_err)?;
                        update(&mut c, &pivot);
                    }
                }
                OverlapMode::Overlapped => {
                    // Double buffering: pivot k+1 is in flight while
                    // pivot k is being consumed.
                    let post = |k: usize| {
                        let owner = k % p;
                        comm.ibcast::<Vec<f64>>(
                            owner,
                            (rank == owner).then(|| pack_pivot(k)).as_ref(),
                        )
                        .map_err(comm_err)
                    };
                    let mut inflight = post(0)?;
                    for k in 0..n_blocks {
                        let pivot = inflight.wait().map_err(comm_err)?;
                        if k + 1 < n_blocks {
                            inflight = post(k + 1)?;
                            comm.advance_compute(update_seconds).map_err(comm_err)?;
                            update(&mut c, &pivot);
                        } else {
                            comm.advance_compute(update_seconds).map_err(comm_err)?;
                            update(&mut c, &pivot);
                            break;
                        }
                    }
                }
            }
            Ok((rank, c))
        });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut c = vec![0.0; n * n];
    for result in results {
        let (rank, data) = result?;
        let rect = partition.rects()[rank];
        let row0 = rect.y as usize * block;
        let rows = rect.h as usize * block;
        let col0 = rect.x as usize * block;
        let cols = rect.w as usize * block;
        for r in 0..rows {
            c[(row0 + r) * n + col0..(row0 + r) * n + col0 + cols]
                .copy_from_slice(&data[r * cols..(r + 1) * cols]);
        }
    }
    Ok(BcastRun {
        product: DenseMatrix {
            rows: n,
            cols: n,
            data: c,
        },
        virtual_time: handle.virtual_time(),
        wall_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_matrix;
    use fupermod_core::model::AkimaModel;
    use fupermod_core::partition::{EvenPartitioner, NumericalPartitioner};
    use fupermod_core::Precision;

    fn serial_product(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let n = a.rows;
        let mut c = vec![0.0; n * n];
        gemm_blocked(n, n, n, &a.data, &b.data, &mut c);
        DenseMatrix {
            rows: n,
            cols: n,
            data: c,
        }
    }

    #[test]
    fn threaded_matmul_matches_serial() {
        let n = 48;
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        // 4 processes with skewed areas: 6×6 = 36 blocks total.
        let c = run_threaded(&a, &b, 8, &[18, 9, 6, 3]).unwrap();
        let reference = serial_product(&a, &b);
        for (x, y) in c.data.iter().zip(&reference.data) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn threaded_matmul_handles_zero_area_process() {
        let n = 32;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        let c = run_threaded(&a, &b, 8, &[8, 0, 8]).unwrap();
        let reference = serial_product(&a, &b);
        for (x, y) in c.data.iter().zip(&reference.data) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn threaded_matmul_rejects_bad_block() {
        let a = random_matrix(10, 10, 1);
        let b = random_matrix(10, 10, 2);
        assert!(run_threaded(&a, &b, 3, &[4]).is_err());
    }

    #[test]
    fn simulate_produces_positive_times() {
        let platform = Platform::two_speed(2, 2, 9);
        let cfg = MatMulConfig {
            n_blocks: 24,
            block: 16,
        };
        let areas = vec![144; 4]; // even split of 576 blocks
        let report = simulate(&platform, &areas, &cfg).unwrap();
        assert!(report.total_time > 0.0);
        assert!(report.comm_seconds > 0.0);
        assert_eq!(report.partition.rects().len(), 4);
    }

    #[test]
    fn traced_simulation_matches_untraced_and_covers_timeline() {
        use fupermod_platform::Activity;
        let platform = Platform::two_speed(1, 1, 33);
        let cfg = MatMulConfig {
            n_blocks: 16,
            block: 16,
        };
        let areas = vec![160, 96];
        let plain = simulate(&platform, &areas, &cfg).unwrap();
        let (traced, trace) = simulate_traced(&platform, &areas, &cfg).unwrap();
        assert_eq!(plain.total_time, traced.total_time);
        assert!(!trace.is_empty());
        // Compute time recorded for both ranks; intervals within range.
        for rank in 0..2 {
            assert!(trace
                .iter()
                .any(|e| e.rank == rank && e.activity == Activity::Compute));
        }
        for e in &trace {
            assert!(e.end > e.start && e.end <= traced.total_time + 1e-12);
        }
    }

    #[test]
    fn model_based_partition_beats_even_on_heterogeneous_platform() {
        let platform = Platform::two_speed(2, 2, 17);
        let profile = WorkloadProfile::matrix_update(16);
        let cfg = MatMulConfig {
            n_blocks: 48,
            block: 16,
        };
        let total = cfg.n_blocks * cfg.n_blocks;

        let models: Vec<AkimaModel> = build_device_models(
            &platform,
            &profile,
            &[64, 256, 1024, 2304],
            &Precision::default(),
        )
        .unwrap();
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();

        let fpm_areas = partition_areas(&NumericalPartitioner::default(), cfg.n_blocks, &refs)
            .unwrap();
        let even_areas = EvenPartitioner
            .partition(total, &refs)
            .unwrap()
            .sizes();

        let fpm = simulate(&platform, &fpm_areas, &cfg).unwrap();
        let even = simulate(&platform, &even_areas, &cfg).unwrap();
        assert!(
            fpm.total_time < even.total_time,
            "FPM {} should beat even {}",
            fpm.total_time,
            even.total_time
        );
    }

    #[test]
    fn threaded_matmul_with_gemm_threads_is_bit_identical() {
        let n = 48;
        let a = random_matrix(n, n, 5);
        let b = random_matrix(n, n, 6);
        let reference = run_threaded(&a, &b, 8, &[18, 9, 6, 3]).unwrap();
        for threads in [0, 2, 4] {
            let c = run_threaded_with(&a, &b, 8, &[18, 9, 6, 3], threads).unwrap();
            assert_eq!(c.data, reference.data, "gemm_threads={threads}");
        }
    }

    #[test]
    fn bcast_matmul_matches_serial_in_both_modes() {
        let n = 48;
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let reference = serial_product(&a, &b);
        for mode in [OverlapMode::Blocking, OverlapMode::Overlapped] {
            let run = run_bcast(&a, &b, 8, &[18, 9, 6, 3], RuntimeConfig::thread(), mode)
                .unwrap();
            for (x, y) in run.product.data.iter().zip(&reference.data) {
                assert!((x - y).abs() < 1e-9, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn pipelined_bcast_matmul_is_bit_identical_to_blocking() {
        use fupermod_platform::comm::LinkModel;
        let n = 48;
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let configs: [fn() -> RuntimeConfig; 2] = [
            RuntimeConfig::thread,
            || RuntimeConfig::sim(4, LinkModel::ethernet()),
        ];
        for config in configs {
            let blocking =
                run_bcast(&a, &b, 8, &[18, 9, 6, 3], config(), OverlapMode::Blocking).unwrap();
            let pipelined =
                run_bcast(&a, &b, 8, &[18, 9, 6, 3], config(), OverlapMode::Overlapped).unwrap();
            assert_eq!(
                matrix_checksum(&blocking.product),
                matrix_checksum(&pipelined.product)
            );
            assert_eq!(blocking.product.data, pipelined.product.data);
        }
    }

    #[test]
    fn pipelined_bcast_matmul_wins_virtual_time_on_sim() {
        use fupermod_platform::comm::LinkModel;
        let n = 64;
        let a = random_matrix(n, n, 11);
        let b = random_matrix(n, n, 12);
        let run = |mode| {
            run_bcast(
                &a,
                &b,
                8,
                &[32, 16, 8, 8],
                RuntimeConfig::sim(4, LinkModel::ethernet()),
                mode,
            )
            .unwrap()
            .virtual_time
            .unwrap()
        };
        let blocking = run(OverlapMode::Blocking);
        let pipelined = run(OverlapMode::Overlapped);
        assert!(
            pipelined < blocking,
            "pipelined {pipelined} !< blocking {blocking}"
        );
    }

    #[test]
    fn parallel_device_model_build_matches_serial() {
        use fupermod_core::trace::{null_sink, MemorySink};
        let platform = Platform::two_speed(2, 2, 21);
        let profile = WorkloadProfile::matrix_update(16);
        let sizes = [16u64, 64, 256, 1024];
        let precision = Precision::quick();

        let serial_sink = MemorySink::new();
        let serial: Vec<AkimaModel> = build_device_models_with(
            &platform, &profile, &sizes, &precision, &serial_sink, 1,
        )
        .unwrap();
        for parallelism in [2, 4, 0] {
            let par_sink = MemorySink::new();
            let parallel: Vec<AkimaModel> = build_device_models_with(
                &platform, &profile, &sizes, &precision, &par_sink, parallelism,
            )
            .unwrap();
            assert_eq!(serial, parallel, "parallelism={parallelism}");
            assert_eq!(serial_sink.events(), par_sink.events());
        }
        // The untraced/unparallel wrappers agree too.
        let wrapped: Vec<AkimaModel> =
            build_device_models(&platform, &profile, &sizes, &precision).unwrap();
        assert_eq!(serial, wrapped);
        let traced: Vec<AkimaModel> = build_device_models_traced(
            &platform, &profile, &sizes, &precision, null_sink(),
        )
        .unwrap();
        assert_eq!(serial, traced);
    }

    #[test]
    fn build_device_models_collects_all_sizes() {
        let platform = Platform::uniform(2, 5);
        let profile = WorkloadProfile::matrix_update(16);
        let models: Vec<AkimaModel> =
            build_device_models(&platform, &profile, &[10, 100, 500], &Precision::quick())
                .unwrap();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert_eq!(m.points().len(), 3);
        }
    }
}
