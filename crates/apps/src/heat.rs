//! Explicit 2D heat diffusion with dynamic load balancing — the
//! "computer simulation (e.g. computational fluid dynamics)" class of
//! data-parallel application from the paper's introduction.
//!
//! The grid is distributed by row blocks; one computation unit is one
//! grid row of a Jacobi-style 5-point stencil sweep. Unlike the linear
//! solver, this application exchanges only *halo rows* with neighbours
//! each iteration (not an all-gather), so its communication pattern is
//! nearest-neighbour — the other canonical pattern of the paper's
//! target applications.
//!
//! Math is real (explicit Euler on the heat equation, verified against
//! the exact decay rate of a sine mode); time is virtual, from the
//! device models.

use std::sync::Arc;

use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::Partitioner;
use fupermod_core::trace::{NullSink, TraceSink};
use fupermod_core::CoreError;
use fupermod_platform::comm::SimComm;
use fupermod_platform::{Platform, WorkloadProfile};

/// Configuration of a heat-diffusion run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatConfig {
    /// Grid width (columns). Rows are the distributed dimension.
    pub cols: usize,
    /// Diffusion number `α·Δt/Δx²`; must be `≤ 0.25` for 2D stability.
    pub nu: f64,
    /// Number of time steps.
    pub steps: usize,
    /// Load-balance tolerance.
    pub eps_balance: f64,
    /// Whether to rebalance between steps.
    pub balance: bool,
}

impl Default for HeatConfig {
    fn default() -> Self {
        Self {
            cols: 256,
            nu: 0.2,
            steps: 50,
            eps_balance: 0.05,
            balance: true,
        }
    }
}

/// Per-step record.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// 1-based step index.
    pub step: usize,
    /// Rows per process during this step.
    pub sizes: Vec<u64>,
    /// Per-process compute times (simulated seconds).
    pub compute_times: Vec<f64>,
    /// Rows that changed owner after this step.
    pub rows_moved: u64,
}

/// Result of a heat-diffusion run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatReport {
    /// Final grid, row-major `rows × cols`.
    pub grid: Vec<f64>,
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Total simulated wall time.
    pub makespan: f64,
}

/// One stencil sweep over rows `[row0, row0 + count)` of the `rows×cols`
/// grid (Dirichlet zero boundaries), writing into `out` (same shape).
fn sweep_rows(
    grid: &[f64],
    rows: usize,
    cols: usize,
    nu: f64,
    row0: usize,
    count: usize,
    out: &mut [f64],
) {
    for r in row0..row0 + count {
        for c in 0..cols {
            let idx = r * cols + c;
            let up = if r > 0 { grid[idx - cols] } else { 0.0 };
            let down = if r + 1 < rows { grid[idx + cols] } else { 0.0 };
            let left = if c > 0 { grid[idx - 1] } else { 0.0 };
            let right = if c + 1 < cols { grid[idx + 1] } else { 0.0 };
            out[idx] = grid[idx] + nu * (up + down + left + right - 4.0 * grid[idx]);
        }
    }
}

/// Runs the simulation over the devices of `platform`, starting from
/// `initial` (row-major, `rows × cfg.cols`), optionally balancing row
/// ownership between steps with `partitioner`.
///
/// # Errors
///
/// Propagates model/partitioning errors.
///
/// # Panics
///
/// Panics if the grid shape is inconsistent, fewer rows than processes,
/// or `cfg.nu` is unstable (`> 0.25`).
pub fn run(
    initial: &[f64],
    rows: usize,
    platform: &Platform,
    partitioner: Box<dyn Partitioner>,
    cfg: &HeatConfig,
) -> Result<HeatReport, CoreError> {
    run_traced(initial, rows, platform, partitioner, cfg, Arc::new(NullSink))
}

/// Like [`run`], additionally routing the dynamic context's structured
/// events (model updates, partition steps, convergence) to `sink`.
///
/// # Errors
///
/// Exactly those of [`run`].
///
/// # Panics
///
/// Exactly those of [`run`].
pub fn run_traced(
    initial: &[f64],
    rows: usize,
    platform: &Platform,
    partitioner: Box<dyn Partitioner>,
    cfg: &HeatConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<HeatReport, CoreError> {
    assert_eq!(initial.len(), rows * cfg.cols, "grid shape mismatch");
    assert!(cfg.nu > 0.0 && cfg.nu <= 0.25, "unstable diffusion number");
    let p = platform.size();
    assert!(rows >= p, "need at least one row per process");

    // One unit = one row of 5-point stencil: ~6 flops per cell.
    let profile = WorkloadProfile::linear(
        6.0 * cfg.cols as f64,
        8.0 * cfg.cols as f64,
        8.0 * cfg.cols as f64,
        0.0,
    );
    let models: Vec<Box<dyn Model>> = (0..p)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(partitioner, models, rows as u64, cfg.eps_balance)
        .with_trace(sink);
    let mut comm = SimComm::new(p, platform.link());
    let halo_bytes = 8.0 * cfg.cols as f64;
    let bytes_per_row = 8.0 * cfg.cols as f64;

    let mut grid = initial.to_vec();
    let mut next = vec![0.0; grid.len()];
    let mut records = Vec::new();
    let mut balancing_done = !cfg.balance;

    for step in 1..=cfg.steps {
        let sizes = ctx.dist().sizes();

        // Halo exchange: each interior boundary costs one row each way.
        for rank in 0..p {
            let neighbours = usize::from(rank > 0) + usize::from(rank + 1 < p);
            comm.advance(rank, neighbours as f64 * platform.link().cost(halo_bytes));
        }

        // Real compute, virtual time.
        let mut offset = 0usize;
        let mut compute_times = Vec::with_capacity(p);
        for (rank, &d) in sizes.iter().enumerate() {
            let count = d as usize;
            if count > 0 {
                sweep_rows(&grid, rows, cfg.cols, cfg.nu, offset, count, &mut next);
            }
            let t = platform.device(rank).measured_time(d, &profile, step as u64);
            comm.advance(rank, t);
            compute_times.push(t);
            offset += count;
        }
        std::mem::swap(&mut grid, &mut next);
        comm.barrier();

        // Balance.
        let mut rows_moved = 0;
        if !balancing_done {
            let old_sizes = sizes.clone();
            let step_result = ctx.balance_iterate(&compute_times)?;
            rows_moved = step_result.units_moved;
            if rows_moved > 0 {
                comm.redistribute(&old_sizes, &ctx.dist().sizes(), bytes_per_row)?;
            }
            if step_result.converged {
                balancing_done = true;
            }
        }

        records.push(StepRecord {
            step,
            sizes,
            compute_times,
            rows_moved,
        });
    }

    Ok(HeatReport {
        grid,
        steps: records,
        makespan: comm.max_time(),
    })
}

/// The initial condition `sin(πx)·sin(πy)` sampled on the interior of
/// an `rows × cols` grid — the fundamental mode, whose exact decay
/// under the discrete operator is known in closed form (used by the
/// correctness tests).
pub fn sine_mode(rows: usize, cols: usize) -> Vec<f64> {
    let mut grid = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let x = (r + 1) as f64 / (rows + 1) as f64;
            let y = (c + 1) as f64 / (cols + 1) as f64;
            grid[r * cols + c] =
                (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
        }
    }
    grid
}

/// Exact per-step decay factor of [`sine_mode`] under the discrete
/// 5-point operator with diffusion number `nu` on an `rows × cols`
/// interior grid.
pub fn sine_mode_decay(rows: usize, cols: usize, nu: f64) -> f64 {
    let lx = 2.0 * (std::f64::consts::PI / (2.0 * (rows + 1) as f64)).sin().powi(2);
    let ly = 2.0 * (std::f64::consts::PI / (2.0 * (cols + 1) as f64)).sin().powi(2);
    1.0 - 2.0 * nu * (lx + ly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::partition::GeometricPartitioner;

    #[test]
    fn sine_mode_decays_at_the_exact_rate() {
        let (rows, cols) = (24, 24);
        let cfg = HeatConfig {
            cols,
            nu: 0.2,
            steps: 10,
            eps_balance: 0.05,
            balance: true,
        };
        let initial = sine_mode(rows, cols);
        let platform = Platform::two_speed(1, 1, 3);
        let report = run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &cfg,
        )
        .unwrap();
        let decay = sine_mode_decay(rows, cols, cfg.nu).powi(cfg.steps as i32);
        for (got, init) in report.grid.iter().zip(&initial) {
            assert!(
                (got - init * decay).abs() < 1e-10,
                "decay mismatch: {got} vs {}",
                init * decay
            );
        }
    }

    #[test]
    fn balancing_does_not_change_the_physics() {
        let (rows, cols) = (32, 16);
        let initial = sine_mode(rows, cols);
        let platform = Platform::two_speed(1, 2, 5);
        let mk = |balance: bool| {
            run(
                &initial,
                rows,
                &platform,
                Box::new(GeometricPartitioner::default()),
                &HeatConfig {
                    cols,
                    nu: 0.25,
                    steps: 20,
                    eps_balance: 0.05,
                    balance,
                },
            )
            .unwrap()
        };
        let balanced = mk(true);
        let fixed = mk(false);
        for (a, b) in balanced.grid.iter().zip(&fixed.grid) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rows_converge_toward_speed_proportional_shares() {
        let (rows, cols) = (400, 512);
        let initial = sine_mode(rows, cols);
        let platform = Platform::two_speed(1, 1, 7);
        let report = run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.2,
                steps: 25,
                eps_balance: 0.05,
                balance: true,
            },
        )
        .unwrap();
        let last = report.steps.last().unwrap();
        assert!(
            last.sizes[0] > last.sizes[1],
            "fast device should own more rows: {:?}",
            last.sizes
        );
        for rec in &report.steps {
            assert_eq!(rec.sizes.iter().sum::<u64>(), rows as u64);
        }
    }

    #[test]
    fn grid_stays_bounded_and_positive_mode_stays_positive() {
        let (rows, cols) = (20, 20);
        let initial = sine_mode(rows, cols);
        let platform = Platform::uniform(2, 1);
        let report = run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.25,
                steps: 40,
                eps_balance: 0.05,
                balance: false,
            },
        )
        .unwrap();
        for v in &report.grid {
            assert!(*v >= -1e-12 && *v <= 1.0, "out of range: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_unstable_diffusion_number() {
        let initial = sine_mode(4, 4);
        let platform = Platform::uniform(1, 1);
        let _ = run(
            &initial,
            4,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols: 4,
                nu: 0.3,
                steps: 1,
                eps_balance: 0.05,
                balance: false,
            },
        );
    }
}
