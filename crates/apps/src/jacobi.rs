//! The Jacobi method with dynamic load balancing (paper §4.4, Fig. 4).
//!
//! Matrix rows and vector entries are distributed between processes;
//! each iteration every process sweeps its rows, the updated solution
//! parts are all-gathered, and the per-iteration compute times feed a
//! [`DynamicContext`] that redistributes rows before the next
//! iteration — exactly the source-code pattern the paper lists.
//!
//! The math is computed for real (the solver converges and is checked
//! against the known solution); *time* is virtual: each process's
//! compute time comes from its device model on a synthetic
//! heterogeneous platform, so balancing behaviour at Grid'5000-like
//! heterogeneity is reproducible on any machine.

use std::sync::Arc;

use fupermod_core::dynamic::DynamicContext;
use fupermod_core::model::{Model, PiecewiseModel};
use fupermod_core::partition::{Distribution, Partitioner};
use fupermod_core::trace::{NullSink, TraceSink};
use fupermod_core::CoreError;
use fupermod_kernels::jacobi::jacobi_sweep;
use fupermod_platform::comm::SimComm;
use fupermod_platform::{Platform, WorkloadProfile};

use crate::workload::LinearSystem;

/// Configuration of a balanced Jacobi run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiConfig {
    /// Convergence tolerance on `‖x_{k+1} − x_k‖∞`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Load-balance tolerance `eps` passed to the dynamic context.
    pub eps_balance: f64,
    /// Whether to rebalance at all (off = fixed even distribution, the
    /// homogeneous baseline).
    pub balance: bool,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 200,
            eps_balance: 0.05,
            balance: true,
        }
    }
}

/// Per-iteration record of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (1-based, like the paper's Fig. 4).
    pub iteration: usize,
    /// Row counts per process *during* this iteration.
    pub sizes: Vec<u64>,
    /// Per-process compute time of this iteration, in simulated
    /// seconds.
    pub compute_times: Vec<f64>,
    /// Parallel time of the iteration (max compute + communication).
    pub iteration_time: f64,
    /// Rows that changed owner after this iteration's balancing step.
    pub rows_moved: u64,
    /// Solution change `‖x_{k+1} − x_k‖∞` at this iteration.
    pub error: f64,
}

/// Result of a balanced Jacobi run.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiReport {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Whether `tol` was reached within the iteration cap.
    pub converged: bool,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Total simulated wall time, including redistribution costs.
    pub makespan: f64,
}

/// Runs the Jacobi method on `system` over the devices of `platform`,
/// with per-iteration dynamic load balancing driven by `partitioner`
/// (when `cfg.balance` is set).
///
/// # Errors
///
/// Propagates model/partitioning errors; solver-side math is
/// deterministic and cannot fail on a diagonally dominant system.
///
/// # Panics
///
/// Panics if the system is smaller than the process count.
pub fn run(
    system: &LinearSystem,
    platform: &Platform,
    partitioner: Box<dyn Partitioner>,
    cfg: &JacobiConfig,
) -> Result<JacobiReport, CoreError> {
    run_traced(system, platform, partitioner, cfg, Arc::new(NullSink))
}

/// Like [`run`], additionally routing the dynamic context's structured
/// events (model updates, partition steps, convergence) to `sink`.
///
/// # Errors
///
/// Exactly those of [`run`].
///
/// # Panics
///
/// Panics if the system is smaller than the process count.
pub fn run_traced(
    system: &LinearSystem,
    platform: &Platform,
    partitioner: Box<dyn Partitioner>,
    cfg: &JacobiConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<JacobiReport, CoreError> {
    let n = system.b.len();
    let p = platform.size();
    assert!(n >= p, "need at least one row per process");

    let profile = WorkloadProfile::jacobi_sweep(n);
    let models: Vec<Box<dyn Model>> = (0..p)
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(partitioner, models, n as u64, cfg.eps_balance)
        .with_trace(sink);
    let mut comm = SimComm::new(p, platform.link());
    // One row weighs its matrix band plus vector entries.
    let bytes_per_row = 8.0 * (n as f64 + 3.0);

    let mut x = vec![0.0; n];
    let mut records = Vec::new();
    let mut converged = false;
    let mut balancing_done = !cfg.balance;

    for iteration in 1..=cfg.max_iters {
        let sizes = ctx.dist().sizes();

        // --- real computation: one sweep, row ranges per process ---
        let mut x_new = vec![0.0; n];
        let mut offset = 0usize;
        let mut compute_times = Vec::with_capacity(p);
        let t_before = comm.max_time();
        for (rank, &d) in sizes.iter().enumerate() {
            let rows = d as usize;
            if rows > 0 {
                let band = &system.a.data[offset * n..(offset + rows) * n];
                let rhs = &system.b[offset..offset + rows];
                jacobi_sweep(band, rhs, &x, offset, &mut x_new[offset..offset + rows]);
            }
            // Virtual time for those rows on this device.
            let t = platform
                .device(rank)
                .measured_time(d, &profile, iteration as u64);
            comm.advance(rank, t);
            compute_times.push(t);
            offset += rows;
        }

        // --- exchange updated parts (allgatherv) ---
        let contrib: Vec<f64> = sizes.iter().map(|&d| d as f64 * 8.0).collect();
        comm.allgatherv(&contrib)?;
        let iteration_time = comm.max_time() - t_before;

        // --- convergence ---
        let error = x
            .iter()
            .zip(&x_new)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        x = x_new;

        // --- load balancing ---
        let mut rows_moved = 0;
        if !balancing_done {
            let old_sizes = sizes.clone();
            let step = ctx.balance_iterate(&compute_times)?;
            rows_moved = step.units_moved;
            if rows_moved > 0 {
                comm.redistribute(&old_sizes, &ctx.dist().sizes(), bytes_per_row)?;
            }
            if step.converged {
                balancing_done = true;
            }
        }

        records.push(IterationRecord {
            iteration,
            sizes,
            compute_times,
            iteration_time,
            rows_moved,
            error,
        });

        if error < cfg.tol && iteration > 1 {
            converged = true;
            break;
        }
    }

    Ok(JacobiReport {
        x,
        converged,
        iterations: records,
        makespan: comm.max_time(),
    })
}

/// Convenience: the even-distribution baseline (no balancing), used as
/// the control in the experiments.
///
/// # Errors
///
/// Propagates [`run`]'s errors.
pub fn run_even(
    system: &LinearSystem,
    platform: &Platform,
    cfg: &JacobiConfig,
) -> Result<JacobiReport, CoreError> {
    use fupermod_core::partition::EvenPartitioner;
    let mut cfg = *cfg;
    cfg.balance = false;
    run(system, platform, Box::new(EvenPartitioner), &cfg)
}

/// Maximum relative imbalance of the last `k` iterations of a report —
/// the quantity Fig. 4 shows shrinking.
pub fn tail_imbalance(report: &JacobiReport, k: usize) -> f64 {
    report
        .iterations
        .iter()
        .rev()
        .take(k)
        .map(|r| Distribution::imbalance_of(&r.compute_times))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::dominant_system;
    use fupermod_core::partition::GeometricPartitioner;

    fn residual(system: &LinearSystem, x: &[f64]) -> f64 {
        let n = system.b.len();
        (0..n)
            .map(|i| {
                let lhs: f64 = (0..n).map(|j| system.a.at(i, j) * x[j]).sum();
                (lhs - system.b[i]).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn balanced_run_converges_to_the_true_solution() {
        let system = dominant_system(120, 7);
        let platform = Platform::two_speed(2, 2, 7);
        let report = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &JacobiConfig::default(),
        )
        .unwrap();
        assert!(report.converged, "did not converge");
        assert!(residual(&system, &report.x) < 1e-5);
        for (got, want) in report.x.iter().zip(&system.x_true) {
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn balancing_reduces_imbalance() {
        let system = dominant_system(200, 13);
        let platform = Platform::two_speed(1, 3, 13);
        let report = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &JacobiConfig::default(),
        )
        .unwrap();
        let first = Distribution::imbalance_of(&report.iterations[0].compute_times);
        let last = tail_imbalance(&report, 3);
        assert!(
            last < first * 0.6,
            "imbalance did not shrink: first {first}, tail {last}"
        );
    }

    #[test]
    fn balanced_beats_even_in_makespan() {
        // The paper's Fig. 4 setting: per-iteration compute dominates
        // (wide rows, fast interconnect) and the application iterates
        // long enough to amortise the one-time redistribution. Random
        // dominant systems converge in ~10 sweeps, so the comparison
        // runs a fixed iteration count instead of to convergence.
        use fupermod_platform::comm::LinkModel;
        let system = dominant_system(1200, 23);
        let platform = Platform::two_speed(1, 3, 23).with_link(LinkModel::infiniband());
        let cfg = JacobiConfig {
            tol: 0.0, // never "converged": run all iterations
            max_iters: 40,
            eps_balance: 0.05,
            balance: true,
        };
        let balanced = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &cfg,
        )
        .unwrap();
        let even = run_even(&system, &platform, &cfg).unwrap();
        assert_eq!(balanced.iterations.len(), even.iterations.len());
        assert!(
            balanced.makespan < even.makespan,
            "balanced {} vs even {}",
            balanced.makespan,
            even.makespan
        );
    }

    #[test]
    fn row_counts_converge_to_speed_proportional() {
        let system = dominant_system(160, 3);
        let platform = Platform::two_speed(1, 1, 3);
        let report = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &JacobiConfig::default(),
        )
        .unwrap();
        let last = report.iterations.last().unwrap();
        // The fast device ends with strictly more rows than the slow one.
        assert!(
            last.sizes[0] > last.sizes[1],
            "final sizes {:?}",
            last.sizes
        );
        // Row conservation every iteration.
        for rec in &report.iterations {
            assert_eq!(rec.sizes.iter().sum::<u64>(), 160);
        }
    }

    #[test]
    fn even_baseline_keeps_distribution_fixed() {
        let system = dominant_system(96, 5);
        let platform = Platform::two_speed(2, 2, 5);
        let report = run_even(&system, &platform, &JacobiConfig::default()).unwrap();
        for rec in &report.iterations {
            assert_eq!(rec.sizes, vec![24, 24, 24, 24]);
            assert_eq!(rec.rows_moved, 0);
        }
        assert!(report.converged);
    }

    #[test]
    fn solution_error_decreases_monotonically_late() {
        let system = dominant_system(80, 31);
        let platform = Platform::uniform(4, 31);
        let report = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &JacobiConfig::default(),
        )
        .unwrap();
        let errs: Vec<f64> = report.iterations.iter().map(|r| r.error).collect();
        // Strict dominance → asymptotic contraction; check the tail.
        for w in errs.windows(2).skip(2) {
            assert!(w[1] <= w[0] * 1.01, "errors not contracting: {errs:?}");
        }
    }
}
