//! Workload profiles: how computation units map to resource demands.
//!
//! The paper's key abstraction is the *computation unit*: a fixed chunk
//! of the application's core computation (one `b×b` block update for
//! matrix multiplication, one matrix row for Jacobi). A device's time to
//! process `d` units depends not only on the flop count but on the
//! memory footprint and, for accelerators, the bytes shipped over the
//! bus. A [`WorkloadProfile`] captures that mapping for one application
//! kernel so device models can answer "how long would *this* kernel
//! take for `d` units".

use serde::{Deserialize, Serialize};

/// Resource demands of `d` computation units of some application kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Peak resident working-set size in bytes.
    pub resident_bytes: f64,
    /// Bytes moved to/from an accelerator (or between kernel buffers)
    /// per execution of the kernel.
    pub transfer_bytes: f64,
}

/// Maps a problem size in computation units to resource [`Demand`]s.
///
/// # Examples
///
/// ```
/// use fupermod_platform::WorkloadProfile;
///
/// // The paper's matmul kernel with blocking factor 16: one unit is a
/// // 16x16 block update.
/// let profile = WorkloadProfile::matrix_update(16);
/// let demand = profile.demand(100);
/// assert!(demand.flops > 0.0);
/// assert!(demand.resident_bytes > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    name: String,
    kind: ProfileKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ProfileKind {
    /// The paper's matrix-multiplication kernel (Fig. 1(b)): `d` units
    /// are a near-square `m×n` arrangement of `b×b` blocks of the three
    /// submatrices, updated by one GEMM call with pivot buffers.
    MatrixUpdate { block: usize },
    /// One unit is one row of an `N`-column Jacobi system (matrix row +
    /// vectors).
    JacobiSweep { columns: usize },
    /// Fully parametric linear profile for synthetic studies.
    Linear {
        flops_per_unit: f64,
        bytes_per_unit: f64,
        transfer_per_unit: f64,
        fixed_bytes: f64,
    },
}

impl WorkloadProfile {
    /// Profile of the paper's matmul computation unit: the update of one
    /// `block×block` block of `C` with parts of the pivot column/row.
    /// Complexity per unit is `2·b³` flops; `d` units keep
    /// `3·d·b²` matrix elements resident plus the two pivot buffers
    /// (`≈ 2·√d·b²` elements), all in `f64`.
    pub fn matrix_update(block: usize) -> Self {
        assert!(block > 0, "blocking factor must be positive");
        Self {
            name: format!("matrix-update(b={block})"),
            kind: ProfileKind::MatrixUpdate { block },
        }
    }

    /// Profile of one Jacobi row sweep unit over a system with the given
    /// number of columns: `2·columns` flops per unit, `(columns + 3)`
    /// resident `f64`s per unit (matrix row plus solution/rhs entries),
    /// and the freshly updated row communicated each iteration.
    pub fn jacobi_sweep(columns: usize) -> Self {
        assert!(columns > 0, "column count must be positive");
        Self {
            name: format!("jacobi-sweep(n={columns})"),
            kind: ProfileKind::JacobiSweep { columns },
        }
    }

    /// Fully parametric linear profile: `flops_per_unit` flops,
    /// `bytes_per_unit` resident bytes (plus `fixed_bytes`), and
    /// `transfer_per_unit` transferred bytes per unit.
    pub fn linear(
        flops_per_unit: f64,
        bytes_per_unit: f64,
        transfer_per_unit: f64,
        fixed_bytes: f64,
    ) -> Self {
        assert!(
            flops_per_unit > 0.0 && bytes_per_unit >= 0.0 && transfer_per_unit >= 0.0,
            "profile parameters must be non-negative with positive flops"
        );
        Self {
            name: "linear".to_owned(),
            kind: ProfileKind::Linear {
                flops_per_unit,
                bytes_per_unit,
                transfer_per_unit,
                fixed_bytes,
            },
        }
    }

    /// Human-readable profile name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resource demands for `d` computation units.
    pub fn demand(&self, d: u64) -> Demand {
        let d = d as f64;
        match self.kind {
            ProfileKind::MatrixUpdate { block } => {
                let b = block as f64;
                let elems = 3.0 * d * b * b;
                let pivot = 2.0 * d.sqrt().ceil() * b * b;
                Demand {
                    flops: 2.0 * d * b * b * b,
                    resident_bytes: 8.0 * (elems + pivot),
                    transfer_bytes: 8.0 * (d * b * b + pivot),
                }
            }
            ProfileKind::JacobiSweep { columns } => {
                let n = columns as f64;
                Demand {
                    flops: 2.0 * d * n,
                    resident_bytes: 8.0 * (d * (n + 3.0) + 2.0 * n),
                    transfer_bytes: 8.0 * d,
                }
            }
            ProfileKind::Linear {
                flops_per_unit,
                bytes_per_unit,
                transfer_per_unit,
                fixed_bytes,
            } => Demand {
                flops: flops_per_unit * d,
                resident_bytes: bytes_per_unit * d + fixed_bytes,
                transfer_bytes: transfer_per_unit * d,
            },
        }
    }

    /// Flops for `d` units — the kernel "complexity" in the paper's
    /// sense, used to convert time to speed.
    pub fn complexity(&self, d: u64) -> f64 {
        self.demand(d).flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_update_scales_cubically_in_block() {
        let small = WorkloadProfile::matrix_update(8).demand(10);
        let large = WorkloadProfile::matrix_update(16).demand(10);
        assert!((large.flops / small.flops - 8.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_update_flops_formula() {
        // 2 * d * b^3 with d = 4, b = 16.
        let d = WorkloadProfile::matrix_update(16).demand(4);
        assert_eq!(d.flops, 2.0 * 4.0 * 16.0f64.powi(3));
    }

    #[test]
    fn jacobi_demand_is_linear_in_rows() {
        let p = WorkloadProfile::jacobi_sweep(1000);
        let d1 = p.demand(10);
        let d2 = p.demand(20);
        assert!((d2.flops - 2.0 * d1.flops).abs() < 1e-9);
    }

    #[test]
    fn linear_profile_matches_parameters() {
        let p = WorkloadProfile::linear(100.0, 8.0, 2.0, 64.0);
        let d = p.demand(5);
        assert_eq!(d.flops, 500.0);
        assert_eq!(d.resident_bytes, 104.0);
        assert_eq!(d.transfer_bytes, 10.0);
    }

    #[test]
    fn zero_units_demand_only_fixed_memory() {
        let p = WorkloadProfile::linear(1.0, 1.0, 1.0, 32.0);
        let d = p.demand(0);
        assert_eq!(d.flops, 0.0);
        assert_eq!(d.resident_bytes, 32.0);
    }

    #[test]
    fn complexity_equals_demand_flops() {
        let p = WorkloadProfile::matrix_update(16);
        assert_eq!(p.complexity(123), p.demand(123).flops);
    }

    #[test]
    #[should_panic(expected = "blocking factor")]
    fn rejects_zero_block() {
        let _ = WorkloadProfile::matrix_update(0);
    }
}
