//! Communication substrate.
//!
//! FuPerMod proper is an MPI library; the repro band for this paper
//! flags Rust MPI bindings as the thin spot, so instead of binding MPI
//! this crate provides [`SimComm`] — a *simulated* communicator with
//! one virtual clock per rank and a Hockney (`α + m/β`) link cost
//! model. The heterogeneous experiments run on this: computation
//! advances a rank's clock by the device model's time, communication
//! advances clocks by the link model's cost, and "application
//! execution time" is the maximum clock.
//!
//! *Real* (wall-clock) execution lives in `fupermod-runtime`: the
//! threaded backend (`ThreadedComm`) multiplexes ranks as OS threads
//! in one process, and the TCP backend (`TcpComm`) runs one rank per
//! process over sockets. The old `ThreadComm` shim that used to live
//! here has been removed; port callers to those backends.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Error produced by the communication substrate.
///
/// Historically the per-rank byte-count paths (`allgatherv`,
/// `scatterv`, `gatherv`, `redistribute`) and the in-process
/// point-to-point operations panicked on malformed input or a
/// disconnected peer; they now surface these conditions as typed
/// errors so callers (in particular long-running dynamic-balancing
/// loops) can degrade gracefully instead of poisoning worker threads.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A per-rank vector did not match the communicator size.
    SizeMismatch {
        /// Operation that rejected the vector.
        op: &'static str,
        /// Communicator size (one entry expected per rank).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// A peer hung up: its communicator handle was dropped before the
    /// operation could complete.
    Disconnected {
        /// Operation that observed the hang-up.
        op: &'static str,
        /// Rank of the handle that observed it.
        rank: usize,
    },
    /// A redistribution would create or destroy computation units.
    UnitsNotConserved {
        /// Units held by the old distribution.
        old: u64,
        /// Units held by the new distribution.
        new: u64,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::SizeMismatch { op, expected, got } => write!(
                f,
                "{op}: per-rank vector has {got} entries but the communicator has {expected} ranks"
            ),
            PlatformError::Disconnected { op, rank } => {
                write!(f, "{op}: peer of rank {rank} disconnected")
            }
            PlatformError::UnitsNotConserved { old, new } => write!(
                f,
                "redistribution must conserve units (old total {old}, new total {new})"
            ),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Hockney point-to-point link model: sending `m` bytes costs
/// `latency + m / bandwidth` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message latency `α` in seconds.
    pub latency_sec: f64,
    /// Bandwidth `β` in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkModel {
    /// A link typical of gigabit Ethernet interconnects.
    pub fn ethernet() -> Self {
        Self {
            latency_sec: 50e-6,
            bytes_per_sec: 125e6,
        }
    }

    /// A link typical of InfiniBand-class interconnects.
    pub fn infiniband() -> Self {
        Self {
            latency_sec: 2e-6,
            bytes_per_sec: 5e9,
        }
    }

    /// Transfer cost of `bytes` bytes in seconds.
    pub fn cost(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0, "cannot transfer a negative byte count");
        self.latency_sec + bytes / self.bytes_per_sec
    }
}

/// A two-level interconnect topology: ranks grouped into nodes, with a
/// fast intra-node link and a slower inter-node link — the "complex
/// hierarchy of heterogeneous computing devices" of the paper's target
/// platforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    node_of: Vec<usize>,
    intra: LinkModel,
    inter: LinkModel,
}

impl Topology {
    /// A flat topology: every pair of ranks uses the same link.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn flat(size: usize, link: LinkModel) -> Self {
        assert!(size > 0, "topology needs at least one rank");
        Self {
            node_of: vec![0; size],
            intra: link,
            inter: link,
        }
    }

    /// A two-level topology: `node_of[r]` names the node of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `node_of` is empty.
    pub fn two_level(node_of: Vec<usize>, intra: LinkModel, inter: LinkModel) -> Self {
        assert!(!node_of.is_empty(), "topology needs at least one rank");
        Self {
            node_of,
            intra,
            inter,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.node_of.len()
    }

    /// The link between two ranks (intra-node if co-located).
    pub fn link(&self, a: usize, b: usize) -> LinkModel {
        if self.node_of[a] == self.node_of[b] {
            self.intra
        } else {
            self.inter
        }
    }

    /// The slowest link any pair of ranks might use — the conservative
    /// bound collectives are charged with.
    pub fn worst_link(&self) -> LinkModel {
        let crosses_nodes = self.node_of.iter().any(|&n| n != self.node_of[0]);
        if crosses_nodes {
            self.inter
        } else {
            self.intra
        }
    }

    /// `Some(link)` when every pair of ranks uses the same link model
    /// (a flat topology, a single node, or identical intra/inter
    /// links), `None` otherwise. The uniform-link guarantee is what
    /// lets closed-form schedule charges
    /// ([`SimComm::charge_uniform_ring`]) replace per-hop replay.
    pub fn uniform_link(&self) -> Option<LinkModel> {
        let crosses_nodes = self.node_of.iter().any(|&n| n != self.node_of[0]);
        if !crosses_nodes || self.intra == self.inter {
            Some(self.worst_link())
        } else {
            None
        }
    }
}

/// What a rank was doing during a [`TraceEvent`] interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activity {
    /// Local computation (an [`SimComm::advance`]).
    Compute,
    /// Sending/receiving or waiting inside a communication operation.
    Communication,
    /// Waiting at a barrier.
    Idle,
}

/// One interval of a rank's virtual timeline, recorded when tracing is
/// enabled with [`SimComm::enable_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The rank whose timeline this interval belongs to.
    pub rank: usize,
    /// Interval start, in virtual seconds.
    pub start: f64,
    /// Interval end, in virtual seconds.
    pub end: f64,
    /// What the rank was doing.
    pub activity: Activity,
}

/// Simulated message-passing world with per-rank virtual clocks.
///
/// All operations are driven from a single thread; "time" is virtual.
/// Collective operations have synchronising semantics matching their
/// MPI counterparts. With [`SimComm::enable_trace`] every clock
/// movement is recorded as a [`TraceEvent`], yielding a Gantt-style
/// timeline of the simulated run.
///
/// # Examples
///
/// ```
/// use fupermod_platform::comm::{LinkModel, SimComm};
///
/// let mut comm = SimComm::new(4, LinkModel::ethernet());
/// comm.advance(0, 1.0);      // rank 0 computes for 1 s
/// comm.advance(1, 0.25);
/// comm.barrier();            // everyone waits for rank 0
/// assert_eq!(comm.time(2), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimComm {
    clocks: Vec<f64>,
    topo: Topology,
    comm_seconds: f64,
    trace: Option<Vec<TraceEvent>>,
}

impl SimComm {
    /// Creates a world of `size` ranks on a flat topology, all clocks
    /// at zero.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, link: LinkModel) -> Self {
        Self::with_topology(Topology::flat(size, link))
    }

    /// Creates a world over an explicit [`Topology`].
    pub fn with_topology(topo: Topology) -> Self {
        Self {
            clocks: vec![0.0; topo.size()],
            topo,
            comm_seconds: 0.0,
            trace: None,
        }
    }

    /// Starts recording a [`TraceEvent`] timeline (clears any previous
    /// trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded timeline, empty unless
    /// [`enable_trace`](Self::enable_trace) was called.
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Records one interval of `rank`'s timeline (no-op when tracing is
    /// off or the interval is empty).
    fn note(&mut self, rank: usize, start: f64, end: f64, activity: Activity) {
        if end > start {
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEvent {
                    rank,
                    start,
                    end,
                    activity,
                });
            }
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.clocks.len()
    }

    /// The worst-case link model in force (used for collectives).
    pub fn link(&self) -> LinkModel {
        self.topo.worst_link()
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Virtual time of `rank`.
    pub fn time(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Maximum virtual time over all ranks — the application's makespan.
    pub fn max_time(&self) -> f64 {
        self.clocks.iter().fold(0.0, |m, c| m.max(*c))
    }

    /// Total virtual seconds spent inside communication operations,
    /// summed over ranks (a communication-volume diagnostic).
    pub fn comm_seconds(&self) -> f64 {
        self.comm_seconds
    }

    /// Rank `rank` computes for `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite.
    pub fn advance(&mut self, rank: usize, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be finite and >= 0");
        let before = self.clocks[rank];
        self.clocks[rank] += dt;
        self.note(rank, before, before + dt, Activity::Compute);
    }

    /// Synchronises every rank to the latest clock.
    pub fn barrier(&mut self) {
        let max = self.max_time();
        for r in 0..self.clocks.len() {
            let before = self.clocks[r];
            self.clocks[r] = max;
            self.note(r, before, max, Activity::Idle);
        }
    }

    /// Broadcast of `bytes` bytes from `root` along a binomial tree:
    /// every rank ends at the root's send time plus
    /// `ceil(log2 p)` worst-link costs (and no earlier than its own
    /// clock).
    pub fn bcast(&mut self, root: usize, bytes: f64) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64;
        let arrival = self.clocks[root] + rounds * self.link().cost(bytes);
        for r in 0..p {
            let before = self.clocks[r];
            if self.clocks[r] < arrival {
                self.clocks[r] = arrival;
                if r != root {
                    self.comm_seconds += arrival - before;
                }
                self.note(r, before, arrival, Activity::Communication);
            }
        }
    }

    /// Point-to-point transfer of `bytes` bytes. The receiver cannot
    /// finish before the sender has sent; the sender pays one latency
    /// (eager send).
    pub fn send(&mut self, src: usize, dst: usize, bytes: f64) {
        let ready = self.post_send(src, dst, bytes);
        self.arrive(dst, ready);
    }

    /// Sender half of [`send`](Self::send): charges `src` one link
    /// latency (eager send) and returns the virtual instant at which
    /// the message is ready for delivery at `dst`. Used by nonblocking
    /// sends, which charge the sender at *post* time and let the
    /// receiver complete the transfer later with
    /// [`arrive`](Self::arrive). A self-send charges nothing and is
    /// ready immediately.
    pub fn post_send(&mut self, src: usize, dst: usize, bytes: f64) -> f64 {
        if src == dst {
            return self.clocks[src];
        }
        let link = self.topo.link(src, dst);
        let ready = self.clocks[src] + link.cost(bytes);
        let src_before = self.clocks[src];
        self.clocks[src] += link.latency_sec;
        self.note(
            src,
            src_before,
            src_before + link.latency_sec,
            Activity::Communication,
        );
        ready
    }

    /// Receiver half of [`send`](Self::send): delivers a message that
    /// became ready at virtual instant `ready` (as returned by
    /// [`post_send`](Self::post_send)), advancing `dst`'s clock to the
    /// later of its own time and `ready`. `send(src, dst, b)` is
    /// exactly `post_send` followed by `arrive`.
    pub fn arrive(&mut self, dst: usize, ready: f64) {
        let before = self.clocks[dst];
        self.clocks[dst] = self.clocks[dst].max(ready);
        self.comm_seconds += self.clocks[dst] - before;
        let dst_after = self.clocks[dst];
        self.note(dst, before, dst_after, Activity::Communication);
    }

    /// Checks that a per-rank byte vector matches the communicator
    /// size, returning a typed error (and tripping a debug assertion in
    /// debug builds) instead of letting an index panic surface later.
    fn check_per_rank(&self, op: &'static str, len: usize) -> Result<(), PlatformError> {
        if len != self.size() {
            return Err(PlatformError::SizeMismatch {
                op,
                expected: self.size(),
                got: len,
            });
        }
        Ok(())
    }

    /// All-gather where rank `r` contributes `bytes[r]` bytes (ring
    /// algorithm: `p-1` steps, each rank forwarding what it has).
    /// Synchronising: all ranks finish together.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if
    /// `bytes.len() != self.size()`.
    pub fn allgatherv(&mut self, bytes: &[f64]) -> Result<(), PlatformError> {
        self.check_per_rank("allgatherv", bytes.len())?;
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let total: f64 = bytes.iter().sum();
        let start = self.max_time();
        // Ring: p-1 steps; per step the largest in-flight chunk bounds
        // progress.
        let worst_chunk = bytes.iter().fold(0.0_f64, |m, b| m.max(*b));
        let finish = start + (p as f64 - 1.0) * self.link().cost(worst_chunk);
        for r in 0..p {
            let before = self.clocks[r];
            self.comm_seconds += finish - before;
            self.clocks[r] = finish;
            self.note(r, before, finish, Activity::Communication);
        }
        let _ = total;
        Ok(())
    }

    /// Scatter: `root` sends `bytes[r]` bytes to each rank `r` in rank
    /// order (linear algorithm — the root's NIC serialises the sends).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if
    /// `bytes.len() != self.size()`.
    pub fn scatterv(&mut self, root: usize, bytes: &[f64]) -> Result<(), PlatformError> {
        self.check_per_rank("scatterv", bytes.len())?;
        let root_before = self.clocks[root];
        let mut send_clock = root_before;
        for (r, &b) in bytes.iter().enumerate() {
            if r == root {
                continue;
            }
            send_clock += self.topo.link(root, r).cost(b);
            let before = self.clocks[r];
            self.clocks[r] = self.clocks[r].max(send_clock);
            self.comm_seconds += self.clocks[r] - before;
            let after = self.clocks[r];
            self.note(r, before, after, Activity::Communication);
        }
        self.comm_seconds += send_clock - root_before;
        self.clocks[root] = send_clock;
        self.note(root, root_before, send_clock, Activity::Communication);
        Ok(())
    }

    /// Gather: `root` receives `bytes[r]` bytes from each rank `r` in
    /// rank order (linear algorithm). Senders pay a latency; the root
    /// cannot receive a message before its sender has produced it.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if
    /// `bytes.len() != self.size()`.
    pub fn gatherv(&mut self, root: usize, bytes: &[f64]) -> Result<(), PlatformError> {
        self.check_per_rank("gatherv", bytes.len())?;
        let root_before = self.clocks[root];
        let mut recv_clock = root_before;
        for (r, &b) in bytes.iter().enumerate() {
            if r == root {
                continue;
            }
            let link = self.topo.link(root, r);
            recv_clock = recv_clock.max(self.clocks[r]) + link.cost(b);
            let before = self.clocks[r];
            self.clocks[r] += link.latency_sec;
            self.note(
                r,
                before,
                before + link.latency_sec,
                Activity::Communication,
            );
        }
        self.comm_seconds += recv_clock - root_before;
        self.clocks[root] = recv_clock;
        self.note(root, root_before, recv_clock, Activity::Communication);
        Ok(())
    }

    /// Reduction of `bytes`-sized contributions to `root` along a
    /// binomial tree: the root finishes `ceil(log2 p)` worst-link costs
    /// after the last contributor; non-roots pay one link cost.
    pub fn reduce(&mut self, root: usize, bytes: f64) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as f64;
        let cost = self.link().cost(bytes);
        let finish = self.max_time() + rounds * cost;
        for r in 0..p {
            let before = self.clocks[r];
            if r == root {
                self.comm_seconds += finish - before;
                self.clocks[r] = finish;
            } else {
                self.comm_seconds += cost;
                self.clocks[r] += cost;
            }
            let after = self.clocks[r];
            self.note(r, before, after, Activity::Communication);
        }
    }

    /// All-reduce: a reduction to rank 0 followed by a broadcast.
    pub fn allreduce(&mut self, bytes: f64) {
        self.reduce(0, bytes);
        self.bcast(0, bytes);
    }

    /// Charges an explicit per-hop collective schedule: `rounds` is a
    /// sequence of rounds, each a list of `(src, dst, bytes)` hops.
    ///
    /// Port model (single-port, full-duplex): within one round, every
    /// rank owns an independent send port and receive port; a hop
    /// occupies `src`'s send port and `dst`'s receive port for the
    /// link cost `α + m/β`, and hops sharing a port serialise in list
    /// order (this is what makes a star fan-in/fan-out pay its `O(p)`
    /// serialisation at the hub while disjoint ring/tree hops proceed
    /// concurrently). A pairwise exchange — `(a, b, m)` and
    /// `(b, a, m)` in the same round — costs one link cost, not two,
    /// because the two transfers use opposite ports.
    ///
    /// Hops within one round must be data-independent: a rank may
    /// only forward bytes it already held when the round began.
    /// Transfers that depend on an earlier hop belong in a later
    /// round (the caller's schedule builders guarantee this). Clocks
    /// advance at end of round, so later rounds see the dependency.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if a hop names a rank
    /// outside the communicator or a self-loop (`src == dst`).
    pub fn schedule(&mut self, rounds: &[Vec<(usize, usize, f64)>]) -> Result<(), PlatformError> {
        let p = self.size();
        for round in rounds {
            for &(src, dst, _) in round {
                if src >= p || dst >= p || src == dst {
                    return Err(PlatformError::SizeMismatch {
                        op: "schedule",
                        expected: p,
                        got: src.max(dst),
                    });
                }
            }
            let mut send_busy = self.clocks.clone();
            let mut recv_busy = self.clocks.clone();
            for &(src, dst, bytes) in round {
                let cost = self.topo.link(src, dst).cost(bytes);
                let begin = send_busy[src].max(recv_busy[dst]);
                let end = begin + cost;
                send_busy[src] = end;
                recv_busy[dst] = end;
            }
            for r in 0..p {
                let after = send_busy[r].max(recv_busy[r]);
                if after > self.clocks[r] {
                    let before = self.clocks[r];
                    self.comm_seconds += after - before;
                    self.clocks[r] = after;
                    self.note(r, before, after, Activity::Communication);
                }
            }
        }
        Ok(())
    }

    /// Charges a per-hop collective schedule whose transfers began at
    /// the clocks in `baseline` rather than at the current clocks —
    /// the overlap-aware variant of [`schedule`](Self::schedule).
    ///
    /// A nonblocking collective posts while each participant's clock
    /// reads `baseline[r]`, the network makes progress while ranks
    /// compute, and at `wait` the finished schedule is merged back:
    /// each rank's clock becomes the *later* of the time it finished
    /// computing and the time its part of the schedule completed, so
    /// communication that fits under the compute is hidden. Only the
    /// exposed portion (the raise above the current clock) is added to
    /// [`comm_seconds`](Self::comm_seconds).
    ///
    /// The port model inside the schedule is identical to
    /// [`schedule`](Self::schedule): per round, independent
    /// single-port full-duplex send/receive ports, hops sharing a port
    /// serialising in list order, and a barrier between rounds (both
    /// ports advance to the round's per-rank completion before the
    /// next round begins).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if `baseline` does not
    /// have one entry per rank, or if a hop names a rank outside the
    /// communicator or a self-loop (`src == dst`).
    pub fn schedule_from(
        &mut self,
        baseline: &[f64],
        rounds: &[Vec<(usize, usize, f64)>],
    ) -> Result<(), PlatformError> {
        let p = self.size();
        self.check_per_rank("schedule_from", baseline.len())?;
        for round in rounds {
            for &(src, dst, _) in round {
                if src >= p || dst >= p || src == dst {
                    return Err(PlatformError::SizeMismatch {
                        op: "schedule_from",
                        expected: p,
                        got: src.max(dst),
                    });
                }
            }
        }
        let mut send_busy = baseline.to_vec();
        let mut recv_busy = baseline.to_vec();
        for round in rounds {
            for &(src, dst, bytes) in round {
                let cost = self.topo.link(src, dst).cost(bytes);
                let begin = send_busy[src].max(recv_busy[dst]);
                let end = begin + cost;
                send_busy[src] = end;
                recv_busy[dst] = end;
            }
            for (s, v) in send_busy.iter_mut().zip(recv_busy.iter_mut()) {
                let m = s.max(*v);
                *s = m;
                *v = m;
            }
        }
        for (r, &after) in send_busy.iter().enumerate() {
            if after > self.clocks[r] {
                let before = self.clocks[r];
                self.comm_seconds += after - before;
                self.clocks[r] = after;
                self.note(r, before, after, Activity::Communication);
            }
        }
        Ok(())
    }

    /// Charges a uniform ring schedule in closed form: `rounds` rounds
    /// in which every rank simultaneously sends `bytes` to its
    /// successor and receives `bytes` from its predecessor over one
    /// shared link model.
    ///
    /// This is the event engine's fast path for ring collectives at
    /// large `p`, where materialising the explicit
    /// `rounds × p`-hop schedule would cost `O(p²)`. Under the
    /// preconditions below it advances every clock through exactly the
    /// same sequence of floating-point additions as
    /// [`schedule`](Self::schedule) applied to the equivalent ring hop
    /// plan — each round every rank begins at the shared clock `x` and
    /// ends at `fl(x + cost)` — so the resulting clocks are
    /// **bit-identical** to the explicit replay.
    /// [`comm_seconds`](Self::comm_seconds) is accumulated as
    /// `fl(round_delta) × p` per round, which is mathematically equal
    /// to the explicit replay's per-rank accumulation but not
    /// guaranteed bit-identical (the replay performs `p` separate
    /// additions per round); `comm_seconds` is a diagnostic, not part
    /// of the bit-parity contract. When tracing is enabled each rank
    /// gets one coalesced [`Activity::Communication`] interval spanning
    /// all rounds instead of one per round.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not uniform-link
    /// ([`Topology::uniform_link`]), if the per-rank clocks are not all
    /// bit-identical, or if `bytes` is negative — the caller is
    /// expected to have checked the fast-path gate.
    pub fn charge_uniform_ring(&mut self, bytes: f64, rounds: usize) {
        let link = self
            .topo
            .uniform_link()
            .expect("charge_uniform_ring requires a uniform-link topology");
        let start = self.clocks[0];
        assert!(
            self.clocks.iter().all(|c| c.to_bits() == start.to_bits()),
            "charge_uniform_ring requires bit-identical per-rank clocks"
        );
        let cost = link.cost(bytes);
        let p = self.clocks.len() as f64;
        let mut x = start;
        for _ in 0..rounds {
            let next = x + cost;
            self.comm_seconds += (next - x) * p;
            x = next;
        }
        for c in &mut self.clocks {
            *c = x;
        }
        for r in 0..self.clocks.len() {
            self.note(r, start, x, Activity::Communication);
        }
    }

    /// Moves computation units between ranks to turn distribution `old`
    /// into `new`, with each unit weighing `bytes_per_unit` bytes.
    /// Surpluses are matched to deficits in rank order (the same greedy
    /// pairing the FuPerMod examples use). Returns the number of units
    /// moved. Ranks proceed concurrently; each rank's clock advances by
    /// the cost of its own sends plus receives, then everyone
    /// synchronises (redistribution is a collective phase in the apps).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::SizeMismatch`] if either distribution's
    /// length differs from the communicator size and
    /// [`PlatformError::UnitsNotConserved`] if their totals differ.
    pub fn redistribute(
        &mut self,
        old: &[u64],
        new: &[u64],
        bytes_per_unit: f64,
    ) -> Result<u64, PlatformError> {
        self.check_per_rank("redistribute(old)", old.len())?;
        self.check_per_rank("redistribute(new)", new.len())?;
        let (old_total, new_total) = (old.iter().sum::<u64>(), new.iter().sum::<u64>());
        if old_total != new_total {
            return Err(PlatformError::UnitsNotConserved {
                old: old_total,
                new: new_total,
            });
        }

        let mut surplus: VecDeque<(usize, u64)> = VecDeque::new();
        let mut deficit: VecDeque<(usize, u64)> = VecDeque::new();
        for r in 0..old.len() {
            if old[r] > new[r] {
                surplus.push_back((r, old[r] - new[r]));
            } else if new[r] > old[r] {
                deficit.push_back((r, new[r] - old[r]));
            }
        }

        let mut moved = 0u64;
        let mut busy = vec![0.0; self.size()];
        let mut transfers = 0usize;
        while let (Some(&(s, have)), Some(&(d, need))) = (surplus.front(), deficit.front()) {
            let units = have.min(need);
            let cost = self.topo.link(s, d).cost(units as f64 * bytes_per_unit);
            busy[s] += cost;
            busy[d] += cost;
            moved += units;
            transfers += 1;
            if have == units {
                surplus.pop_front();
            } else {
                surplus.front_mut().expect("non-empty").1 -= units;
            }
            if need == units {
                deficit.pop_front();
            } else {
                deficit.front_mut().expect("non-empty").1 -= units;
            }
        }
        let _ = transfers;

        if moved > 0 {
            let start = self.max_time();
            let finish = busy
                .iter()
                .map(|b| start + b)
                .fold(0.0_f64, f64::max);
            for r in 0..self.clocks.len() {
                let before = self.clocks[r];
                self.comm_seconds += finish - before;
                self.clocks[r] = finish;
                self.note(r, before, finish, Activity::Communication);
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_cost_is_affine() {
        let link = LinkModel {
            latency_sec: 1e-3,
            bytes_per_sec: 1e6,
        };
        assert!((link.cost(0.0) - 1e-3).abs() < 1e-15);
        assert!((link.cost(1e6) - 1.001).abs() < 1e-12);
    }

    #[test]
    fn barrier_synchronises_to_max() {
        let mut c = SimComm::new(3, LinkModel::ethernet());
        c.advance(0, 5.0);
        c.advance(2, 1.0);
        c.barrier();
        for r in 0..3 {
            assert_eq!(c.time(r), 5.0);
        }
    }

    #[test]
    fn schedule_serialises_shared_ports_and_overlaps_disjoint_hops() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        // Star fan-in: three hops into rank 0's receive port serialise.
        let mut c = SimComm::new(4, link);
        c.schedule(&[vec![(1, 0, 0.0), (2, 0, 0.0), (3, 0, 0.0)]])
            .unwrap();
        assert_eq!(c.time(0), 3.0, "hub receive port serialises");
        // Ring round: disjoint pairs proceed concurrently; a pairwise
        // exchange costs one link cost, not two.
        let mut c = SimComm::new(4, link);
        c.schedule(&[vec![(0, 1, 0.0), (1, 2, 0.0), (2, 3, 0.0), (3, 0, 0.0)]])
            .unwrap();
        for r in 0..4 {
            assert_eq!(c.time(r), 1.0, "pipelined ring round costs one hop");
        }
        let mut c = SimComm::new(2, link);
        c.schedule(&[vec![(0, 1, 0.0), (1, 0, 0.0)]]).unwrap();
        assert_eq!(c.max_time(), 1.0, "full-duplex exchange");
        // Rounds sequence: clocks advance between rounds.
        let mut c = SimComm::new(2, link);
        c.schedule(&[vec![(0, 1, 0.0)], vec![(1, 0, 0.0)]]).unwrap();
        assert_eq!(c.time(0), 2.0);
        // Invalid hops are rejected.
        let mut c = SimComm::new(2, link);
        assert!(c.schedule(&[vec![(0, 2, 0.0)]]).is_err());
        assert!(c.schedule(&[vec![(1, 1, 0.0)]]).is_err());
    }

    #[test]
    fn schedule_is_deterministic_and_tracks_comm_seconds() {
        let run = || {
            let mut c = SimComm::new(8, LinkModel::ethernet());
            c.advance(3, 1e-3);
            let rounds: Vec<Vec<(usize, usize, f64)>> = (0..7)
                .map(|k| (0..8).map(|i| (i, (i + 1) % 8, 100.0 + k as f64)).collect())
                .collect();
            c.schedule(&rounds).unwrap();
            (c.max_time(), c.comm_seconds())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert!(t1 > 0.0 && s1 > 0.0);
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(s1.to_bits(), s2.to_bits());
    }

    #[test]
    fn charge_uniform_ring_matches_explicit_schedule_bitwise() {
        // The closed form must walk clocks through exactly the same
        // floating-point additions as replaying the explicit ring hop
        // plan, at a q large enough to exercise accumulated rounding.
        let q = 600;
        let bytes = 1234.0;
        let mut exact = SimComm::new(q, LinkModel::ethernet());
        exact.advance(0, 0.125);
        exact.barrier(); // uniform non-zero starting clocks
        let mut fast = exact.clone();
        let rounds: Vec<Vec<(usize, usize, f64)>> = (0..q - 1)
            .map(|_| (0..q).map(|i| (i, (i + 1) % q, bytes)).collect())
            .collect();
        exact.schedule(&rounds).unwrap();
        fast.charge_uniform_ring(bytes, q - 1);
        for r in 0..q {
            assert_eq!(
                exact.time(r).to_bits(),
                fast.time(r).to_bits(),
                "rank {r} clock diverged"
            );
        }
        // comm_seconds is mathematically equal but accumulated in a
        // different association order — approximate agreement only.
        let rel = (exact.comm_seconds() - fast.comm_seconds()).abs() / exact.comm_seconds();
        assert!(rel < 1e-9, "comm_seconds diverged by {rel}");
    }

    #[test]
    fn uniform_link_detection() {
        let eth = LinkModel::ethernet();
        let ib = LinkModel::infiniband();
        assert_eq!(Topology::flat(4, eth).uniform_link(), Some(eth));
        // One node: intra link applies everywhere.
        assert_eq!(
            Topology::two_level(vec![0, 0, 0], ib, eth).uniform_link(),
            Some(ib)
        );
        // Two nodes, distinct links: not uniform.
        assert_eq!(Topology::two_level(vec![0, 1], ib, eth).uniform_link(), None);
        // Two nodes but identical links: uniform.
        assert_eq!(
            Topology::two_level(vec![0, 1], eth, eth).uniform_link(),
            Some(eth)
        );
    }

    #[test]
    fn schedule_from_current_clocks_matches_schedule() {
        let rounds: Vec<Vec<(usize, usize, f64)>> = (0..7)
            .map(|k| (0..8).map(|i| (i, (i + 1) % 8, 100.0 + k as f64)).collect())
            .collect();
        let mut blocking = SimComm::new(8, LinkModel::ethernet());
        blocking.advance(3, 1e-3);
        blocking.schedule(&rounds).unwrap();
        let mut overlap = SimComm::new(8, LinkModel::ethernet());
        overlap.advance(3, 1e-3);
        let baseline: Vec<f64> = (0..8).map(|r| overlap.time(r)).collect();
        overlap.schedule_from(&baseline, &rounds).unwrap();
        for r in 0..8 {
            assert_eq!(blocking.time(r).to_bits(), overlap.time(r).to_bits());
        }
    }

    #[test]
    fn schedule_from_hides_communication_under_compute() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        // Post at t=0, compute for 5 s, complete a 2-round schedule:
        // the 2 s of communication fit entirely under the compute.
        let mut c = SimComm::new(2, link);
        let baseline = vec![0.0, 0.0];
        c.advance(0, 5.0);
        c.advance(1, 5.0);
        let before = c.comm_seconds();
        c.schedule_from(&baseline, &[vec![(0, 1, 0.0)], vec![(1, 0, 0.0)]])
            .unwrap();
        assert_eq!(c.time(0), 5.0);
        assert_eq!(c.time(1), 5.0);
        assert_eq!(c.comm_seconds(), before); // fully hidden → no exposed cost
        // The same schedule charged blocking-style costs 2 s on top.
        let mut b = SimComm::new(2, link);
        b.advance(0, 5.0);
        b.advance(1, 5.0);
        b.schedule(&[vec![(0, 1, 0.0)], vec![(1, 0, 0.0)]]).unwrap();
        assert_eq!(b.time(0), 7.0);
    }

    #[test]
    fn schedule_from_rejects_bad_baseline_and_hops() {
        let mut c = SimComm::new(2, LinkModel::ethernet());
        assert!(c.schedule_from(&[0.0], &[]).is_err());
        assert!(c.schedule_from(&[0.0, 0.0], &[vec![(0, 2, 0.0)]]).is_err());
        assert!(c.schedule_from(&[0.0, 0.0], &[vec![(1, 1, 0.0)]]).is_err());
    }

    #[test]
    fn post_send_then_arrive_matches_send() {
        let link = LinkModel {
            latency_sec: 0.5,
            bytes_per_sec: 1e6,
        };
        let mut whole = SimComm::new(2, link);
        whole.advance(0, 2.0);
        whole.send(0, 1, 1e6);
        let mut split = SimComm::new(2, link);
        split.advance(0, 2.0);
        let ready = split.post_send(0, 1, 1e6);
        split.arrive(1, ready);
        assert_eq!(whole.time(0).to_bits(), split.time(0).to_bits());
        assert_eq!(whole.time(1).to_bits(), split.time(1).to_bits());
        assert_eq!(
            whole.comm_seconds().to_bits(),
            split.comm_seconds().to_bits()
        );
        // Delivery later than readiness costs the receiver nothing.
        split.advance(1, 10.0);
        let t = split.time(1);
        let s = split.comm_seconds();
        split.arrive(1, t - 1.0);
        assert_eq!(split.time(1), t);
        assert_eq!(split.comm_seconds(), s);
    }

    #[test]
    fn bcast_uses_logarithmic_rounds() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        let mut c = SimComm::new(8, link);
        c.bcast(0, 0.0);
        // 8 ranks → 3 rounds of 1 s latency each.
        for r in 0..8 {
            assert_eq!(c.time(r), 3.0);
        }
    }

    #[test]
    fn bcast_does_not_rewind_late_ranks() {
        let mut c = SimComm::new(2, LinkModel::ethernet());
        c.advance(1, 100.0);
        c.bcast(0, 1e6);
        assert_eq!(c.time(1), 100.0);
    }

    #[test]
    fn send_orders_receiver_after_sender() {
        let link = LinkModel {
            latency_sec: 0.5,
            bytes_per_sec: 1e6,
        };
        let mut c = SimComm::new(2, link);
        c.advance(0, 2.0);
        c.send(0, 1, 1e6);
        assert!((c.time(1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn redistribute_conserves_and_charges_movers() {
        let mut c = SimComm::new(3, LinkModel::ethernet());
        let moved = c.redistribute(&[10, 0, 2], &[4, 6, 2], 8.0).unwrap();
        assert_eq!(moved, 6);
        assert!(c.max_time() > 0.0);
        // No change → no cost.
        let t = c.max_time();
        let moved = c.redistribute(&[4, 6, 2], &[4, 6, 2], 8.0).unwrap();
        assert_eq!(moved, 0);
        assert_eq!(c.max_time(), t);
    }

    #[test]
    fn redistribute_rejects_unit_loss() {
        let mut c = SimComm::new(2, LinkModel::ethernet());
        let t = c.max_time();
        assert_eq!(
            c.redistribute(&[3, 3], &[3, 2], 8.0),
            Err(PlatformError::UnitsNotConserved { old: 6, new: 5 })
        );
        // The failed call must not have charged any clock.
        assert_eq!(c.max_time(), t);
    }

    #[test]
    fn byte_count_paths_reject_wrong_arity() {
        let mut c = SimComm::new(3, LinkModel::ethernet());
        assert!(matches!(
            c.allgatherv(&[1.0, 2.0]),
            Err(PlatformError::SizeMismatch {
                op: "allgatherv",
                expected: 3,
                got: 2
            })
        ));
        assert!(c.scatterv(0, &[1.0; 4]).is_err());
        assert!(c.gatherv(1, &[1.0; 2]).is_err());
        assert!(c.redistribute(&[1, 2], &[1, 2, 0], 8.0).is_err());
        // Clocks untouched by any rejected call.
        assert_eq!(c.max_time(), 0.0);
    }

    #[test]
    fn trace_records_compute_comm_and_idle() {
        let mut c = SimComm::new(2, LinkModel::ethernet());
        c.enable_trace();
        c.advance(0, 1.0);
        c.send(0, 1, 1e6);
        c.barrier();
        let trace = c.trace();
        assert!(trace
            .iter()
            .any(|e| e.rank == 0 && e.activity == Activity::Compute));
        assert!(trace
            .iter()
            .any(|e| e.rank == 1 && e.activity == Activity::Communication));
        // Intervals are well-formed and within the clock range.
        for e in trace {
            assert!(e.end > e.start);
            assert!(e.end <= c.max_time() + 1e-12);
        }
    }

    #[test]
    fn trace_is_off_by_default_and_cheap() {
        let mut c = SimComm::new(2, LinkModel::ethernet());
        c.advance(0, 1.0);
        c.barrier();
        assert!(c.trace().is_empty());
    }

    #[test]
    fn per_rank_trace_is_time_ordered() {
        let mut c = SimComm::new(3, LinkModel::ethernet());
        c.enable_trace();
        for i in 0..5 {
            c.advance(i % 3, 0.5 + i as f64 * 0.1);
            c.bcast(i % 3, 1e5);
            c.barrier();
        }
        for rank in 0..3 {
            let mut last_end = 0.0;
            for e in c.trace().iter().filter(|e| e.rank == rank) {
                assert!(e.start >= last_end - 1e-12, "overlap on rank {rank}");
                last_end = e.end;
            }
        }
    }

    #[test]
    fn scatterv_serialises_at_the_root() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        let mut c = SimComm::new(3, link);
        c.scatterv(0, &[0.0, 10.0, 10.0]).unwrap();
        // Root sends to 1 then 2: arrivals at 1 s and 2 s.
        assert_eq!(c.time(1), 1.0);
        assert_eq!(c.time(2), 2.0);
        assert_eq!(c.time(0), 2.0);
    }

    #[test]
    fn gatherv_waits_for_slow_senders() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        let mut c = SimComm::new(3, link);
        c.advance(2, 10.0);
        c.gatherv(0, &[0.0, 5.0, 5.0]).unwrap();
        // Rank 1's message arrives at 1 s; rank 2's at max(1, 10) + 1.
        assert_eq!(c.time(0), 11.0);
    }

    #[test]
    fn reduce_charges_logarithmic_rounds_to_root() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        let mut c = SimComm::new(8, link);
        c.reduce(3, 64.0);
        assert_eq!(c.time(3), 3.0);
        assert_eq!(c.time(0), 1.0);
    }

    #[test]
    fn allreduce_is_reduce_plus_bcast() {
        let link = LinkModel {
            latency_sec: 1.0,
            bytes_per_sec: f64::INFINITY,
        };
        let mut c = SimComm::new(4, link);
        c.allreduce(8.0);
        // 2 rounds reduce + 2 rounds bcast.
        for r in 0..4 {
            assert_eq!(c.time(r), 4.0, "rank {r}");
        }
    }

    #[test]
    fn topology_distinguishes_intra_and_inter_node() {
        let intra = LinkModel {
            latency_sec: 1e-6,
            bytes_per_sec: 1e10,
        };
        let inter = LinkModel {
            latency_sec: 1e-3,
            bytes_per_sec: 1e8,
        };
        // Ranks 0,1 on node 0; ranks 2,3 on node 1.
        let topo = Topology::two_level(vec![0, 0, 1, 1], intra, inter);
        assert_eq!(topo.link(0, 1), intra);
        assert_eq!(topo.link(1, 2), inter);
        assert_eq!(topo.worst_link(), inter);

        let mut c = SimComm::with_topology(topo);
        c.send(0, 1, 1e6); // intra: ~0.1 ms
        let t_intra = c.time(1);
        c.send(2, 3, 1e6); // also intra
        c.send(0, 2, 1e6); // inter: ~10 ms
        assert!(c.time(2) > 50.0 * t_intra);
    }

    #[test]
    fn flat_topology_matches_plain_constructor() {
        let link = LinkModel::ethernet();
        let a = SimComm::new(4, link);
        let b = SimComm::with_topology(Topology::flat(4, link));
        assert_eq!(a, b);
    }

    #[test]
    fn sim_allgatherv_synchronises() {
        let mut c = SimComm::new(4, LinkModel::ethernet());
        c.advance(3, 2.0);
        c.allgatherv(&[100.0, 100.0, 100.0, 100.0]).unwrap();
        let t = c.time(0);
        assert!(t > 2.0);
        for r in 0..4 {
            assert_eq!(c.time(r), t);
        }
    }
}
