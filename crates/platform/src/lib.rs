#![warn(missing_docs)]

//! Simulated dedicated heterogeneous HPC platform.
//!
//! The paper evaluates FuPerMod on Grid'5000 nodes: heterogeneous CPUs,
//! multicore nodes with resource contention, and GPU-accelerated nodes.
//! This crate is the stand-in substrate: it models such platforms with
//! enough fidelity that the framework sees the same *shapes* of
//! behaviour the paper's partitioning algorithms were designed for —
//! speed functions with memory-hierarchy plateaus and cliffs, per-core
//! contention that grows with the active-core count and working set,
//! GPUs whose effective speed folds in PCIe transfers and a host
//! overhead and that fall off a cliff past device memory.
//!
//! Components:
//!
//! * [`profile`] — [`WorkloadProfile`]: how a
//!   problem size in *computation units* translates to flops, resident
//!   bytes, and transferred bytes for a given application kernel.
//! * [`device`] — device models and their ground-truth time functions,
//!   plus a seeded multiplicative noise model so repeated "measurements"
//!   behave like real benchmarks.
//! * [`comm`] — a Hockney-model (`α + m/β`) simulated message-passing
//!   layer with per-rank virtual clocks, and a real thread-backed
//!   communicator with the same interface for in-process parallel runs.
//! * [`cluster`] — ready-made testbeds used across the experiments.

pub mod cluster;
pub mod comm;
pub mod device;
pub mod profile;

pub use cluster::Platform;
pub use comm::{Activity, LinkModel, PlatformError, SimComm, Topology, TraceEvent};
pub use device::{Device, DeviceSpec};
pub use profile::WorkloadProfile;
