//! Ready-made heterogeneous testbeds.
//!
//! The paper's experiments ran on Grid'5000: a dedicated mix of fast and
//! slow CPUs, multicore nodes, and GPU-accelerated nodes. These
//! constructors assemble analogous synthetic platforms with fixed seeds
//! so every experiment in the repository is reproducible bit-for-bit.

use serde::{Deserialize, Serialize};

use crate::comm::LinkModel;
use crate::device::{CpuSpec, Device, DeviceSpec, GpuSpec, MemoryLevel, MulticoreCoreSpec};

/// Default relative measurement noise for synthetic devices (2%), about
/// what a well-pinned dedicated node shows in practice.
pub const DEFAULT_NOISE: f64 = 0.02;

/// A named set of devices connected by a uniform link model.
///
/// # Examples
///
/// ```
/// use fupermod_platform::Platform;
///
/// let platform = Platform::two_speed(2, 2, 42);
/// assert_eq!(platform.size(), 4);
/// assert!(platform.device(0).name().starts_with("fast"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    devices: Vec<Device>,
    link: LinkModel,
}

impl Platform {
    /// Builds a platform from parts.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(name: impl Into<String>, devices: Vec<Device>, link: LinkModel) -> Self {
        assert!(!devices.is_empty(), "platform needs at least one device");
        Self {
            name: name.into(),
            devices,
            link,
        }
    }

    /// Platform name for experiment output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of devices (= processes in the paper's sense).
    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// Device at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn device(&self, index: usize) -> &Device {
        &self.devices[index]
    }

    /// All devices in rank order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The interconnect model.
    pub fn link(&self) -> LinkModel {
        self.link
    }

    /// Returns the same platform with a different interconnect.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// `n` identical fast CPU cores — the homogeneous control platform.
    pub fn uniform(n: usize, seed: u64) -> Self {
        let devices = (0..n)
            .map(|i| fast_cpu(format!("cpu{i}"), seed.wrapping_add(i as u64)))
            .collect();
        Self::new(format!("uniform-{n}"), devices, LinkModel::ethernet())
    }

    /// `n_fast` fast cores plus `n_slow` cores at roughly a third of the
    /// speed with smaller caches — the classic heterogeneous network of
    /// uniprocessors.
    pub fn two_speed(n_fast: usize, n_slow: usize, seed: u64) -> Self {
        let mut devices = Vec::with_capacity(n_fast + n_slow);
        for i in 0..n_fast {
            devices.push(fast_cpu(format!("fast{i}"), seed.wrapping_add(i as u64)));
        }
        for i in 0..n_slow {
            devices.push(slow_cpu(
                format!("slow{i}"),
                seed.wrapping_add(1000 + i as u64),
            ));
        }
        Self::new(
            format!("two-speed-{n_fast}f{n_slow}s"),
            devices,
            LinkModel::ethernet(),
        )
    }

    /// A multicore node: `cores` cores sharing one cache, all active —
    /// the paper's measurement configuration for multicores \[18\].
    pub fn multicore_node(cores: usize, seed: u64) -> Self {
        Self::new(
            format!("multicore-{cores}"),
            multicore_cores("core", cores, seed),
            LinkModel::infiniband(),
        )
    }

    /// A hybrid node: `cores` contended CPU cores plus one GPU with its
    /// dedicated host core (the GPU rank *replaces* one CPU rank, as in
    /// the paper's hybrid configuration \[19\]).
    pub fn hybrid_node(cores: usize, seed: u64) -> Self {
        assert!(cores >= 2, "hybrid node needs at least two cores");
        let mut devices = multicore_cores("core", cores - 1, seed);
        devices.push(gpu("gpu0", seed.wrapping_add(7777), true));
        Self::new(format!("hybrid-{cores}"), devices, LinkModel::infiniband())
    }

    /// A 16-device site mixing everything: 4 fast CPUs, 4 slow CPUs, a
    /// 6-core contended node, and 2 GPUs (one without out-of-core
    /// support) — the "highly heterogeneous" target platform.
    pub fn grid_site(seed: u64) -> Self {
        let mut devices = Vec::with_capacity(16);
        for i in 0..4 {
            devices.push(fast_cpu(format!("fast{i}"), seed.wrapping_add(i)));
        }
        for i in 0..4 {
            devices.push(slow_cpu(format!("slow{i}"), seed.wrapping_add(100 + i)));
        }
        devices.extend(multicore_cores("mc", 6, seed.wrapping_add(200)));
        devices.push(gpu("gpu0", seed.wrapping_add(300), true));
        devices.push(gpu("gpu1", seed.wrapping_add(301), false));
        Self::new("grid-site", devices, LinkModel::ethernet())
    }
}

/// A fast CPU core: ~10 Gflop/s in L1 falling to ~3 Gflop/s in RAM.
pub fn fast_cpu(name: impl Into<String>, seed: u64) -> Device {
    Device::new(
        name,
        DeviceSpec::Cpu(CpuSpec {
            levels: vec![
                MemoryLevel {
                    capacity_bytes: 64e3,
                    flops: 10e9,
                },
                MemoryLevel {
                    capacity_bytes: 1e6,
                    flops: 8e9,
                },
                MemoryLevel {
                    capacity_bytes: 8e6,
                    flops: 6e9,
                },
                MemoryLevel {
                    capacity_bytes: 8e9,
                    flops: 3e9,
                },
            ],
            paging_flops: 0.15e9,
        }),
        DEFAULT_NOISE,
        seed,
    )
}

/// A slow CPU core: about a third of the fast core with smaller caches,
/// so its memory cliffs fall at *different* problem sizes — the
/// heterogeneity that defeats constant models.
pub fn slow_cpu(name: impl Into<String>, seed: u64) -> Device {
    Device::new(
        name,
        DeviceSpec::Cpu(CpuSpec {
            levels: vec![
                MemoryLevel {
                    capacity_bytes: 32e3,
                    flops: 3.5e9,
                },
                MemoryLevel {
                    capacity_bytes: 512e3,
                    flops: 2.8e9,
                },
                MemoryLevel {
                    capacity_bytes: 2e6,
                    flops: 2.0e9,
                },
                MemoryLevel {
                    capacity_bytes: 2e9,
                    flops: 1.0e9,
                },
            ],
            paging_flops: 0.05e9,
        }),
        DEFAULT_NOISE,
        seed,
    )
}

/// `cores` identical contended cores of one node, all active.
pub fn multicore_cores(prefix: &str, cores: usize, seed: u64) -> Vec<Device> {
    assert!(cores > 0, "node needs at least one core");
    (0..cores)
        .map(|i| {
            Device::new(
                format!("{prefix}{i}"),
                DeviceSpec::MulticoreCore(MulticoreCoreSpec {
                    core: CpuSpec {
                        levels: vec![
                            MemoryLevel {
                                capacity_bytes: 32e3,
                                flops: 7e9,
                            },
                            MemoryLevel {
                                capacity_bytes: 256e3,
                                flops: 5.5e9,
                            },
                            MemoryLevel {
                                capacity_bytes: 4e9,
                                flops: 2.5e9,
                            },
                        ],
                        paging_flops: 0.1e9,
                    },
                    active_cores: cores,
                    shared_cache_bytes: 12e6,
                    contention_per_core: 0.08,
                }),
                DEFAULT_NOISE,
                seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

/// A GPU with its dedicated host core. ~200 Gflop/s device speed, PCIe
/// gen-2-class bandwidth, 256 MB of device memory so the out-of-core
/// boundary falls inside experiment ranges.
pub fn gpu(name: impl Into<String>, seed: u64, out_of_core: bool) -> Device {
    Device::new(
        name,
        DeviceSpec::Gpu(GpuSpec {
            flops: 200e9,
            pcie_bytes_per_sec: 6e9,
            host_overhead_sec: 80e-6,
            memory_bytes: 256e6,
            out_of_core_factor: if out_of_core { Some(2.5) } else { None },
        }),
        DEFAULT_NOISE,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadProfile;

    #[test]
    fn testbeds_have_expected_sizes() {
        assert_eq!(Platform::uniform(4, 0).size(), 4);
        assert_eq!(Platform::two_speed(3, 5, 0).size(), 8);
        assert_eq!(Platform::multicore_node(8, 0).size(), 8);
        assert_eq!(Platform::hybrid_node(4, 0).size(), 4);
        assert_eq!(Platform::grid_site(0).size(), 16);
    }

    #[test]
    fn fast_cpu_beats_slow_cpu_everywhere() {
        let fast = fast_cpu("f", 0);
        let slow = slow_cpu("s", 0);
        let p = WorkloadProfile::matrix_update(16);
        for d in [1u64, 10, 100, 1000, 10_000] {
            assert!(
                fast.ideal_time(d, &p) < slow.ideal_time(d, &p),
                "fast not faster at d={d}"
            );
        }
    }

    #[test]
    fn gpu_wins_at_large_sizes_loses_at_tiny_sizes() {
        let g = gpu("g", 0, true);
        let c = fast_cpu("c", 0);
        let p = WorkloadProfile::matrix_update(16);
        // Tiny problem: host overhead + transfer dominates.
        assert!(g.ideal_time(1, &p) > c.ideal_time(1, &p));
        // Large in-core problem: raw device speed dominates.
        assert!(g.ideal_time(20_000, &p) < c.ideal_time(20_000, &p));
    }

    #[test]
    fn grid_site_is_genuinely_heterogeneous() {
        let platform = Platform::grid_site(1);
        let p = WorkloadProfile::matrix_update(16);
        let times: Vec<f64> = platform
            .devices()
            .iter()
            .map(|d| d.ideal_time(1000, &p))
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "spread {min}..{max} too small");
    }

    #[test]
    fn devices_have_unique_names() {
        let platform = Platform::grid_site(1);
        let mut names: Vec<&str> = platform.devices().iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), platform.size());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn rejects_empty_platform() {
        let _ = Platform::new("x", Vec::new(), LinkModel::ethernet());
    }
}
