//! Ground-truth device models.
//!
//! Each device answers one question: *how long does it take to process
//! `d` computation units of a given workload profile?* The framework
//! never sees these models directly — it only observes (noisy) timings,
//! exactly as the real FuPerMod only observes benchmark results. The
//! model shapes follow the phenomena the paper calls out:
//!
//! * **memory hierarchy** — a CPU's effective speed drops in plateaus as
//!   the working set outgrows successive cache levels, and collapses
//!   once it outgrows RAM (paging);
//! * **resource contention** — cores of a multicore node slow down when
//!   their siblings are active and the combined working set spills out
//!   of the shared cache (paper §3, situation (iii));
//! * **hybrid CPU/GPU** — a GPU's *combined* speed (with its dedicated
//!   host core) includes PCIe transfers and a launch overhead, and hits
//!   a wall at device-memory capacity unless an out-of-core
//!   implementation is available (paper §4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::WorkloadProfile;

/// One plateau of a CPU's memory hierarchy: while the working set fits
/// in `capacity_bytes`, the core sustains `flops` operations per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevel {
    /// Capacity of this level in bytes.
    pub capacity_bytes: f64,
    /// Sustained speed while the working set fits, in flop/s.
    pub flops: f64,
}

/// A single CPU core with a cache/memory hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Cache/memory plateaus in increasing capacity order. The last
    /// entry is main memory.
    pub levels: Vec<MemoryLevel>,
    /// Sustained speed once the working set exceeds the last level
    /// (paging), in flop/s.
    pub paging_flops: f64,
}

impl CpuSpec {
    /// Effective speed in flop/s for a resident working set of `ws`
    /// bytes. Plateaus are blended smoothly (over one octave of working
    /// set growth past each capacity) so that spline models see a
    /// continuous, differentiable ground truth.
    pub fn effective_flops(&self, ws: f64) -> f64 {
        assert!(!self.levels.is_empty(), "CPU needs at least one level");
        let mut speed = self.levels[0].flops;
        for i in 0..self.levels.len() {
            let cap = self.levels[i].capacity_bytes;
            let next = if i + 1 < self.levels.len() {
                self.levels[i + 1].flops
            } else {
                self.paging_flops
            };
            speed = blend(speed, next, ws, cap);
        }
        speed
    }
}

/// Smoothstep blend from `from` to `to` as `ws` grows past `cap`
/// (transition completes at `2·cap`).
fn blend(from: f64, to: f64, ws: f64, cap: f64) -> f64 {
    if ws <= cap {
        return from;
    }
    if ws >= 2.0 * cap {
        return to;
    }
    let t = (ws / cap - 1.0).clamp(0.0, 1.0);
    let s = t * t * (3.0 - 2.0 * t);
    from * (1.0 - s) + to * s
}

/// One core of a multicore node with `active_cores` of its siblings
/// running the same kernel simultaneously — the configuration the paper
/// prescribes for measurement on multicore platforms \[18\].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticoreCoreSpec {
    /// The core in isolation.
    pub core: CpuSpec,
    /// How many cores of the node execute concurrently (including this
    /// one).
    pub active_cores: usize,
    /// Shared-cache capacity in bytes; contention kicks in once the
    /// *combined* working set outgrows it.
    pub shared_cache_bytes: f64,
    /// Maximum relative slowdown per extra active core at full memory
    /// pressure (e.g. `0.12` → each sibling costs up to 12%).
    pub contention_per_core: f64,
}

impl MulticoreCoreSpec {
    /// Effective speed of this core, in flop/s, for a per-core working
    /// set of `ws` bytes with `active_cores` cores running.
    pub fn effective_flops(&self, ws: f64) -> f64 {
        let solo = self.core.effective_flops(ws);
        let combined = ws * self.active_cores as f64;
        // Memory pressure ramps from 0 (fits shared cache) to 1.
        let pressure = 1.0 - blend(1.0, 0.0, combined, self.shared_cache_bytes);
        let slowdown =
            1.0 + self.contention_per_core * (self.active_cores as f64 - 1.0) * pressure;
        solo / slowdown
    }
}

/// A GPU together with its dedicated host core, measured synchronously
/// from the host as the paper prescribes \[13,19\].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Sustained device speed in flop/s.
    pub flops: f64,
    /// PCIe bandwidth in bytes/s used for host↔device transfers.
    pub pcie_bytes_per_sec: f64,
    /// Fixed host-side overhead per kernel execution (launches, driver),
    /// in seconds.
    pub host_overhead_sec: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: f64,
    /// Slowdown factor of an out-of-core implementation relative to the
    /// in-core kernel, if one is available. Without one, sizes beyond
    /// device memory are heavily penalised (`OUT_OF_MEMORY_PENALTY`)
    /// rather than made infeasible, so time functions stay finite.
    pub out_of_core_factor: Option<f64>,
}

/// Penalty applied to GPU kernel time past device memory when no
/// out-of-core implementation exists. Finite (rather than infinite) so
/// interpolated time functions and solvers remain well-defined; large
/// enough that no sane partition lands there.
pub const OUT_OF_MEMORY_PENALTY: f64 = 64.0;

impl GpuSpec {
    /// Combined host-observed execution time for a demand of `flops`,
    /// `resident` bytes on device and `transfer` bytes over PCIe.
    fn time(&self, flops: f64, resident: f64, transfer: f64) -> f64 {
        let transfer_time = self.host_overhead_sec + transfer / self.pcie_bytes_per_sec;
        let kernel_time = flops / self.flops;
        if resident <= self.memory_bytes {
            return transfer_time + kernel_time;
        }
        match self.out_of_core_factor {
            Some(factor) => {
                // Streaming passes: every byte beyond capacity crosses
                // PCIe again, and the kernel runs at the out-of-core
                // pace.
                let extra = (resident - self.memory_bytes).max(0.0);
                transfer_time + kernel_time * factor + extra / self.pcie_bytes_per_sec
            }
            None => transfer_time + kernel_time * OUT_OF_MEMORY_PENALTY,
        }
    }
}

/// The kind-specific part of a [`Device`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceSpec {
    /// A dedicated single CPU core.
    Cpu(CpuSpec),
    /// One core of a multicore node under contention.
    MulticoreCore(MulticoreCoreSpec),
    /// A GPU bundled with its dedicated host core.
    Gpu(GpuSpec),
}

impl DeviceSpec {
    /// Short kind label for experiment output.
    pub fn kind(&self) -> &'static str {
        match self {
            DeviceSpec::Cpu(_) => "cpu",
            DeviceSpec::MulticoreCore(_) => "multicore-core",
            DeviceSpec::Gpu(_) => "gpu",
        }
    }
}

/// A named device with a ground-truth time function and a seeded noise
/// model.
///
/// # Examples
///
/// ```
/// use fupermod_platform::device::{CpuSpec, Device, DeviceSpec, MemoryLevel};
/// use fupermod_platform::WorkloadProfile;
///
/// let cpu = Device::new(
///     "cpu0",
///     DeviceSpec::Cpu(CpuSpec {
///         levels: vec![
///             MemoryLevel { capacity_bytes: 32e3, flops: 8e9 },
///             MemoryLevel { capacity_bytes: 8e6, flops: 6e9 },
///             MemoryLevel { capacity_bytes: 4e9, flops: 3e9 },
///         ],
///         paging_flops: 0.2e9,
///     }),
///     0.02,
///     42,
/// );
/// let profile = WorkloadProfile::matrix_update(16);
/// let t = cpu.ideal_time(100, &profile);
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    spec: DeviceSpec,
    noise_rel: f64,
    seed: u64,
}

impl Device {
    /// Creates a device.
    ///
    /// `noise_rel` is the relative standard deviation of measurement
    /// noise (e.g. `0.02` for 2%); `seed` makes the noise reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `noise_rel` is negative or not finite.
    pub fn new(name: impl Into<String>, spec: DeviceSpec, noise_rel: f64, seed: u64) -> Self {
        assert!(
            noise_rel.is_finite() && noise_rel >= 0.0,
            "noise_rel must be finite and >= 0"
        );
        Self {
            name: name.into(),
            spec,
            noise_rel,
            seed,
        }
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Noise-free execution time, in seconds, for `d` computation units
    /// of `profile`. Zero units take zero time.
    pub fn ideal_time(&self, d: u64, profile: &WorkloadProfile) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let demand = profile.demand(d);
        match &self.spec {
            DeviceSpec::Cpu(cpu) => demand.flops / cpu.effective_flops(demand.resident_bytes),
            DeviceSpec::MulticoreCore(mc) => {
                demand.flops / mc.effective_flops(demand.resident_bytes)
            }
            DeviceSpec::Gpu(gpu) => {
                gpu.time(demand.flops, demand.resident_bytes, demand.transfer_bytes)
            }
        }
    }

    /// A "measured" execution time: the ideal time with multiplicative
    /// noise. Deterministic in `(seed, d, run_index)`, so repeating a
    /// measurement with the same run index reproduces it while
    /// successive repetitions scatter like real benchmark samples.
    pub fn measured_time(&self, d: u64, profile: &WorkloadProfile, run_index: u64) -> f64 {
        let ideal = self.ideal_time(d, profile);
        if self.noise_rel == 0.0 || ideal == 0.0 {
            return ideal;
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(d)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(run_index),
        );
        // Two-uniform approximation of a Gaussian is plenty for
        // benchmark-style jitter; clamp keeps times positive.
        let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
        ideal * (1.0 + self.noise_rel * z).max(0.05)
    }

    /// Ground-truth speed in flop/s at size `d` — used by experiments to
    /// compare model predictions against truth, never by the framework
    /// itself.
    pub fn ideal_speed(&self, d: u64, profile: &WorkloadProfile) -> f64 {
        let t = self.ideal_time(d, profile);
        if t == 0.0 {
            0.0
        } else {
            profile.complexity(d) / t
        }
    }

    /// Whether `d` units of `profile` fit the device's memory without
    /// out-of-core penalties (always true for CPUs, which degrade
    /// gradually instead).
    pub fn fits_memory(&self, d: u64, profile: &WorkloadProfile) -> bool {
        match &self.spec {
            DeviceSpec::Gpu(gpu) => profile.demand(d).resident_bytes <= gpu.memory_bytes,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cpu() -> CpuSpec {
        CpuSpec {
            levels: vec![
                MemoryLevel {
                    capacity_bytes: 32e3,
                    flops: 8e9,
                },
                MemoryLevel {
                    capacity_bytes: 8e6,
                    flops: 6e9,
                },
                MemoryLevel {
                    capacity_bytes: 1e9,
                    flops: 3e9,
                },
            ],
            paging_flops: 0.1e9,
        }
    }

    fn gpu_spec(out_of_core: Option<f64>) -> GpuSpec {
        GpuSpec {
            flops: 200e9,
            pcie_bytes_per_sec: 8e9,
            host_overhead_sec: 50e-6,
            memory_bytes: 1e9,
            out_of_core_factor: out_of_core,
        }
    }

    #[test]
    fn cpu_speed_is_plateaued_and_decreasing() {
        let cpu = test_cpu();
        assert_eq!(cpu.effective_flops(1e3), 8e9);
        assert_eq!(cpu.effective_flops(1e6), 6e9);
        assert_eq!(cpu.effective_flops(100e6), 3e9);
        assert_eq!(cpu.effective_flops(10e9), 0.1e9);
        // Monotone non-increasing across the whole range.
        let mut last = f64::INFINITY;
        for i in 0..200 {
            let ws = 1e3 * 1.1f64.powi(i);
            let s = cpu.effective_flops(ws);
            assert!(s <= last + 1e-6, "speed rose at ws={ws}");
            last = s;
        }
    }

    #[test]
    fn cpu_blend_is_continuous() {
        let cpu = test_cpu();
        for cap in [32e3, 8e6, 1e9] {
            let before = cpu.effective_flops(cap * 0.999);
            let after = cpu.effective_flops(cap * 1.001);
            assert!(
                (before - after).abs() / before < 0.01,
                "jump at capacity {cap}"
            );
        }
    }

    #[test]
    fn contention_slows_cores_only_under_pressure() {
        let mc = MulticoreCoreSpec {
            core: test_cpu(),
            active_cores: 8,
            shared_cache_bytes: 16e6,
            contention_per_core: 0.1,
        };
        let solo = MulticoreCoreSpec {
            active_cores: 1,
            ..mc.clone()
        };
        // Tiny working set: combined footprint fits shared cache.
        assert!((mc.effective_flops(1e3) - solo.effective_flops(1e3)).abs() < 1e-3);
        // Large working set: 8 active cores are much slower per core.
        let contended = mc.effective_flops(50e6);
        let alone = solo.effective_flops(50e6);
        assert!(
            contended < 0.7 * alone,
            "contended {contended} vs alone {alone}"
        );
    }

    #[test]
    fn gpu_time_includes_transfer_and_overhead() {
        let gpu = gpu_spec(None);
        // Pure compute time would be flops/200e9; add transfer+overhead.
        let t = gpu.time(200e9, 1e6, 8e9);
        assert!((t - (1.0 + 1.0 + 50e-6)).abs() < 1e-9);
    }

    #[test]
    fn gpu_without_out_of_core_is_penalised_past_memory() {
        let gpu = gpu_spec(None);
        let in_core = gpu.time(1e9, 0.9e9, 1e6);
        let beyond = gpu.time(1e9, 1.1e9, 1e6);
        assert!(beyond > 10.0 * in_core);
    }

    #[test]
    fn gpu_with_out_of_core_degrades_gracefully() {
        let penalised = gpu_spec(None);
        let streaming = gpu_spec(Some(2.5));
        let hard = penalised.time(1e9, 1.5e9, 1e6);
        let soft = streaming.time(1e9, 1.5e9, 1e6);
        assert!(soft < hard, "out-of-core should beat the penalty path");
        assert!(soft > streaming.time(1e9, 0.5e9, 1e6));
    }

    #[test]
    fn zero_units_take_zero_time() {
        let dev = Device::new("d", DeviceSpec::Cpu(test_cpu()), 0.05, 7);
        let p = WorkloadProfile::matrix_update(16);
        assert_eq!(dev.ideal_time(0, &p), 0.0);
        assert_eq!(dev.measured_time(0, &p, 3), 0.0);
    }

    #[test]
    fn measured_time_is_deterministic_per_run_index() {
        let dev = Device::new("d", DeviceSpec::Cpu(test_cpu()), 0.05, 7);
        let p = WorkloadProfile::matrix_update(16);
        let a = dev.measured_time(100, &p, 0);
        let b = dev.measured_time(100, &p, 0);
        let c = dev.measured_time(100, &p, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn measured_time_scatters_around_ideal() {
        let dev = Device::new("d", DeviceSpec::Cpu(test_cpu()), 0.03, 99);
        let p = WorkloadProfile::matrix_update(16);
        let ideal = dev.ideal_time(500, &p);
        let mean: f64 =
            (0..200).map(|i| dev.measured_time(500, &p, i)).sum::<f64>() / 200.0;
        assert!((mean / ideal - 1.0).abs() < 0.02, "mean {mean} vs {ideal}");
    }

    #[test]
    fn fits_memory_only_limits_gpus() {
        let p = WorkloadProfile::linear(1.0, 1e6, 0.0, 0.0);
        let cpu = Device::new("c", DeviceSpec::Cpu(test_cpu()), 0.0, 0);
        let gpu = Device::new("g", DeviceSpec::Gpu(gpu_spec(None)), 0.0, 0);
        assert!(cpu.fits_memory(1_000_000, &p));
        assert!(gpu.fits_memory(999, &p));
        assert!(!gpu.fits_memory(1001, &p));
    }

    #[test]
    fn ideal_speed_reflects_memory_cliff() {
        let dev = Device::new("d", DeviceSpec::Cpu(test_cpu()), 0.0, 0);
        let p = WorkloadProfile::linear(1000.0, 1e4, 0.0, 0.0);
        // 100 units → 1 MB (fast); 1M units → 10 GB (paging).
        assert!(dev.ideal_speed(100, &p) > 10.0 * dev.ideal_speed(1_000_000, &p));
    }
}
