//! Property-based tests for the platform substrate: virtual-clock
//! algebra, redistribution conservation, and device-model sanity.

use fupermod_platform::comm::{LinkModel, SimComm};
use fupermod_platform::{cluster, WorkloadProfile};
use proptest::prelude::*;

fn link_strategy() -> impl Strategy<Value = LinkModel> {
    (1e-7f64..1e-3, 1e6f64..1e10).prop_map(|(latency_sec, bytes_per_sec)| LinkModel {
        latency_sec,
        bytes_per_sec,
    })
}

proptest! {
    #[test]
    fn clocks_never_go_backwards(
        link in link_strategy(),
        ops in proptest::collection::vec((0usize..4, 0usize..4, 0.0f64..10.0), 1..50),
    ) {
        let mut comm = SimComm::new(4, link);
        let mut last_max = 0.0;
        for (a, b, amount) in ops {
            match (a + b) % 4 {
                0 => comm.advance(a, amount),
                1 => comm.barrier(),
                2 => comm.bcast(a, amount * 1e6),
                _ => comm.send(a, b, amount * 1e6),
            }
            let now = comm.max_time();
            prop_assert!(now >= last_max - 1e-12, "clock regressed");
            last_max = now;
        }
    }

    #[test]
    fn barrier_equalises_all_clocks(
        link in link_strategy(),
        advances in proptest::collection::vec(0.0f64..100.0, 4),
    ) {
        let mut comm = SimComm::new(4, link);
        for (rank, dt) in advances.iter().enumerate() {
            comm.advance(rank, *dt);
        }
        comm.barrier();
        let expected = advances.iter().cloned().fold(0.0, f64::max);
        for rank in 0..4 {
            prop_assert_eq!(comm.time(rank), expected);
        }
    }

    #[test]
    fn redistribute_moves_exactly_the_difference(
        link in link_strategy(),
        old in proptest::collection::vec(0u64..1000, 2..8),
        perm_seed in 0u64..1000,
    ) {
        // Build `new` as a permutation-ish reshuffle conserving the sum.
        let total: u64 = old.iter().sum();
        let n = old.len();
        let mut new = vec![0u64; n];
        let mut remaining = total;
        for (i, slot) in new.iter_mut().enumerate().take(n - 1) {
            let share = (perm_seed.wrapping_mul(31).wrapping_add(i as u64 * 17)) % (remaining + 1);
            *slot = share;
            remaining -= share;
        }
        new[n - 1] = remaining;

        let mut comm = SimComm::new(n, link);
        let moved = comm.redistribute(&old, &new, 8.0).unwrap();
        let expected: u64 = old
            .iter()
            .zip(&new)
            .map(|(&o, &nw)| o.saturating_sub(nw))
            .sum();
        prop_assert_eq!(moved, expected);
        // Non-trivial moves cost time.
        prop_assert!(moved == 0 || comm.max_time() > 0.0);
    }

    #[test]
    fn cpu_time_is_monotone_in_units(
        d1 in 1u64..100_000,
        d2 in 1u64..100_000,
    ) {
        let profile = WorkloadProfile::matrix_update(16);
        let dev = cluster::fast_cpu("c", 1);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(dev.ideal_time(lo, &profile) <= dev.ideal_time(hi, &profile) + 1e-12);
    }

    #[test]
    fn gpu_time_is_monotone_in_units(
        d1 in 1u64..100_000,
        d2 in 1u64..100_000,
    ) {
        let profile = WorkloadProfile::matrix_update(16);
        let dev = cluster::gpu("g", 1, true);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(dev.ideal_time(lo, &profile) <= dev.ideal_time(hi, &profile) + 1e-12);
    }

    #[test]
    fn measured_time_is_positive_and_bounded(
        d in 1u64..200_000,
        run in 0u64..100,
        seed in 0u64..100,
    ) {
        let profile = WorkloadProfile::matrix_update(16);
        let dev = cluster::slow_cpu("s", seed);
        let t = dev.measured_time(d, &profile, run);
        let ideal = dev.ideal_time(d, &profile);
        prop_assert!(t > 0.0);
        // Noise is 2%; the clamp guarantees at worst 5% of ideal and the
        // two-uniform sum is within ±2 sigma-equivalents.
        prop_assert!(t > 0.04 * ideal && t < 2.0 * ideal, "t={t} ideal={ideal}");
    }

    #[test]
    fn link_cost_is_monotone_in_bytes(
        link in link_strategy(),
        b1 in 0.0f64..1e9,
        b2 in 0.0f64..1e9,
    ) {
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(link.cost(lo) <= link.cost(hi));
    }
}
