//! Interpolation of empirical functions.
//!
//! The framework approximates the *time function* `t(x)` of a device
//! from a handful of measured points and then derives the speed
//! `s(x) = complexity(x) / t(x)`. Two interpolants are provided,
//! matching the paper's two functional performance models:
//!
//! * [`PiecewiseLinear`] — exact piecewise-linear interpolation, used by
//!   the piecewise FPM (after coarsening to the Lastovetsky–Reddy shape
//!   restrictions, which lives in `fupermod-core`).
//! * [`AkimaSpline`] — Akima's 1970 local cubic spline, used by the
//!   Akima FPM; it is smooth, has a continuous first derivative (needed
//!   by the Newton-based partitioner) and does not overshoot the way
//!   global cubic splines do.

mod akima;
mod cubic;
mod piecewise;

pub use akima::AkimaSpline;
pub use cubic::CubicSpline;
pub use piecewise::PiecewiseLinear;

use crate::error::invalid;
use crate::NumError;

/// A univariate interpolant over a finite abscissa range with linear
/// extrapolation outside it.
///
/// Implementations guarantee that `value` reproduces the data points
/// exactly and that `derivative` is consistent with `value` (exact for
/// the piecewise-linear case, analytic for splines).
pub trait Interpolation {
    /// Interpolated value at `x`. Outside [`Interpolation::domain`] the
    /// function is extended linearly using the boundary derivative, so
    /// solvers can probe slightly beyond the data without blowing up.
    fn value(&self, x: f64) -> f64;

    /// First derivative at `x` (constant outside the domain).
    fn derivative(&self, x: f64) -> f64;

    /// Closed abscissa range `[min, max]` covered by the data.
    fn domain(&self) -> (f64, f64);
}

/// Validates interpolation input: at least two points, finite values,
/// strictly increasing abscissas. Shared by both interpolants.
pub(crate) fn validate_points(xs: &[f64], ys: &[f64]) -> Result<(), NumError> {
    if xs.len() != ys.len() {
        return Err(invalid(format!(
            "abscissa/ordinate length mismatch: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(invalid("interpolation requires at least two points"));
    }
    for (x, y) in xs.iter().zip(ys) {
        if !x.is_finite() || !y.is_finite() {
            return Err(invalid("interpolation points must be finite"));
        }
    }
    for w in xs.windows(2) {
        if w[1] <= w[0] {
            return Err(invalid(format!(
                "abscissas must be strictly increasing ({} then {})",
                w[0], w[1]
            )));
        }
    }
    Ok(())
}

/// Finds the interval index `i` such that `xs[i] <= x < xs[i+1]`,
/// clamped to the valid segment range.
///
/// Implemented with `partition_point` (branchless comparisons on the
/// happy path) rather than `binary_search_by`'s three-way comparator:
/// the number of elements `<= x` minus one is exactly the segment
/// index, with the two clamps handling `x` below the first node and at
/// or beyond the last. This is the innermost operation of every spline
/// evaluation in the partitioners' Newton/bisection loops.
pub(crate) fn segment_index(xs: &[f64], x: f64) -> usize {
    xs.partition_point(|&v| v <= x)
        .saturating_sub(1)
        .min(xs.len() - 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_input() {
        assert!(validate_points(&[1.0], &[1.0]).is_err());
        assert!(validate_points(&[1.0, 2.0], &[1.0]).is_err());
        assert!(validate_points(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(validate_points(&[2.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(validate_points(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
        assert!(validate_points(&[1.0, 2.0], &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn segment_index_covers_all_cases() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(segment_index(&xs, -1.0), 0);
        assert_eq!(segment_index(&xs, 0.0), 0);
        assert_eq!(segment_index(&xs, 0.5), 0);
        assert_eq!(segment_index(&xs, 1.0), 1);
        assert_eq!(segment_index(&xs, 2.9), 2);
        assert_eq!(segment_index(&xs, 3.0), 2);
        assert_eq!(segment_index(&xs, 9.0), 2);
    }
}
