use serde::{Deserialize, Serialize};

use super::{segment_index, validate_points, Interpolation};
use crate::solve::solve_tridiagonal;
use crate::NumError;

/// Natural cubic spline interpolant (C² smooth, zero second derivative
/// at the ends).
///
/// Included as the classic *global* smooth interpolant the Akima
/// spline is usually compared against: it minimises curvature but
/// couples every segment, so a single memory-hierarchy cliff in the
/// data produces oscillation (overshoot) several segments away — the
/// behaviour that motivates the paper's choice of Akima interpolation
/// for the FPM (see the `exp8_interpolation_error` experiment).
///
/// # Examples
///
/// ```
/// use fupermod_num::interp::{CubicSpline, Interpolation};
///
/// # fn main() -> Result<(), fupermod_num::NumError> {
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [0.0, 1.0, 8.0, 27.0];
/// let f = CubicSpline::new(&xs, &ys)?;
/// assert!((f.value(1.0) - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the nodes.
    m2: Vec<f64>,
}

impl CubicSpline {
    /// Builds the spline. With two points it degenerates to the
    /// straight line through them.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] under the same conditions as
    /// [`PiecewiseLinear::new`](super::PiecewiseLinear::new).
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        validate_points(xs, ys)?;
        let n = xs.len();
        let mut m2 = vec![0.0; n];
        if n > 2 {
            // Tridiagonal system for interior second derivatives.
            let rows = n - 2;
            let mut sub = vec![0.0; rows];
            let mut diag = vec![0.0; rows];
            let mut sup = vec![0.0; rows];
            let mut rhs = vec![0.0; rows];
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                let k = i - 1;
                sub[k] = h0;
                diag[k] = 2.0 * (h0 + h1);
                sup[k] = h1;
                rhs[k] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            let interior = solve_tridiagonal(&sub, &diag, &sup, &rhs)?;
            m2[1..n - 1].copy_from_slice(&interior);
        }
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            m2,
        })
    }

    /// The interpolation nodes' abscissas.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The interpolation nodes' ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

impl Interpolation for CubicSpline {
    fn value(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo {
            return self.ys[0] + self.derivative(lo) * (x - lo);
        }
        if x > hi {
            let n = self.xs.len() - 1;
            return self.ys[n] + self.derivative(hi) * (x - hi);
        }
        let i = segment_index(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.m2[i] + (b * b * b - b) * self.m2[i + 1]) * h * h / 6.0
    }

    fn derivative(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        let x = x.clamp(lo, hi);
        let i = segment_index(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        (self.ys[i + 1] - self.ys[i]) / h
            + ((3.0 * b * b - 1.0) * self.m2[i + 1] - (3.0 * a * a - 1.0) * self.m2[i]) * h / 6.0
    }

    fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty by invariant"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_points() {
        let xs = [0.0, 1.0, 2.5, 4.0, 6.0];
        let ys = [1.0, -1.0, 0.5, 3.0, 2.0];
        let f = CubicSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((f.value(*x) - y).abs() < 1e-10, "at x={x}");
        }
    }

    #[test]
    fn exact_on_linear_data() {
        let xs = [0.0, 1.0, 3.0, 7.0];
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x - 2.0).collect();
        let f = CubicSpline::new(&xs, &ys).unwrap();
        for i in 0..=70 {
            let x = i as f64 * 0.1;
            assert!((f.value(x) - (4.0 * x - 2.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn two_points_degenerate_to_line() {
        let f = CubicSpline::new(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        assert!((f.value(1.0) - 3.0).abs() < 1e-12);
        assert!((f.derivative(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn second_derivative_vanishes_at_ends() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 2.0, -1.0, 3.0, 1.0];
        let f = CubicSpline::new(&xs, &ys).unwrap();
        // Numerical second derivative near the ends ~ 0.
        let h = 1e-4;
        let d2 = |x: f64| (f.value(x + h) - 2.0 * f.value(x) + f.value(x - h)) / (h * h);
        assert!(d2(0.0 + 2.0 * h).abs() < 0.3);
        assert!(d2(4.0 - 2.0 * h).abs() < 0.3);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let xs = [0.0, 1.0, 2.0, 3.5, 5.0];
        let ys = [0.0, 0.8, 0.9, 2.5, 2.4];
        let f = CubicSpline::new(&xs, &ys).unwrap();
        let h = 1e-6;
        for i in 1..50 {
            let x = i as f64 * 0.1;
            let fd = (f.value(x + h) - f.value(x - h)) / (2.0 * h);
            assert!((f.derivative(x) - fd).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn overshoots_at_cliffs_unlike_akima() {
        // A flat-then-cliff dataset: natural cubic oscillates below the
        // flat level before the cliff; Akima stays flat. This is the
        // documented motivation for Akima in the FPM.
        use super::super::AkimaSpline;
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 1.0, 1.0, 1.0, 10.0, 10.0];
        let cubic = CubicSpline::new(&xs, &ys).unwrap();
        let akima = AkimaSpline::new(&xs, &ys).unwrap();
        let mut cubic_dev = 0.0_f64;
        let mut akima_dev = 0.0_f64;
        for i in 0..=20 {
            let x = i as f64 * 0.1; // flat region [0, 2]
            cubic_dev = cubic_dev.max((cubic.value(x) - 1.0).abs());
            akima_dev = akima_dev.max((akima.value(x) - 1.0).abs());
        }
        assert!(
            cubic_dev > 10.0 * akima_dev.max(1e-12),
            "cubic {cubic_dev} vs akima {akima_dev}"
        );
    }
}
