use serde::{Deserialize, Serialize};

use super::{segment_index, validate_points, Interpolation};
use crate::NumError;

/// Exact piecewise-linear interpolant through a set of points.
///
/// Outside the data range the function continues linearly with the
/// slope of the first/last segment, matching the behaviour the
/// geometrical partitioning algorithm expects (the speed of a device is
/// assumed constant beyond the largest benchmarked size).
///
/// # Examples
///
/// ```
/// use fupermod_num::interp::{Interpolation, PiecewiseLinear};
///
/// # fn main() -> Result<(), fupermod_num::NumError> {
/// let f = PiecewiseLinear::new(&[0.0, 2.0, 4.0], &[0.0, 4.0, 4.0])?;
/// assert_eq!(f.value(1.0), 2.0);
/// assert_eq!(f.value(3.0), 4.0);
/// assert_eq!(f.derivative(1.0), 2.0);
/// assert_eq!(f.derivative(3.0), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PiecewiseLinear {
    /// Builds the interpolant.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] if fewer than two points are
    /// given, lengths mismatch, values are non-finite, or abscissas are
    /// not strictly increasing.
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        validate_points(xs, ys)?;
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        })
    }

    /// The interpolation nodes' abscissas.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The interpolation nodes' ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    fn slope(&self, seg: usize) -> f64 {
        (self.ys[seg + 1] - self.ys[seg]) / (self.xs[seg + 1] - self.xs[seg])
    }
}

impl Interpolation for PiecewiseLinear {
    fn value(&self, x: f64) -> f64 {
        let seg = segment_index(&self.xs, x);
        self.ys[seg] + self.slope(seg) * (x - self.xs[seg])
    }

    fn derivative(&self, x: f64) -> f64 {
        self.slope(segment_index(&self.xs, x))
    }

    fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty by invariant"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_points() {
        let xs = [1.0, 2.0, 5.0, 9.0];
        let ys = [3.0, -1.0, 4.0, 4.0];
        let f = PiecewiseLinear::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((f.value(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolates_linearly_between_points() {
        let f = PiecewiseLinear::new(&[0.0, 10.0], &[0.0, 100.0]).unwrap();
        assert!((f.value(2.5) - 25.0).abs() < 1e-12);
        assert!((f.derivative(7.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_with_boundary_slopes() {
        let f = PiecewiseLinear::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 1.0]).unwrap();
        // Left of domain: slope 1.
        assert!((f.value(-1.0) + 1.0).abs() < 1e-12);
        // Right of domain: slope 0.
        assert!((f.value(5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn domain_reports_data_range() {
        let f = PiecewiseLinear::new(&[2.0, 3.0, 7.0], &[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(f.domain(), (2.0, 7.0));
    }
}
