use serde::{Deserialize, Serialize};

use super::{segment_index, validate_points, Interpolation};
use crate::NumError;

/// Akima (1970) local cubic spline interpolant.
///
/// Akima's method fits a cubic Hermite segment between each pair of
/// points, with node derivatives chosen from a weighted average of
/// neighbouring secant slopes. The weights suppress oscillation near
/// abrupt slope changes, which is exactly what empirical speed functions
/// of real kernels look like around memory-hierarchy boundaries — the
/// reason the paper's Akima FPM uses it (Fig. 2(b)).
///
/// End conditions follow Akima's original recipe: two virtual slopes are
/// added at each end by quadratic extrapolation.
///
/// # Examples
///
/// ```
/// use fupermod_num::interp::{AkimaSpline, Interpolation};
///
/// # fn main() -> Result<(), fupermod_num::NumError> {
/// // Akima interpolation reproduces straight lines exactly.
/// let xs = [0.0, 1.0, 3.0, 4.0, 7.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// let f = AkimaSpline::new(&xs, &ys)?;
/// assert!((f.value(2.2) - 5.4).abs() < 1e-12);
/// assert!((f.derivative(5.0) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AkimaSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Node derivatives, one per point.
    ds: Vec<f64>,
    /// Per-segment quadratic Hermite coefficients, one per segment,
    /// precomputed at construction. Evaluation used to re-derive these
    /// (two divisions each) on *every* `value()`/`derivative()` call —
    /// a measurable cost inside the Newton and bisection loops of the
    /// partitioners, which evaluate splines thousands of times per
    /// partition. See `hermite_from_nodes` for the derivation.
    c2: Vec<f64>,
    /// Per-segment cubic Hermite coefficients (see [`Self::c2`]).
    c3: Vec<f64>,
}

/// Hermite coefficients of the cubic through `(0, y0)`–`(h, y1)` with
/// end derivatives `d0`, `d1`, in the monomial basis relative to the
/// segment's left node: `y(t) = y0 + t (d0 + t (c2 + t c3))`.
///
/// This is the exact computation the evaluator used to repeat per
/// call; it now runs once per segment at construction, so cached and
/// recomputed evaluation are bit-identical.
pub(crate) fn hermite_from_nodes(h: f64, y0: f64, y1: f64, d0: f64, d1: f64) -> (f64, f64) {
    let m = (y1 - y0) / h;
    let c2 = (3.0 * m - 2.0 * d0 - d1) / h;
    let c3 = (d0 + d1 - 2.0 * m) / (h * h);
    (c2, c3)
}

/// Akima node derivative from the four surrounding secant slopes
/// `m[i-2], m[i-1], m[i], m[i+1]` — a weighted mean of the two central
/// slopes, weighted by the slope variation on the far sides. Factored
/// out so that [`AkimaSpline::new`] and the incremental
/// [`AkimaSpline::set_y`] patch use the *same* arithmetic and stay
/// bit-identical.
#[inline]
fn akima_derivative(m_im2: f64, m_im1: f64, m_i: f64, m_ip1: f64) -> f64 {
    let w1 = (m_ip1 - m_i).abs();
    let w2 = (m_im1 - m_im2).abs();
    if w1 + w2 == 0.0 {
        0.5 * (m_im1 + m_i)
    } else {
        (w1 * m_im1 + w2 * m_i) / (w1 + w2)
    }
}

impl AkimaSpline {
    /// Builds the spline.
    ///
    /// With exactly two points the spline degenerates to the straight
    /// line through them.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] under the same conditions as
    /// [`PiecewiseLinear::new`](super::PiecewiseLinear::new).
    pub fn new(xs: &[f64], ys: &[f64]) -> Result<Self, NumError> {
        validate_points(xs, ys)?;
        let n = xs.len();

        // Secant slopes with two virtual entries on each side
        // (quadratic extrapolation): m[-2], m[-1], m[0..n-1], m[n-1], m[n].
        // Stored shifted by 2: ext[i + 2] = m[i].
        let mut ext = vec![0.0; n + 3];
        for i in 0..n - 1 {
            ext[i + 2] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        if n == 2 {
            // Straight line: all virtual slopes equal the single secant.
            let m = ext[2];
            ext.fill(m);
        } else {
            ext[1] = 2.0 * ext[2] - ext[3];
            ext[0] = 2.0 * ext[1] - ext[2];
            ext[n + 1] = 2.0 * ext[n] - ext[n - 1];
            ext[n + 2] = 2.0 * ext[n + 1] - ext[n];
        }

        // Akima node derivative: weighted mean of the two central
        // slopes, weighted by the slope variation on the far sides.
        let mut ds = vec![0.0; n];
        for (i, d) in ds.iter_mut().enumerate() {
            *d = akima_derivative(ext[i], ext[i + 1], ext[i + 2], ext[i + 3]);
        }

        // Precompute per-segment Hermite coefficients once. Evaluation
        // is now a segment lookup plus a fused polynomial — no
        // divisions on the hot path.
        let mut c2 = vec![0.0; n - 1];
        let mut c3 = vec![0.0; n - 1];
        for seg in 0..n - 1 {
            let h = xs[seg + 1] - xs[seg];
            let (a, b) = hermite_from_nodes(h, ys[seg], ys[seg + 1], ds[seg], ds[seg + 1]);
            c2[seg] = a;
            c3[seg] = b;
        }

        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            ds,
            c2,
            c3,
        })
    }

    /// The interpolation nodes' abscissas.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The interpolation nodes' ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The Akima node derivatives, one per point. Exposed so that
    /// reference implementations (benchmarks, parity tests) can
    /// re-derive segment coefficients the way the evaluator used to.
    pub fn derivatives(&self) -> &[f64] {
        &self.ds
    }

    /// Hermite coefficients for segment `seg`, relative to `xs[seg]` —
    /// now a cache lookup instead of a re-derivation.
    #[inline]
    fn hermite(&self, seg: usize) -> (f64, f64, f64, f64) {
        (self.ys[seg], self.ds[seg], self.c2[seg], self.c3[seg])
    }

    /// Replaces node `i`'s ordinate and repairs the spline *locally*.
    ///
    /// A node ordinate only reaches the spline through the two secant
    /// slopes it touches, so the damage is bounded: the node
    /// derivatives `ds[i-2 ..= i+2]` and the segment coefficients of
    /// segments `i-3 ..= i+2` (clipped to the spline; slightly wider
    /// when `i` is near an end, where the virtual extrapolated slopes
    /// also move). `set_y` recomputes exactly that window with the
    /// same arithmetic [`Self::new`] uses, so the result is
    /// **bit-identical** to a from-scratch rebuild over the updated
    /// ordinates — the property the incremental model store's
    /// refresh path is pinned to (see `fupermod-store`). Cost is O(1)
    /// per call instead of the O(n) rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInput`] when `y` is not finite.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn set_y(&mut self, i: usize, y: f64) -> Result<(), NumError> {
        if !y.is_finite() {
            return Err(NumError::InvalidInput(format!(
                "node ordinate must be finite, got {y}"
            )));
        }
        let n = self.xs.len();
        assert!(i < n, "node index {i} out of range for {n} nodes");
        self.ys[i] = y;
        if n == 2 {
            // Degenerate straight line: both derivatives are the
            // single secant, one segment.
            let m = (self.ys[1] - self.ys[0]) / (self.xs[1] - self.xs[0]);
            self.ds[0] = m;
            self.ds[1] = m;
            let h = self.xs[1] - self.xs[0];
            let (a, b) = hermite_from_nodes(h, self.ys[0], self.ys[1], m, m);
            self.c2[0] = a;
            self.c3[0] = b;
            return Ok(());
        }
        // Extended secant array entry `e` (`ext[e + 2] = m[e]` in
        // `new`'s indexing), recomputed on demand from the current
        // ordinates with the exact construction-time formulas.
        let m = |j: usize| (self.ys[j + 1] - self.ys[j]) / (self.xs[j + 1] - self.xs[j]);
        let ext = |e: usize| -> f64 {
            if (2..=n).contains(&e) {
                m(e - 2)
            } else if e == 1 {
                2.0 * m(0) - m(1)
            } else if e == 0 {
                let e1 = 2.0 * m(0) - m(1);
                2.0 * e1 - m(0)
            } else if e == n + 1 {
                2.0 * m(n - 2) - m(n - 3)
            } else {
                let enp1 = 2.0 * m(n - 2) - m(n - 3);
                2.0 * enp1 - m(n - 2)
            }
        };
        // Changed secants are m[i-1] and m[i] (ext entries i+1, i+2);
        // each ext entry e feeds derivatives e-3 ..= e, and the
        // virtual-end entries that may move are already inside this
        // window when i is near an end — so ds[i-2 ..= i+2] is a
        // (tight enough) superset of everything that can change.
        let d_lo = i.saturating_sub(2);
        let d_hi = (i + 2).min(n - 1);
        for j in d_lo..=d_hi {
            self.ds[j] = akima_derivative(ext(j), ext(j + 1), ext(j + 2), ext(j + 3));
        }
        // Segment seg reads ys/ds at seg and seg+1: patch i-3 ..= i+2.
        let s_lo = i.saturating_sub(3);
        let s_hi = (i + 2).min(n - 2);
        for seg in s_lo..=s_hi {
            let h = self.xs[seg + 1] - self.xs[seg];
            let (a, b) = hermite_from_nodes(
                h,
                self.ys[seg],
                self.ys[seg + 1],
                self.ds[seg],
                self.ds[seg + 1],
            );
            self.c2[seg] = a;
            self.c3[seg] = b;
        }
        Ok(())
    }
}

impl Interpolation for AkimaSpline {
    fn value(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        // Linear extension keeps solvers well-behaved outside the data.
        if x < lo {
            return self.ys[0] + self.ds[0] * (x - lo);
        }
        if x > hi {
            let last = self.ds.len() - 1;
            return self.ys[last] + self.ds[last] * (x - hi);
        }
        let seg = segment_index(&self.xs, x);
        let (c0, c1, c2, c3) = self.hermite(seg);
        let t = x - self.xs[seg];
        c0 + t * (c1 + t * (c2 + t * c3))
    }

    fn derivative(&self, x: f64) -> f64 {
        let (lo, hi) = self.domain();
        if x < lo {
            return self.ds[0];
        }
        if x > hi {
            return *self.ds.last().expect("non-empty by invariant");
        }
        let seg = segment_index(&self.xs, x);
        let (_, c1, c2, c3) = self.hermite(seg);
        let t = x - self.xs[seg];
        c1 + t * (2.0 * c2 + t * 3.0 * c3)
    }

    fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty by invariant"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(f: &AkimaSpline, g: impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
        (0..=200)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / 200.0;
                (f.value(x) - g(x)).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn passes_through_points() {
        let xs = [0.0, 0.7, 1.5, 2.2, 4.0, 5.5];
        let ys = [1.0, -0.3, 2.0, 2.0, -1.0, 0.4];
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((f.value(*x) - y).abs() < 1e-12, "at x={x}");
        }
    }

    #[test]
    fn exact_on_linear_data() {
        let xs = [0.0, 1.0, 2.5, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 0.5).collect();
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        assert!(max_err(&f, |x| -3.0 * x + 0.5, 0.0, 8.0) < 1e-12);
    }

    #[test]
    fn exact_on_quadratic_interior() {
        // Akima reproduces quadratics away from the ends (where the
        // virtual-slope extrapolation is itself quadratic-exact).
        let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        assert!(max_err(&f, |x| x * x, 1.0, 9.0) < 1e-9);
    }

    #[test]
    fn two_points_degenerate_to_line() {
        let f = AkimaSpline::new(&[1.0, 3.0], &[2.0, 6.0]).unwrap();
        assert!((f.value(2.0) - 4.0).abs() < 1e-12);
        assert!((f.derivative(1.5) - 2.0).abs() < 1e-12);
        // Extrapolation continues the line.
        assert!((f.value(0.0) - 0.0).abs() < 1e-12);
        assert!((f.value(4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn flat_region_stays_flat() {
        // Akima's signature property: the interior of a run of identical
        // ordinates does not pick up oscillation from neighbouring
        // slopes. (The segment immediately adjacent to the rise is
        // allowed to bend — the weights there are both zero and the
        // tie-break averages the slopes, same as GSL.)
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0];
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        for i in 0..=20 {
            let x = i as f64 * 0.1;
            assert!(f.value(x).abs() < 1e-12, "flat region disturbed at {x}");
        }
    }

    #[test]
    fn derivative_is_consistent_with_value() {
        let xs = [0.0, 1.0, 2.0, 3.5, 5.0, 6.0];
        let ys = [0.0, 0.8, 0.9, 2.5, 2.4, 3.0];
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        let h = 1e-6;
        for i in 1..60 {
            let x = i as f64 * 0.1;
            let fd = (f.value(x + h) - f.value(x - h)) / (2.0 * h);
            assert!(
                (f.derivative(x) - fd).abs() < 1e-5,
                "x={x}: analytic {} vs fd {fd}",
                f.derivative(x)
            );
        }
    }

    #[test]
    fn cached_coefficients_match_recomputation_bitwise() {
        // The cached c2/c3 must be exactly what the evaluator used to
        // derive per call, so caching cannot change any result.
        let xs = [1.0, 2.0, 4.0, 7.0, 11.0, 16.0];
        let ys = [0.3, 1.9, -0.5, 2.2, 2.1, 5.0];
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        let ds = f.derivatives();
        for seg in 0..xs.len() - 1 {
            let h = xs[seg + 1] - xs[seg];
            let (c2, c3) =
                hermite_from_nodes(h, ys[seg], ys[seg + 1], ds[seg], ds[seg + 1]);
            // Evaluate mid-segment through the public API and through
            // the reference polynomial; bit-identical.
            let x = xs[seg] + 0.37 * h;
            let t = x - xs[seg];
            let want = ys[seg] + t * (ds[seg] + t * (c2 + t * c3));
            assert_eq!(f.value(x).to_bits(), want.to_bits(), "segment {seg}");
            let want_d = ds[seg] + t * (2.0 * c2 + t * 3.0 * c3);
            assert_eq!(f.derivative(x).to_bits(), want_d.to_bits(), "segment {seg}");
        }
    }

    /// Bitwise equality of every stored coefficient array — stricter
    /// than `PartialEq` (which would conflate `0.0` and `-0.0`).
    fn assert_bitwise_eq(a: &AkimaSpline, b: &AkimaSpline, ctx: &str) {
        assert_eq!(a.xs().len(), b.xs().len(), "{ctx}: node count");
        for (i, (x, y)) in a.xs().iter().zip(b.xs()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: xs[{i}]");
        }
        for (i, (x, y)) in a.ys().iter().zip(b.ys()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: ys[{i}]");
        }
        for (i, (x, y)) in a.derivatives().iter().zip(b.derivatives()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: ds[{i}]");
        }
        for (i, (x, y)) in a.c2.iter().zip(&b.c2).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: c2[{i}]");
        }
        for (i, (x, y)) in a.c3.iter().zip(&b.c3).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: c3[{i}]");
        }
    }

    #[test]
    fn set_y_matches_rebuild_bitwise_at_every_node() {
        // Patch each node in turn (including both ends, where the
        // virtual extrapolated slopes move) and compare against a
        // from-scratch rebuild — every coefficient bit-identical.
        for n in [2usize, 3, 4, 5, 8, 13] {
            let xs: Vec<f64> = (0..n).map(|i| (i * i + i + 1) as f64 * 0.5).collect();
            let mut ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).sin() + 0.1 * x).collect();
            let mut patched = AkimaSpline::new(&xs, &ys).unwrap();
            for i in 0..n {
                let y = ys[i] * 1.25 - 0.3;
                patched.set_y(i, y).unwrap();
                ys[i] = y;
                let rebuilt = AkimaSpline::new(&xs, &ys).unwrap();
                assert_bitwise_eq(&patched, &rebuilt, &format!("n={n} node {i}"));
            }
        }
    }

    #[test]
    fn set_y_rejects_non_finite() {
        let mut f = AkimaSpline::new(&[0.0, 1.0, 2.0], &[0.0, 1.0, 0.0]).unwrap();
        assert!(f.set_y(1, f64::NAN).is_err());
        assert!(f.set_y(1, f64::INFINITY).is_err());
        // The failed calls must not have corrupted the spline... but a
        // rejected ordinate is never written: ys is only assigned
        // after validation.
        let g = AkimaSpline::new(&[0.0, 1.0, 2.0], &[0.0, f.ys()[1], 0.0]).unwrap();
        assert_bitwise_eq(&f, &g, "after rejected set_y");
    }

    #[test]
    fn continuous_at_nodes() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 2.0, 1.0, 3.0, 0.0];
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        for &x in &xs[1..4] {
            let eps = 1e-9;
            assert!((f.value(x - eps) - f.value(x + eps)).abs() < 1e-6);
            assert!((f.derivative(x - eps) - f.derivative(x + eps)).abs() < 1e-4);
        }
    }
}
