//! Largest-remainder integer apportionment.
//!
//! Data-partitioning algorithms compute a *continuous* optimal
//! distribution, but the framework hands out whole computation units.
//! The largest-remainder (Hamilton) method rounds the continuous shares
//! to integers while guaranteeing the total is preserved exactly and no
//! share moves by more than one unit from its ideal value.

use crate::error::invalid;
use crate::NumError;

/// Distributes `total` indivisible units over parties with the given
/// non-negative `weights`, proportionally, using the largest-remainder
/// method. Ties on the fractional part are broken by lower index, which
/// keeps the result deterministic.
///
/// If all weights are zero the units are spread as evenly as possible.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if `weights` is empty or any
/// weight is negative or non-finite.
///
/// # Examples
///
/// ```
/// use fupermod_num::apportion::largest_remainder;
///
/// # fn main() -> Result<(), fupermod_num::NumError> {
/// let shares = largest_remainder(&[2.0, 1.0, 1.0], 10)?;
/// assert_eq!(shares, vec![5, 3, 2]);
/// assert_eq!(shares.iter().sum::<u64>(), 10);
/// # Ok(())
/// # }
/// ```
pub fn largest_remainder(weights: &[f64], total: u64) -> Result<Vec<u64>, NumError> {
    if weights.is_empty() {
        return Err(invalid("apportionment needs at least one party"));
    }
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(invalid(format!("weights must be finite and >= 0, got {w}")));
        }
    }

    let sum: f64 = weights.iter().sum();
    let ideal: Vec<f64> = if sum > 0.0 {
        weights.iter().map(|w| w / sum * total as f64).collect()
    } else {
        let even = total as f64 / weights.len() as f64;
        vec![even; weights.len()]
    };

    let mut shares: Vec<u64> = ideal.iter().map(|v| v.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    let mut leftover = total - assigned.min(total);

    // Hand the remaining units to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideal[a] - ideal[a].floor();
        let fb = ideal[b] - ideal[b].floor();
        fb.partial_cmp(&fa)
            .expect("finite fractions")
            .then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(weights.len().max(leftover as usize)) {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }

    debug_assert_eq!(shares.iter().sum::<u64>(), total);
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_proportions_stay_exact() {
        assert_eq!(
            largest_remainder(&[1.0, 2.0, 3.0], 12).unwrap(),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn remainders_go_to_largest_fractions() {
        // Ideal shares: 3.75, 3.75, 2.5 → floors 3,3,2, two leftovers to
        // the 0.75s.
        assert_eq!(
            largest_remainder(&[3.0, 3.0, 2.0], 10).unwrap(),
            vec![4, 4, 2]
        );
    }

    #[test]
    fn zero_total_gives_all_zeros() {
        assert_eq!(largest_remainder(&[1.0, 5.0], 0).unwrap(), vec![0, 0]);
    }

    #[test]
    fn all_zero_weights_split_evenly() {
        assert_eq!(
            largest_remainder(&[0.0, 0.0, 0.0], 7).unwrap(),
            vec![3, 2, 2]
        );
    }

    #[test]
    fn single_party_takes_everything() {
        assert_eq!(largest_remainder(&[0.123], 42).unwrap(), vec![42]);
    }

    #[test]
    fn zero_weight_party_can_still_receive_from_even_split_only() {
        let shares = largest_remainder(&[0.0, 1.0], 5).unwrap();
        assert_eq!(shares, vec![0, 5]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(largest_remainder(&[], 3).is_err());
        assert!(largest_remainder(&[-1.0, 2.0], 3).is_err());
        assert!(largest_remainder(&[f64::NAN], 3).is_err());
    }

    #[test]
    fn conserves_total_on_awkward_fractions() {
        let weights = [0.1, 0.2, 0.3, 0.15, 0.25];
        for total in [1u64, 7, 97, 1000, 12345] {
            let shares = largest_remainder(&weights, total).unwrap();
            assert_eq!(shares.iter().sum::<u64>(), total, "total={total}");
        }
    }

    #[test]
    fn shares_within_one_unit_of_ideal() {
        let weights = [5.0, 1.0, 3.5, 0.5];
        let total = 1001u64;
        let sum: f64 = weights.iter().sum();
        let shares = largest_remainder(&weights, total).unwrap();
        for (s, w) in shares.iter().zip(&weights) {
            let ideal = w / sum * total as f64;
            assert!(
                (*s as f64 - ideal).abs() < 1.0 + 1e-9,
                "share {s} too far from ideal {ideal}"
            );
        }
    }
}
