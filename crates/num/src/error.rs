use std::error::Error;
use std::fmt;

/// Error type for all numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// The caller supplied input the routine cannot work with
    /// (empty data, unsorted abscissas, invalid bracket, ...).
    InvalidInput(String),
    /// An iterative method failed to converge within its iteration
    /// budget.
    NoConvergence {
        /// Name of the method that gave up.
        method: &'static str,
        /// Residual (method-specific norm) at the point of giving up.
        residual: f64,
    },
    /// A linear system was singular (or numerically so) and could not be
    /// solved.
    SingularMatrix,
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            NumError::NoConvergence { method, residual } => {
                write!(f, "{method} failed to converge (residual {residual:e})")
            }
            NumError::SingularMatrix => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl Error for NumError {}

pub(crate) fn invalid(msg: impl Into<String>) -> NumError {
    NumError::InvalidInput(msg.into())
}
