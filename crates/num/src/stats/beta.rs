use super::gamma::ln_gamma;

/// Natural logarithm of the complete beta function `B(a, b)`.
///
/// # Panics
///
/// Panics if `a` or `b` is not finite and positive.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x` in `[0, 1]`, evaluated with the modified Lentz continued fraction.
///
/// This is the workhorse behind the Student-t CDF.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::regularized_incomplete_beta;
/// // I_x(1, 1) = x (the uniform CDF)
/// assert!((regularized_incomplete_beta(0.37, 1.0, 1.0) - 0.37).abs() < 1e-12);
/// ```
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete beta requires x in [0,1], got {x}"
    );
    assert!(a > 0.0 && b > 0.0, "incomplete beta requires a,b > 0");

    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }

    // Prefactor x^a (1-x)^b / (a B(a,b)), computed in log space.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);

    // Use the continued fraction directly when it converges fast,
    // otherwise via the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_continued_fraction(x, a, b)
    } else {
        1.0 - (ln_front.exp() / b) * beta_continued_fraction(1.0 - x, b, a)
    }
}

/// Modified Lentz evaluation of the continued fraction for the
/// incomplete beta function (Numerical Recipes `betacf`).
fn beta_continued_fraction(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;

    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;

        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;

        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_case_is_identity() {
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            assert!((regularized_incomplete_beta(x, 1.0, 1.0) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 0.5, 0.5), (0.42, 10.0, 3.0)] {
            let lhs = regularized_incomplete_beta(x, a, b);
            let rhs = 1.0 - regularized_incomplete_beta(1.0 - x, b, a);
            assert!((lhs - rhs).abs() < 1e-10, "x={x} a={a} b={b}");
        }
    }

    #[test]
    fn known_values() {
        // I_{0.5}(0.5, 0.5) = 0.5 (arcsine distribution median).
        assert!((regularized_incomplete_beta(0.5, 0.5, 0.5) - 0.5).abs() < 1e-10);
        // I_x(2,2) = x^2 (3 - 2x)
        for &x in &[0.2, 0.5, 0.8] {
            let expected = x * x * (3.0 - 2.0 * x);
            assert!((regularized_incomplete_beta(x, 2.0, 2.0) - expected).abs() < 1e-10);
        }
        // I_x(3,1) = x^3
        assert!((regularized_incomplete_beta(0.7, 3.0, 1.0) - 0.343).abs() < 1e-10);
    }

    #[test]
    fn monotone_in_x() {
        let mut last = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = regularized_incomplete_beta(x, 3.5, 2.25);
            assert!(v >= last - 1e-14);
            last = v;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ln_beta_matches_definition() {
        // B(2, 3) = 1/12
        assert!((ln_beta(2.0, 3.0) - (1.0 / 12.0f64).ln()).abs() < 1e-12);
    }
}
