//! Summary statistics and the Student-t machinery used by the benchmark
//! loop to compute confidence intervals.
//!
//! The paper's `fupermod_benchmark` repeats a kernel until "the results
//! are statistically correct": the half-width of the confidence interval
//! of the mean execution time, at a user-chosen confidence level, falls
//! below a relative-error threshold. That requires the Student-t
//! quantile, which we build from scratch: ln-gamma (Lanczos), the
//! regularised incomplete beta function (Lentz continued fraction), the
//! t CDF, and a bracketing quantile inversion.

mod beta;
mod gamma;
mod incremental;
mod robust;
mod student;
mod summary;

pub use beta::{ln_beta, regularized_incomplete_beta};
pub use gamma::ln_gamma;
pub use incremental::IncrementalStats;
pub use robust::{median, median_absolute_deviation, reject_outliers};
pub use student::{student_t_cdf, student_t_quantile, two_sided_critical_value};
pub use summary::{ConfidenceInterval, OnlineStats};
