use serde::{Deserialize, Serialize};

use super::student::two_sided_critical_value;

/// Confidence interval of a mean: `mean ± half_width` at `confidence`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean the interval is centred on.
    pub mean: f64,
    /// Half-width of the interval, in the same units as the mean.
    pub half_width: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width relative to the mean (`half_width / mean`). Returns
    /// infinity for a zero mean so that "not yet reliable" comparisons
    /// behave sensibly.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm), used by
/// the benchmark loop to decide after each repetition whether the
/// measurement is already statistically reliable.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n - 1` denominator); `0.0` with fewer
    /// than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean; `0.0` with fewer than two
    /// observations.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Student-t confidence interval of the mean at the given
    /// confidence level.
    ///
    /// Returns `None` with fewer than two observations (no degrees of
    /// freedom to estimate spread from).
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not strictly inside `(0, 1)`.
    pub fn confidence_interval(&self, confidence: f64) -> Option<ConfidenceInterval> {
        if self.count < 2 {
            return None;
        }
        let df = (self.count - 1) as f64;
        let t = two_sided_critical_value(confidence, df);
        Some(ConfidenceInterval {
            mean: self.mean,
            half_width: t * self.std_error(),
            confidence,
        })
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_inert() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert!(s.confidence_interval(0.95).is_none());
    }

    #[test]
    fn single_observation_has_no_interval() {
        let s: OnlineStats = [3.0].into_iter().collect();
        assert_eq!(s.mean(), 3.0);
        assert!(s.confidence_interval(0.95).is_none());
    }

    #[test]
    fn matches_two_pass_computation() {
        let data = [1.2, 0.9, 1.4, 1.1, 1.05, 0.97, 1.33];
        let s: OnlineStats = data.into_iter().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn interval_shrinks_with_more_data() {
        let mut s = OnlineStats::new();
        // Alternate deterministic values with constant spread.
        for i in 0..4 {
            s.push(if i % 2 == 0 { 1.0 } else { 2.0 });
        }
        let wide = s.confidence_interval(0.95).unwrap().half_width;
        for i in 0..400 {
            s.push(if i % 2 == 0 { 1.0 } else { 2.0 });
        }
        let narrow = s.confidence_interval(0.95).unwrap().half_width;
        assert!(narrow < wide / 4.0, "wide={wide} narrow={narrow}");
    }

    #[test]
    fn relative_error_of_zero_mean_is_infinite() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.1,
            confidence: 0.95,
        };
        assert!(ci.relative_error().is_infinite());
    }

    #[test]
    fn constant_data_has_zero_width_interval() {
        let s: OnlineStats = std::iter::repeat_n(5.0, 10).collect();
        let ci = s.confidence_interval(0.95).unwrap();
        assert_eq!(ci.mean, 5.0);
        assert!(ci.half_width.abs() < 1e-12);
        assert!(ci.relative_error() < 1e-12);
    }
}
