//! Incremental sorted-sample statistics for the benchmark hot loop.
//!
//! The benchmark stopping rule needs, after *every* repetition, the
//! median/MAD-filtered mean and confidence interval of all samples so
//! far. Recomputing [`super::reject_outliers`] from scratch each
//! repetition sorts the sample twice and allocates three vectors —
//! O(n log n) work and several heap round-trips per repetition, O(n²
//! log n) over a measurement. [`IncrementalStats`] instead keeps the
//! sample sorted as it grows:
//!
//! * insertion is one binary search plus an in-place shift
//!   (O(log n) comparisons);
//! * the median is read directly off the sorted sample in O(1);
//! * the MAD is the median of the two *implicitly sorted* deviation
//!   sequences (left of the median, reversed; right of the median) and
//!   is found by the classic two-sorted-arrays selection in O(log n)
//!   without materialising the deviations;
//! * the outlier filter is two `partition_point` probes (O(log n)); in
//!   the common no-outlier case the running Welford accumulator is
//!   returned as-is, so a repetition costs O(log n) amortised. Only
//!   repetitions where outliers are actually present pay an O(n)
//!   re-accumulation (no sorting, no allocation).
//!
//! All results are **bit-identical** to the reference pipeline
//! (`reject_outliers` + `OnlineStats::from_iter` over the kept samples
//! in arrival order): the deviation values `m - x` / `x - m` are exact
//! IEEE negations of the reference's `(x - m).abs()`, and the filtered
//! accumulator is rebuilt over the kept samples in arrival order, not
//! sorted order.

use super::OnlineStats;

/// A growing sample with O(log n)-amortised robust statistics.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::IncrementalStats;
///
/// let mut s = IncrementalStats::new();
/// for x in [1.0, 1.02, 0.98, 50.0] {
///     s.push(x);
/// }
/// assert_eq!(s.median(), Some(1.01));
/// let (kept, rejected) = s.filtered(5.0);
/// assert_eq!(rejected, 1); // the 50.0 spike
/// assert_eq!(kept.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalStats {
    /// Samples in arrival order (the order the reference pipeline
    /// feeds its accumulator in).
    arrived: Vec<f64>,
    /// The same samples, kept ascending.
    sorted: Vec<f64>,
    /// Running Welford accumulator over *all* samples, arrival order.
    all: OnlineStats,
}

impl IncrementalStats {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation (O(log n) search + in-place shift).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `x` is finite; a NaN would poison the sorted
    /// order invariant.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "samples must be finite, got {x}");
        let at = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(at, x);
        self.arrived.push(x);
        self.all.push(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.arrived.len() as u64
    }

    /// The samples in arrival order.
    pub fn samples(&self) -> &[f64] {
        &self.arrived
    }

    /// Running statistics over all samples (no outlier filter).
    pub fn all(&self) -> OnlineStats {
        self.all
    }

    /// Median in O(1); `None` when empty. Matches
    /// [`super::median`] bit-for-bit.
    pub fn median(&self) -> Option<f64> {
        let n = self.sorted.len();
        if n == 0 {
            return None;
        }
        Some(if n % 2 == 1 {
            self.sorted[n / 2]
        } else {
            0.5 * (self.sorted[n / 2 - 1] + self.sorted[n / 2])
        })
    }

    /// Median absolute deviation in O(log n); `None` when empty.
    /// Matches [`super::median_absolute_deviation`] bit-for-bit.
    pub fn mad(&self) -> Option<f64> {
        let m = self.median()?;
        let n = self.sorted.len();
        // Deviations |x - m| split at the median into two implicitly
        // sorted ascending sequences:
        //   left  (x <= m): m - sorted[p-1-t]  for t in 0..p
        //   right (x >  m): sorted[p+t] - m    for t in 0..n-p
        // `m - x` equals the reference's `(x - m).abs()` exactly: IEEE
        // subtraction satisfies a - b == -(b - a) bit-for-bit.
        let p = self.sorted.partition_point(|&v| v <= m);
        let left = |t: usize| m - self.sorted[p - 1 - t];
        let right = |t: usize| self.sorted[p + t] - m;
        let kth = |k: usize| kth_of_two_sorted(&left, p, &right, n - p, k);
        Some(if n % 2 == 1 {
            kth(n / 2)
        } else {
            0.5 * (kth(n / 2 - 1) + kth(n / 2))
        })
    }

    /// Statistics after the `k`-MAD outlier filter, plus the number of
    /// rejected samples. Semantics match
    /// [`super::reject_outliers`] followed by accumulating the kept
    /// samples in arrival order, bit-for-bit:
    ///
    /// * empty sample → empty statistics;
    /// * zero MAD (over half the samples identical) → filter disabled,
    ///   running statistics returned in O(1);
    /// * nothing outside `k` MADs → running statistics in O(log n);
    /// * otherwise → one O(n) pass over the kept samples (no sort, no
    ///   allocation).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn filtered(&self, k: f64) -> (OnlineStats, u64) {
        assert!(k > 0.0, "rejection threshold must be positive");
        let (Some(m), Some(mad)) = (self.median(), self.mad()) else {
            return (OnlineStats::new(), 0);
        };
        if mad == 0.0 {
            return (self.all, 0);
        }
        let radius = k * mad;
        // Kept samples form a contiguous run of the sorted sample:
        //   drop the prefix where m - x >  radius  (left outliers)
        //   drop the suffix where x - m >  radius  (right outliers)
        // Both predicates are monotone along the sorted order, so two
        // partition_point probes find the run in O(log n).
        let lo = self.sorted.partition_point(|&x| m - x > radius);
        let hi = self.sorted.partition_point(|&x| x - m <= radius);
        let rejected = (self.sorted.len() - (hi - lo)) as u64;
        if rejected == 0 {
            return (self.all, 0);
        }
        // Outliers present: re-accumulate the kept samples in arrival
        // order so the result is bit-identical to the reference.
        let stats = self
            .arrived
            .iter()
            .copied()
            .filter(|&x| (x - m).abs() <= radius)
            .collect();
        (stats, rejected)
    }

    /// Reference implementations of median/MAD/filter, for parity
    /// tests and documentation. Costs O(n log n) and allocates; the
    /// incremental methods above must agree bit-for-bit.
    pub fn reference_filtered(&self, k: f64) -> (OnlineStats, u64) {
        let kept = super::reject_outliers(&self.arrived, k);
        let rejected = (self.arrived.len() - kept.len()) as u64;
        (kept.into_iter().collect(), rejected)
    }

    /// Per-sample keep/reject flags of the `k`-MAD filter, arrival
    /// order. Degenerate cases (empty, zero MAD) keep everything,
    /// matching [`Self::filtered`].
    fn kept_flags(&self, k: f64) -> Vec<bool> {
        let (Some(m), Some(mad)) = (self.median(), self.mad()) else {
            return vec![true; self.arrived.len()];
        };
        if mad == 0.0 {
            return vec![true; self.arrived.len()];
        }
        let radius = k * mad;
        self.arrived.iter().map(|&x| (x - m).abs() <= radius).collect()
    }

    /// Adds one observation and reports whether it changed the
    /// `k`-MAD outlier classification of any *previously arrived*
    /// sample (the median/MAD shift can pull old samples in or out of
    /// the kept set).
    ///
    /// This flag exists for incremental-maintenance layers
    /// (`fupermod-store`): a push that reclassifies history means a
    /// derived summary point cannot be patched from the new sample
    /// alone and the consumer should fall back to a full re-derive.
    /// [`Self::filtered`] itself is always bit-identical to the
    /// reference regardless of this flag — it only selects the cheap
    /// path, never correctness.
    ///
    /// Costs O(n): two classification passes around the O(log n)
    /// insert.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive; debug-asserts `x` finite.
    pub fn push_detecting_reclassification(&mut self, x: f64, k: f64) -> bool {
        assert!(k > 0.0, "rejection threshold must be positive");
        let before = self.kept_flags(k);
        self.push(x);
        let after = self.kept_flags(k);
        before.iter().zip(&after).any(|(b, a)| b != a)
    }
}

/// `k`-th smallest (0-based) element of the merge of two ascending
/// sequences given as index functions, in O(log(p + q)) probes — the
/// classic two-sorted-arrays selection.
fn kth_of_two_sorted<L, R>(left: &L, p: usize, right: &R, q: usize, k: usize) -> f64
where
    L: Fn(usize) -> f64,
    R: Fn(usize) -> f64,
{
    debug_assert!(k < p + q, "selection index out of range");
    let take = k + 1; // how many elements of the merge to take
    // Find the smallest feasible split: `ia` from the left sequence,
    // `take - ia` from the right, such that everything taken is <=
    // everything not taken.
    let mut lo = take.saturating_sub(q);
    let mut hi = take.min(p);
    while lo < hi {
        let ia = (lo + hi) / 2;
        let ib = take - ia;
        let l_next = if ia < p { left(ia) } else { f64::INFINITY };
        let r_last = if ib >= 1 { right(ib - 1) } else { f64::NEG_INFINITY };
        if r_last > l_next {
            // Taking this few from the left forces a right element
            // larger than an untaken left element: take more left.
            lo = ia + 1;
        } else {
            hi = ia;
        }
    }
    let ia = lo;
    let ib = take - ia;
    let l_last = if ia >= 1 { left(ia - 1) } else { f64::NEG_INFINITY };
    let r_last = if ib >= 1 { right(ib - 1) } else { f64::NEG_INFINITY };
    l_last.max(r_last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{median, median_absolute_deviation, reject_outliers};

    /// Deterministic pseudo-random stream (xorshift) for parity tests.
    fn stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                // Mix of magnitudes, occasional huge spikes.
                let base = (s % 1000) as f64 / 100.0;
                if s.is_multiple_of(17) {
                    base + 100.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn median_matches_reference_at_every_prefix() {
        let data = stream(42, 64);
        let mut inc = IncrementalStats::new();
        for (i, &x) in data.iter().enumerate() {
            inc.push(x);
            let want = median(&data[..=i]).unwrap();
            assert_eq!(inc.median(), Some(want), "prefix {}", i + 1);
        }
    }

    #[test]
    fn mad_matches_reference_at_every_prefix() {
        for seed in [1, 7, 99, 12345] {
            let data = stream(seed, 48);
            let mut inc = IncrementalStats::new();
            for (i, &x) in data.iter().enumerate() {
                inc.push(x);
                let want = median_absolute_deviation(&data[..=i]).unwrap();
                assert_eq!(
                    inc.mad(),
                    Some(want),
                    "seed {seed} prefix {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn filtered_matches_reference_bitwise_at_every_prefix() {
        for seed in [3, 11, 2024] {
            let data = stream(seed, 48);
            let mut inc = IncrementalStats::new();
            for (i, &x) in data.iter().enumerate() {
                inc.push(x);
                for k in [1.0, 3.0, 5.0] {
                    let (got, got_rej) = inc.filtered(k);
                    let (want, want_rej) = inc.reference_filtered(k);
                    assert_eq!(got_rej, want_rej, "seed {seed} prefix {} k {k}", i + 1);
                    assert_eq!(got.count(), want.count());
                    // Bit-identical, not merely close:
                    assert_eq!(got.mean().to_bits(), want.mean().to_bits());
                    assert_eq!(
                        got.sample_variance().to_bits(),
                        want.sample_variance().to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn zero_mad_returns_running_stats() {
        let mut inc = IncrementalStats::new();
        for x in [2.0, 2.0, 2.0, 2.0, 9.0] {
            inc.push(x);
        }
        // MAD is 0 → filter disabled, everything kept (reference
        // semantics for the degenerate case).
        let (stats, rejected) = inc.filtered(3.0);
        assert_eq!(rejected, 0);
        assert_eq!(stats.count(), 5);
        assert_eq!(reject_outliers(inc.samples(), 3.0).len(), 5);
    }

    #[test]
    fn empty_sample_is_inert() {
        let inc = IncrementalStats::new();
        assert_eq!(inc.median(), None);
        assert_eq!(inc.mad(), None);
        let (stats, rejected) = inc.filtered(5.0);
        assert_eq!(stats.count(), 0);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn kth_selection_agrees_with_full_sort() {
        let data = stream(77, 33);
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Split arbitrarily into two sorted halves and select every k.
        for split in [0, 1, 10, 16, 32, 33] {
            let (a, b) = sorted.split_at(split);
            for (k, &want) in sorted.iter().enumerate() {
                let got = kth_of_two_sorted(&|i| a[i], a.len(), &|i| b[i], b.len(), k);
                assert_eq!(got, want, "split {split} k {k}");
            }
        }
    }

    #[test]
    fn reclassification_is_detected_and_push_stays_equivalent() {
        // A tight cluster, then a spike that is rejected on arrival
        // (arrival itself is not a *re*classification), then enough
        // far samples that the median migrates and the spike is pulled
        // back into the kept set — that migration must be flagged.
        let k = 3.0;
        let mut inc = IncrementalStats::new();
        let mut plain = IncrementalStats::new();
        let mut flagged = Vec::new();
        for &x in &[1.0, 1.1, 0.9, 1.05, 50.0, 48.0, 52.0, 49.0, 51.0, 50.5] {
            let re = inc.push_detecting_reclassification(x, k);
            plain.push(x);
            flagged.push(re);
            // The detecting push must not perturb the statistics.
            let (a, ar) = inc.filtered(k);
            let (b, br) = plain.filtered(k);
            assert_eq!(ar, br);
            assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        }
        assert!(
            flagged.iter().any(|&f| f),
            "median migration never flagged: {flagged:?}"
        );
        // And the flag agrees with a brute-force before/after check.
        let mut reference = IncrementalStats::new();
        for (&x, &want) in [1.0, 1.1, 0.9, 1.05, 50.0, 48.0, 52.0, 49.0, 51.0, 50.5]
            .iter()
            .zip(&flagged)
        {
            let before = reference.kept_flags(k);
            reference.push(x);
            let after = reference.kept_flags(k);
            let got = before.iter().zip(&after).any(|(b, a)| b != a);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn arrival_order_is_preserved() {
        let mut inc = IncrementalStats::new();
        for x in [3.0, 1.0, 2.0] {
            inc.push(x);
        }
        assert_eq!(inc.samples(), &[3.0, 1.0, 2.0]);
        assert_eq!(inc.count(), 3);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_nonpositive_threshold() {
        let mut inc = IncrementalStats::new();
        inc.push(1.0);
        let _ = inc.filtered(0.0);
    }
}
