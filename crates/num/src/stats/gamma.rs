/// Natural logarithm of the gamma function for positive arguments,
/// computed with the Lanczos approximation (g = 7, 9 coefficients).
///
/// Accurate to roughly 14 significant digits over the range used by the
/// Student-t machinery (half-integer and integer arguments up to a few
/// thousand).
///
/// # Panics
///
/// Panics if `x` is not finite and positive; the statistical routines in
/// this crate only ever call it with `x > 0`.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::ln_gamma;
/// // Gamma(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "ln_gamma requires finite x > 0, got {x}"
    );

    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)] // verbatim Lanczos constants
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula keeps the series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "Gamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn half_integer_values() {
        // Gamma(1/2) = sqrt(pi), Gamma(3/2) = sqrt(pi)/2
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-12);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-12);
        assert!((ln_gamma(2.5) - (3.0 * sqrt_pi / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // ln Gamma(x+1) = ln x + ln Gamma(x)
        for &x in &[0.7, 1.3, 4.2, 17.9, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0), "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires")]
    fn rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
