use super::beta::regularized_incomplete_beta;

/// Cumulative distribution function of Student's t distribution with
/// `df` degrees of freedom, evaluated at `t`.
///
/// # Panics
///
/// Panics if `df` is not positive or `t` is NaN.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::student_t_cdf;
/// assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
/// ```
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(!t.is_nan(), "t must not be NaN");

    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * regularized_incomplete_beta(x, 0.5 * df, 0.5);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Quantile (inverse CDF) of Student's t distribution with `df` degrees
/// of freedom at probability `p`, computed by bisection on the CDF.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)` or `df` is not
/// positive.
///
/// # Examples
///
/// ```
/// use fupermod_num::stats::student_t_quantile;
/// // 97.5% quantile with 10 dof is the classic 2.228.
/// let q = student_t_quantile(0.975, 10.0);
/// assert!((q - 2.228).abs() < 1e-3);
/// ```
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "probability must lie strictly in (0,1), got {p}"
    );
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");

    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }

    // The t distribution is symmetric; solve for the upper half only.
    let upper = p >= 0.5;
    let p = if upper { p } else { 1.0 - p };

    // Bracket the quantile: grow the upper end until the CDF exceeds p.
    let mut lo = 0.0;
    let mut hi = 1.0;
    while student_t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }

    // 200 bisection steps give far more precision than f64 needs; the
    // loop exits early once the interval stops shrinking.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid == lo || mid == hi {
            break;
        }
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    let q = 0.5 * (lo + hi);
    if upper {
        q
    } else {
        -q
    }
}

/// Two-sided critical value `t*` such that a fraction `confidence` of
/// the Student-t distribution with `df` degrees of freedom lies within
/// `[-t*, t*]`. This is the multiplier used for confidence intervals of
/// a mean estimated from repeated measurements.
///
/// # Panics
///
/// Panics if `confidence` is not strictly inside `(0, 1)`.
pub fn two_sided_critical_value(confidence: f64, df: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie strictly in (0,1), got {confidence}"
    );
    student_t_quantile(0.5 + 0.5 * confidence, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let up = student_t_cdf(t, df);
                let lo = student_t_cdf(-t, df);
                assert!((up + lo - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn cdf_matches_cauchy_for_one_dof() {
        // t with 1 dof is the standard Cauchy: CDF = 1/2 + atan(t)/pi.
        for &t in &[-3.0f64, -0.5, 0.0, 0.7, 4.2] {
            let expected = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((student_t_cdf(t, 1.0) - expected).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn classic_table_values() {
        // (confidence two-sided, df, critical value) from standard tables.
        let cases = [
            (0.95, 1.0, 12.706),
            (0.95, 2.0, 4.303),
            (0.95, 5.0, 2.571),
            (0.95, 10.0, 2.228),
            (0.95, 30.0, 2.042),
            (0.99, 10.0, 3.169),
            (0.90, 20.0, 1.725),
        ];
        for (cl, df, expected) in cases {
            let got = two_sided_critical_value(cl, df);
            assert!(
                (got - expected).abs() < 2e-3,
                "cl={cl} df={df}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &df in &[2.0, 7.0, 25.0] {
            for &p in &[0.01, 0.2, 0.5, 0.8, 0.975] {
                let q = student_t_quantile(p, df);
                assert!((student_t_cdf(q, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn large_dof_approaches_normal() {
        // 97.5% normal quantile is 1.95996.
        let q = student_t_quantile(0.975, 1e6);
        assert!((q - 1.95996).abs() < 1e-3);
    }
}
