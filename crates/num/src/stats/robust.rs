//! Robust location/scale statistics for outlier-resistant measurement.
//!
//! Real benchmark samples are occasionally polluted by one-off events
//! (daemon wakeups, page faults on first touch). The Student-t interval
//! treats those as genuine variance and can refuse to converge; a
//! standard remedy is to reject samples far from the median in units of
//! the median absolute deviation (MAD) before computing the interval.

/// Median of a sample. For even sizes, the mean of the two central
/// order statistics.
///
/// Returns `None` for an empty sample.
pub fn median(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    })
}

/// Median absolute deviation: `median(|x_i - median(x)|)`, a robust
/// scale estimate (≈ 0.6745·σ for normal data).
///
/// Returns `None` for an empty sample.
pub fn median_absolute_deviation(sample: &[f64]) -> Option<f64> {
    let m = median(sample)?;
    let deviations: Vec<f64> = sample.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Returns the subset of `sample` within `k` MADs of the median —
/// the classic robust outlier filter. With a zero MAD (over half the
/// samples identical) only exact-median values survive, so the filter
/// falls back to returning everything in that degenerate case.
pub fn reject_outliers(sample: &[f64], k: f64) -> Vec<f64> {
    assert!(k > 0.0, "rejection threshold must be positive");
    let Some(m) = median(sample) else {
        return Vec::new();
    };
    let Some(mad) = median_absolute_deviation(sample) else {
        return Vec::new();
    };
    if mad == 0.0 {
        return sample.to_vec();
    }
    sample
        .iter()
        .copied()
        .filter(|x| (x - m).abs() <= k * mad)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_samples() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mad_matches_hand_computation() {
        // Sample 1..=5: median 3, deviations [2,1,0,1,2] → MAD 1.
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median_absolute_deviation(&s), Some(1.0));
    }

    #[test]
    fn rejection_drops_single_spike() {
        let mut s = vec![1.0, 1.02, 0.98, 1.01, 0.99, 1.0, 1.03];
        s.push(50.0); // the daemon wakeup
        let kept = reject_outliers(&s, 5.0);
        assert_eq!(kept.len(), 7);
        assert!(kept.iter().all(|&x| x < 2.0));
    }

    #[test]
    fn rejection_keeps_clean_data() {
        let s = [1.0, 1.1, 0.9, 1.05, 0.95];
        let kept = reject_outliers(&s, 5.0);
        assert_eq!(kept.len(), s.len());
    }

    #[test]
    fn zero_mad_degenerates_to_identity() {
        // More than half identical → MAD 0 → keep everything.
        let s = [2.0, 2.0, 2.0, 2.0, 9.0];
        let kept = reject_outliers(&s, 3.0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn mad_is_robust_where_stddev_is_not() {
        let clean = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.97];
        let mut dirty = clean.to_vec();
        dirty.push(100.0);
        let mad_clean = median_absolute_deviation(&clean).unwrap();
        let mad_dirty = median_absolute_deviation(&dirty).unwrap();
        // One outlier barely moves the MAD.
        assert!((mad_dirty - mad_clean).abs() < 0.05);
    }
}
