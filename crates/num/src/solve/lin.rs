use crate::error::invalid;
use crate::NumError;

/// Solves the dense linear system `A x = b` in place by Gaussian
/// elimination with partial pivoting.
///
/// `a` is the `n × n` matrix in row-major order and is destroyed; on
/// success `b` holds the solution.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on shape mismatch and
/// [`NumError::SingularMatrix`] if a pivot underflows working
/// precision.
///
/// # Examples
///
/// ```
/// use fupermod_num::solve::solve_dense;
///
/// # fn main() -> Result<(), fupermod_num::NumError> {
/// let mut a = vec![2.0, 1.0, 1.0, 3.0];
/// let mut b = vec![3.0, 5.0];
/// solve_dense(&mut a, &mut b)?;
/// assert!((b[0] - 0.8).abs() < 1e-12);
/// assert!((b[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_dense(a: &mut [f64], b: &mut [f64]) -> Result<(), NumError> {
    let n = b.len();
    if a.len() != n * n {
        return Err(invalid(format!(
            "matrix has {} entries, expected {} for a {n}-vector",
            a.len(),
            n * n
        )));
    }

    for col in 0..n {
        // Partial pivoting: pick the largest remaining entry in column.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for row in col + 1..n {
            let v = a[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-300 {
            return Err(NumError::SingularMatrix);
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }

        let pivot = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in col + 1..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
    Ok(())
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// `sub` is the sub-diagonal (first entry unused conceptually but must
/// be present for rows ≥ 1; `sub[0]` is ignored), `diag` the main
/// diagonal, `sup` the super-diagonal (`sup[n-1]` ignored), `rhs` the
/// right-hand side. All four slices have the same length `n`.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] on length mismatch and
/// [`NumError::SingularMatrix`] if a pivot vanishes (the algorithm does
/// not pivot; diagonally dominant systems — like spline systems — are
/// safe).
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, NumError> {
    let n = diag.len();
    if sub.len() != n || sup.len() != n || rhs.len() != n {
        return Err(invalid("tridiagonal bands must share one length"));
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return Err(NumError::SingularMatrix);
    }
    c[0] = sup[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c[i - 1];
        if denom.abs() < 1e-300 {
            return Err(NumError::SingularMatrix);
        }
        c[i] = sup[i] / denom;
        d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
    }
    for i in (0..n - 1).rev() {
        d[i] -= c[i] * d[i + 1];
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let mut a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let mut b = vec![4.0, -2.0, 7.0];
        solve_dense(&mut a, &mut b).unwrap();
        assert_eq!(b, vec![4.0, -2.0, 7.0]);
    }

    #[test]
    fn solves_3x3_requiring_pivoting() {
        // First pivot is zero, forcing a row swap.
        let mut a = vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.0, 3.0, 0.0, -2.0];
        let x_true = [1.5, -0.5, 2.0];
        let mut b = vec![
            0.0 * x_true[0] + 2.0 * x_true[1] + 1.0 * x_true[2],
            1.0 * x_true[0] - 1.0 * x_true[1],
            3.0 * x_true[0] - 2.0 * x_true[2],
        ];
        solve_dense(&mut a, &mut b).unwrap();
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn detects_singularity() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert_eq!(
            solve_dense(&mut a, &mut b).unwrap_err(),
            NumError::SingularMatrix
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut a = vec![1.0; 6];
        let mut b = vec![1.0; 2];
        assert!(matches!(
            solve_dense(&mut a, &mut b),
            Err(NumError::InvalidInput(_))
        ));
    }

    #[test]
    fn tridiagonal_solves_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4, 8, 8] → x = [1, 2, 3].
        let x = solve_tridiagonal(
            &[0.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0],
            &[1.0, 1.0, 0.0],
            &[4.0, 8.0, 8.0],
        )
        .unwrap();
        for (got, want) in x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn tridiagonal_matches_dense_solver() {
        let n = 10;
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -1.0 + 0.05 * i as f64 }).collect();
        let diag: Vec<f64> = (0..n).map(|i| 4.0 + 0.1 * i as f64).collect();
        let sup: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { -0.7 }).collect();
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();

        let tri = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();

        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = diag[i];
            if i > 0 {
                dense[i * n + i - 1] = sub[i];
            }
            if i + 1 < n {
                dense[i * n + i + 1] = sup[i];
            }
        }
        let mut b = rhs.clone();
        solve_dense(&mut dense, &mut b).unwrap();
        for (t, d) in tri.iter().zip(&b) {
            assert!((t - d).abs() < 1e-10);
        }
    }

    #[test]
    fn tridiagonal_rejects_mismatched_lengths() {
        assert!(solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn tridiagonal_detects_zero_pivot() {
        assert!(matches!(
            solve_tridiagonal(&[0.0], &[0.0], &[0.0], &[1.0]),
            Err(NumError::SingularMatrix)
        ));
    }

    #[test]
    fn random_systems_round_trip() {
        // Deterministic pseudo-random matrix; verify A x = b residual.
        let n = 8;
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let a_orig: Vec<f64> = (0..n * n).map(|_| next() * 10.0).collect();
        let x_true: Vec<f64> = (0..n).map(|_| next() * 5.0).collect();
        let mut b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a_orig[i * n + j] * x_true[j]).sum())
            .collect();
        let mut a = a_orig.clone();
        solve_dense(&mut a, &mut b).unwrap();
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "got {got}, want {want}");
        }
    }
}
