use crate::error::invalid;
use crate::NumError;

/// Tolerances and iteration budget for the scalar root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tol: f64,
    /// Absolute tolerance on the residual `|f(x)|`.
    pub f_tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        Self {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// Finds a root of `f` in the bracket `[a, b]` by bisection.
///
/// Bisection is slow but unconditionally convergent, which is what the
/// geometrical partitioning algorithm needs: its objective (total
/// partitioned units as a function of the line slope) is monotone but
/// only piecewise smooth.
///
/// # Errors
///
/// Returns [`NumError::InvalidInput`] if the bracket is degenerate or
/// `f(a)` and `f(b)` have the same sign, and
/// [`NumError::NoConvergence`] if the budget runs out before the
/// tolerances are met (with default options this cannot happen for a
/// valid bracket: 200 halvings exhaust f64 resolution).
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    opts: RootOptions,
) -> Result<f64, NumError> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(invalid(format!("bisect bracket invalid: [{a}, {b}]")));
    }
    let fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(invalid(format!(
            "bisect requires a sign change: f({a}) = {fa}, f({b}) = {fb}"
        )));
    }

    let (mut lo, mut hi) = (a, b);
    let mut flo = fa;
    for _ in 0..opts.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.abs() <= opts.f_tol || (hi - lo) <= opts.x_tol {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Err(NumError::NoConvergence {
        method: "bisect",
        residual: hi - lo,
    })
}

/// Finds a root of `f` in the bracket `[a, b]` with Brent's method
/// (inverse quadratic interpolation guarded by bisection).
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    opts: RootOptions,
) -> Result<f64, NumError> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(invalid(format!("brent bracket invalid: [{a}, {b}]")));
    }
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(invalid(format!(
            "brent requires a sign change: f({xa}) = {fa}, f({xb}) = {fb}"
        )));
    }

    let mut xc = xa;
    let mut fc = fa;
    let mut d = xb - xa;
    let mut e = d;

    for _ in 0..opts.max_iter {
        if fb.abs() > fc.abs() {
            // Keep b the best estimate.
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * opts.x_tol;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb.abs() <= opts.f_tol {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic (or secant) interpolation.
            let s = fb / fa;
            let (mut p, mut q) = if xa == xc {
                (2.0 * xm * s, 1.0 - s)
            } else {
                let q = fa / fc;
                let r = fb / fc;
                (
                    s * (2.0 * xm * q * (q - r) - (xb - xa) * (r - 1.0)),
                    (q - 1.0) * (r - 1.0) * (s - 1.0),
                )
            };
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        xb += if d.abs() > tol1 {
            d
        } else {
            tol1.copysign(xm)
        };
        fb = f(xb);
        if fb.signum() == fc.signum() {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
    }
    Err(NumError::NoConvergence {
        method: "brent",
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, RootOptions::default()).unwrap();
        assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut calls = 0;
        let root = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            RootOptions::default(),
        )
        .unwrap();
        assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
        assert!(calls < 20, "brent took {calls} evaluations");
    }

    #[test]
    fn both_handle_root_at_bracket_edge() {
        let root = bisect(|x| x, 0.0, 1.0, RootOptions::default()).unwrap();
        assert_eq!(root, 0.0);
        let root = brent(|x| x - 1.0, 0.0, 1.0, RootOptions::default()).unwrap();
        assert_eq!(root, 1.0);
    }

    #[test]
    fn rejects_same_sign_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default()),
            Err(NumError::InvalidInput(_))
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default()),
            Err(NumError::InvalidInput(_))
        ));
    }

    #[test]
    fn rejects_degenerate_bracket() {
        assert!(bisect(|x| x, 1.0, 1.0, RootOptions::default()).is_err());
        assert!(brent(|x| x, 2.0, 1.0, RootOptions::default()).is_err());
    }

    #[test]
    fn brent_on_nasty_flat_function() {
        // f is flat near the root, so the f_tol = 1e-12 stopping rule is
        // met anywhere within (1e-12)^(1/5) ≈ 4e-3 of the root.
        let root = brent(|x: f64| (x - 0.3).powi(5), 0.0, 1.0, RootOptions::default()).unwrap();
        assert!((root - 0.3).abs() < 5e-3);
    }

    #[test]
    fn bisect_on_discontinuous_monotone_function() {
        // Step-like function, as produced by piecewise speed models.
        let f = |x: f64| if x < 0.5 { -1.0 } else { 1.0 };
        let root = bisect(f, 0.0, 1.0, RootOptions::default()).unwrap();
        assert!((root - 0.5).abs() < 1e-9);
    }
}
