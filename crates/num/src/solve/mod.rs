//! Root finding and linear algebra for the partitioning algorithms.
//!
//! * [`bisect`] / [`brent`] — scalar roots, used by the geometrical
//!   partitioning algorithm (bisection of lines through the origin) and
//!   as a robust fallback for the numerical algorithm.
//! * [`newton_system`] — damped multidimensional Newton with
//!   backtracking line search, the solver behind the Akima-FPM
//!   partitioner (the paper's "multidimensional solvers" \[15\]).
//! * [`solve_dense`] — Gaussian elimination with partial pivoting for
//!   the Newton steps.

mod broyden;
mod lin;
mod newton;
mod scalar;

pub use broyden::broyden_system;
pub use lin::{solve_dense, solve_tridiagonal};
pub use newton::{finite_difference_jacobian, newton_system, NewtonOptions, NewtonReport};
pub use scalar::{bisect, brent, RootOptions};
