use super::lin::solve_dense;
use crate::error::invalid;
use crate::NumError;

/// Options for [`newton_system`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence threshold on the residual max-norm.
    pub f_tol: f64,
    /// Convergence threshold on the step max-norm.
    pub x_tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Smallest admissible backtracking factor before the step is
    /// declared failed.
    pub min_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            f_tol: 1e-10,
            x_tol: 1e-12,
            max_iter: 100,
            min_step: 1e-10,
        }
    }
}

/// Diagnostics returned by a successful [`newton_system`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonReport {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final residual max-norm.
    pub residual: f64,
}

pub(super) fn max_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Solves the square non-linear system `F(x) = 0` by damped Newton
/// iteration with a backtracking line search on `‖F‖∞`.
///
/// * `f(x, out)` writes the residual vector into `out`.
/// * `jac(x, out)` writes the row-major Jacobian into `out`
///   (`n × n`).
///
/// This is the engine behind the paper's "numerical algorithm" for
/// data partitioning \[15\]: the equal-time conditions over Akima-spline
/// time functions form a smooth system whose Jacobian is available
/// analytically from the spline derivatives.
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — empty starting point or non-finite
///   residual at the start.
/// * [`NumError::SingularMatrix`] — Jacobian singular at an iterate.
/// * [`NumError::NoConvergence`] — iteration budget exhausted or the
///   line search stalled.
pub fn newton_system(
    mut f: impl FnMut(&[f64], &mut [f64]),
    mut jac: impl FnMut(&[f64], &mut [f64]),
    x0: &[f64],
    opts: NewtonOptions,
) -> Result<NewtonReport, NumError> {
    let n = x0.len();
    if n == 0 {
        return Err(invalid("newton_system needs at least one variable"));
    }

    let mut x = x0.to_vec();
    let mut fx = vec![0.0; n];
    let mut j = vec![0.0; n * n];
    let mut step = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut f_trial = vec![0.0; n];

    f(&x, &mut fx);
    if fx.iter().any(|v| !v.is_finite()) {
        return Err(invalid("residual is not finite at the starting point"));
    }
    let mut fnorm = max_norm(&fx);

    for iter in 0..opts.max_iter {
        if fnorm <= opts.f_tol {
            return Ok(NewtonReport {
                x,
                iterations: iter,
                residual: fnorm,
            });
        }

        jac(&x, &mut j);
        // Newton step: J * step = -F.
        let mut rhs: Vec<f64> = fx.iter().map(|v| -v).collect();
        let mut jcopy = j.clone();
        solve_dense(&mut jcopy, &mut rhs)?;
        step.copy_from_slice(&rhs);

        // Backtracking line search: halve until the residual norm drops.
        let mut lambda = 1.0;
        loop {
            for i in 0..n {
                trial[i] = x[i] + lambda * step[i];
            }
            f(&trial, &mut f_trial);
            let trial_norm = if f_trial.iter().all(|v| v.is_finite()) {
                max_norm(&f_trial)
            } else {
                f64::INFINITY
            };
            if trial_norm < fnorm {
                x.copy_from_slice(&trial);
                fx.copy_from_slice(&f_trial);
                fnorm = trial_norm;
                break;
            }
            lambda *= 0.5;
            if lambda < opts.min_step {
                return Err(NumError::NoConvergence {
                    method: "newton_system (line search stalled)",
                    residual: fnorm,
                });
            }
        }

        if lambda * max_norm(&step) <= opts.x_tol && fnorm <= opts.f_tol.max(1e-8) {
            return Ok(NewtonReport {
                x,
                iterations: iter + 1,
                residual: fnorm,
            });
        }
    }

    if fnorm <= opts.f_tol {
        return Ok(NewtonReport {
            x,
            iterations: opts.max_iter,
            residual: fnorm,
        });
    }
    Err(NumError::NoConvergence {
        method: "newton_system",
        residual: fnorm,
    })
}

/// Forward-difference Jacobian approximation, for systems whose
/// analytic Jacobian is unavailable. Writes row-major into `out`.
pub fn finite_difference_jacobian(
    mut f: impl FnMut(&[f64], &mut [f64]),
    x: &[f64],
    out: &mut [f64],
) {
    let n = x.len();
    assert_eq!(out.len(), n * n, "Jacobian buffer has wrong size");
    let mut base = vec![0.0; n];
    let mut bumped = vec![0.0; n];
    let mut xp = x.to_vec();
    f(x, &mut base);
    for col in 0..n {
        let h = 1e-7 * x[col].abs().max(1e-7);
        xp[col] = x[col] + h;
        f(&xp, &mut bumped);
        xp[col] = x[col];
        for row in 0..n {
            out[row * n + col] = (bumped[row] - base[row]) / h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_square_root() {
        let report = newton_system(
            |x, out| out[0] = x[0] * x[0] - 2.0,
            |x, out| out[0] = 2.0 * x[0],
            &[1.0],
            NewtonOptions::default(),
        )
        .unwrap();
        assert!((report.x[0] - 2.0_f64.sqrt()).abs() < 1e-9);
        assert!(report.iterations < 10);
    }

    #[test]
    fn coupled_2d_system() {
        // x^2 + y^2 = 4, x*y = 1. One solution near (1.93, 0.52).
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] * x[1] - 1.0;
        };
        let jac = |x: &[f64], out: &mut [f64]| {
            out[0] = 2.0 * x[0];
            out[1] = 2.0 * x[1];
            out[2] = x[1];
            out[3] = x[0];
        };
        let report = newton_system(f, jac, &[2.0, 0.6], NewtonOptions::default()).unwrap();
        let (x, y) = (report.x[0], report.x[1]);
        assert!((x * x + y * y - 4.0).abs() < 1e-8);
        assert!((x * y - 1.0).abs() < 1e-8);
    }

    #[test]
    fn works_with_finite_difference_jacobian() {
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = (x[0] - 3.0).powi(3) + x[1];
            out[1] = x[1] - 0.5 * x[0];
        };
        let jac = |x: &[f64], out: &mut [f64]| finite_difference_jacobian(f, x, out);
        let report = newton_system(f, jac, &[1.0, 1.0], NewtonOptions::default()).unwrap();
        let mut res = vec![0.0; 2];
        f(&report.x, &mut res);
        assert!(max_norm(&res) < 1e-6);
    }

    #[test]
    fn detects_singular_jacobian() {
        let err = newton_system(
            |_, out| out[0] = 1.0,
            |_, out| out[0] = 0.0,
            &[0.0],
            NewtonOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, NumError::SingularMatrix);
    }

    #[test]
    fn reports_no_convergence_when_rootless() {
        // f(x) = x^2 + 1 has no real root; line search must stall.
        let err = newton_system(
            |x, out| out[0] = x[0] * x[0] + 1.0,
            |x, out| out[0] = 2.0 * x[0],
            &[3.0],
            NewtonOptions {
                max_iter: 50,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }));
    }

    #[test]
    fn already_converged_start_returns_immediately() {
        let report = newton_system(
            |x, out| out[0] = x[0],
            |_, out| out[0] = 1.0,
            &[0.0],
            NewtonOptions::default(),
        )
        .unwrap();
        assert_eq!(report.iterations, 0);
        assert_eq!(report.x, vec![0.0]);
    }
}
