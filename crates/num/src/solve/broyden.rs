use super::newton::{max_norm, NewtonOptions, NewtonReport};
use crate::error::invalid;
use crate::NumError;

/// Solves `F(x) = 0` with Broyden's (good) method: a quasi-Newton
/// iteration that maintains an approximate Jacobian via rank-one
/// updates, requiring only residual evaluations.
///
/// This is the derivative-free companion to
/// [`newton_system`](super::newton_system) — useful when a model's time
/// derivative is unavailable or untrusted (e.g. user-supplied
/// analytical models plugged into the framework). The initial Jacobian
/// is estimated by forward differences, then updated cheaply.
///
/// # Errors
///
/// * [`NumError::InvalidInput`] — empty start, or non-finite residual
///   at the starting point.
/// * [`NumError::SingularMatrix`] — the approximate Jacobian collapsed.
/// * [`NumError::NoConvergence`] — iteration budget exhausted or the
///   line search stalled.
pub fn broyden_system(
    mut f: impl FnMut(&[f64], &mut [f64]),
    x0: &[f64],
    opts: NewtonOptions,
) -> Result<NewtonReport, NumError> {
    let n = x0.len();
    if n == 0 {
        return Err(invalid("broyden_system needs at least one variable"));
    }

    let mut x = x0.to_vec();
    let mut fx = vec![0.0; n];
    f(&x, &mut fx);
    if fx.iter().any(|v| !v.is_finite()) {
        return Err(invalid("residual is not finite at the starting point"));
    }
    let mut fnorm = max_norm(&fx);

    // Initial Jacobian by forward differences.
    let mut jac = vec![0.0; n * n];
    super::newton::finite_difference_jacobian(&mut f, &x, &mut jac);

    let mut step = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut f_trial = vec![0.0; n];

    for iter in 0..opts.max_iter {
        if fnorm <= opts.f_tol {
            return Ok(NewtonReport {
                x,
                iterations: iter,
                residual: fnorm,
            });
        }

        // Solve J * step = -F with the current approximation.
        let mut rhs: Vec<f64> = fx.iter().map(|v| -v).collect();
        let mut jcopy = jac.clone();
        super::lin::solve_dense(&mut jcopy, &mut rhs)?;
        step.copy_from_slice(&rhs);

        // Backtracking line search on the residual norm.
        let mut lambda = 1.0;
        let (s, y) = loop {
            for i in 0..n {
                trial[i] = x[i] + lambda * step[i];
            }
            f(&trial, &mut f_trial);
            let trial_norm = if f_trial.iter().all(|v| v.is_finite()) {
                max_norm(&f_trial)
            } else {
                f64::INFINITY
            };
            if trial_norm < fnorm || lambda < opts.min_step {
                if lambda < opts.min_step && trial_norm >= fnorm {
                    return Err(NumError::NoConvergence {
                        method: "broyden_system (line search stalled)",
                        residual: fnorm,
                    });
                }
                // Secant pair for the Broyden update.
                let s: Vec<f64> = (0..n).map(|i| trial[i] - x[i]).collect();
                let y: Vec<f64> = (0..n).map(|i| f_trial[i] - fx[i]).collect();
                x.copy_from_slice(&trial);
                fx.copy_from_slice(&f_trial);
                fnorm = trial_norm;
                break (s, y);
            }
            lambda *= 0.5;
        };

        // Broyden rank-one update: J += (y - J s) sᵀ / (sᵀ s).
        let ss: f64 = s.iter().map(|v| v * v).sum();
        if ss > 0.0 {
            let mut js = vec![0.0; n];
            for i in 0..n {
                js[i] = (0..n).map(|j| jac[i * n + j] * s[j]).sum();
            }
            for i in 0..n {
                let coeff = (y[i] - js[i]) / ss;
                for j in 0..n {
                    jac[i * n + j] += coeff * s[j];
                }
            }
        }
    }

    if fnorm <= opts.f_tol {
        return Ok(NewtonReport {
            x,
            iterations: opts.max_iter,
            residual: fnorm,
        });
    }
    Err(NumError::NoConvergence {
        method: "broyden_system",
        residual: fnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_square_root() {
        let report = broyden_system(
            |x, out| out[0] = x[0] * x[0] - 2.0,
            &[1.0],
            NewtonOptions::default(),
        )
        .unwrap();
        assert!((report.x[0] - 2.0_f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn coupled_2d_system() {
        let f = |x: &[f64], out: &mut [f64]| {
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] * x[1] - 1.0;
        };
        let report = broyden_system(f, &[2.0, 0.6], NewtonOptions::default()).unwrap();
        let (x, y) = (report.x[0], report.x[1]);
        assert!((x * x + y * y - 4.0).abs() < 1e-7);
        assert!((x * y - 1.0).abs() < 1e-7);
    }

    #[test]
    fn equal_time_partitioning_shape() {
        // The shape the numerical partitioner solves: equal times over
        // nonlinear time functions with conservation eliminated.
        let total = 1000.0;
        let t = [
            |x: f64| x / 100.0 + (x / 400.0).powi(2),
            |x: f64| x / 50.0,
            |x: f64| x / 200.0 + 1.0,
        ];
        let f = move |x: &[f64], out: &mut [f64]| {
            let last = total - x[0] - x[1];
            let t_last = t[2](last);
            out[0] = t[0](x[0]) - t_last;
            out[1] = t[1](x[1]) - t_last;
        };
        let report =
            broyden_system(f, &[total / 3.0, total / 3.0], NewtonOptions::default()).unwrap();
        let d0 = report.x[0];
        let d1 = report.x[1];
        let d2 = total - d0 - d1;
        let times = [t[0](d0), t[1](d1), t[2](d2)];
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - min) / max < 1e-6, "times {times:?}");
    }

    #[test]
    fn already_converged_start_returns_immediately() {
        let report = broyden_system(
            |x, out| out[0] = x[0],
            &[0.0],
            NewtonOptions::default(),
        )
        .unwrap();
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn reports_failure_on_rootless_system() {
        let err = broyden_system(
            |x, out| out[0] = x[0] * x[0] + 1.0,
            &[3.0],
            NewtonOptions {
                max_iter: 50,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, NumError::NoConvergence { .. }));
    }
}
