#![warn(missing_docs)]

//! Numerical substrate for the FuPerMod reproduction.
//!
//! This crate provides the mathematical machinery the framework is built
//! on, implemented from scratch so the workspace has no numerical
//! dependencies beyond the standard library:
//!
//! * [`stats`] — summary statistics and Student-t confidence intervals,
//!   used by the benchmarking machinery to decide when a measurement is
//!   statistically reliable.
//! * [`interp`] — piecewise-linear and Akima-spline interpolation of
//!   empirical time functions, the two interpolation methods the paper's
//!   functional performance models (FPMs) are built on.
//! * [`solve`] — scalar and multidimensional root finding, used by the
//!   numerical data-partitioning algorithm to solve the equal-time
//!   system, plus dense linear solves for the Newton steps.
//! * [`apportion`] — largest-remainder integer apportionment, used to
//!   round continuous partitions to whole computation units without
//!   losing or inventing work.
//!
//! # Examples
//!
//! ```
//! use fupermod_num::interp::{AkimaSpline, Interpolation};
//!
//! # fn main() -> Result<(), fupermod_num::NumError> {
//! let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
//! let ys = [0.0, 1.0, 4.0, 9.0, 16.0];
//! let spline = AkimaSpline::new(&xs, &ys)?;
//! let mid = spline.value(2.5);
//! assert!((mid - 6.25).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

pub mod apportion;
pub mod interp;
pub mod solve;
pub mod stats;

mod error;

pub use error::NumError;
