//! Property-based tests for the numerical substrate.

use fupermod_num::apportion::largest_remainder;
use fupermod_num::interp::{AkimaSpline, Interpolation, PiecewiseLinear};
use fupermod_num::solve::{bisect, brent, RootOptions};
use fupermod_num::stats::{student_t_cdf, student_t_quantile, OnlineStats};
use proptest::prelude::*;

/// Strictly increasing abscissas with matching ordinates.
fn points(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2..max_len).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.01f64..10.0, n),
            proptest::collection::vec(-100.0f64..100.0, n),
        )
            .prop_map(|(gaps, ys)| {
                let mut xs = Vec::with_capacity(gaps.len());
                let mut acc = 0.0;
                for g in gaps {
                    acc += g;
                    xs.push(acc);
                }
                (xs, ys)
            })
    })
}

proptest! {
    #[test]
    fn apportion_conserves_total(
        weights in proptest::collection::vec(0.0f64..1e6, 1..20),
        total in 0u64..100_000,
    ) {
        let shares = largest_remainder(&weights, total).unwrap();
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        prop_assert_eq!(shares.len(), weights.len());
    }

    #[test]
    fn apportion_is_near_proportional(
        weights in proptest::collection::vec(0.1f64..1e3, 1..20),
        total in 1u64..100_000,
    ) {
        let sum: f64 = weights.iter().sum();
        let shares = largest_remainder(&weights, total).unwrap();
        for (s, w) in shares.iter().zip(&weights) {
            let ideal = w / sum * total as f64;
            prop_assert!((*s as f64 - ideal).abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn piecewise_passes_through_points((xs, ys) in points(12)) {
        let f = PiecewiseLinear::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((f.value(*x) - y).abs() < 1e-9 * y.abs().max(1.0));
        }
    }

    #[test]
    fn piecewise_stays_within_segment_bounds((xs, ys) in points(12)) {
        let f = PiecewiseLinear::new(&xs, &ys).unwrap();
        for w in xs.windows(2).zip(ys.windows(2)) {
            let (xw, yw) = w;
            let mid = 0.5 * (xw[0] + xw[1]);
            let (lo, hi) = (yw[0].min(yw[1]), yw[0].max(yw[1]));
            let v = f.value(mid);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn akima_passes_through_points((xs, ys) in points(12)) {
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((f.value(*x) - y).abs() < 1e-7 * y.abs().max(1.0));
        }
    }

    #[test]
    fn akima_reproduces_lines(
        (xs, _) in points(12),
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        let (lo, hi) = f.domain();
        for i in 0..=50 {
            let x = lo + (hi - lo) * i as f64 / 50.0;
            let expected = a * x + b;
            prop_assert!((f.value(x) - expected).abs() < 1e-6 * expected.abs().max(1.0));
        }
    }

    #[test]
    fn akima_derivative_matches_finite_difference((xs, ys) in points(10)) {
        let f = AkimaSpline::new(&xs, &ys).unwrap();
        let (lo, hi) = f.domain();
        let h = (hi - lo) * 1e-7;
        for i in 1..20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let fd = (f.value(x + h) - f.value(x - h)) / (2.0 * h);
            let scale = fd.abs().max(1.0);
            prop_assert!((f.derivative(x) - fd).abs() < 1e-3 * scale);
        }
    }

    #[test]
    fn bisect_and_brent_agree_on_monotone_cubics(
        root in -5.0f64..5.0,
        scale in 0.1f64..10.0,
    ) {
        let f = |x: f64| scale * (x - root) * (1.0 + (x - root).powi(2));
        let opts = RootOptions::default();
        let rb = bisect(f, -10.0, 10.0, opts).unwrap();
        let rr = brent(f, -10.0, 10.0, opts).unwrap();
        prop_assert!((rb - root).abs() < 1e-6);
        prop_assert!((rr - root).abs() < 1e-6);
    }

    #[test]
    fn t_quantile_round_trips(p in 0.001f64..0.999, df in 1.0f64..200.0) {
        let q = student_t_quantile(p, df);
        prop_assert!((student_t_cdf(q, df) - p).abs() < 1e-8);
    }

    #[test]
    fn online_stats_mean_in_data_range(
        data in proptest::collection::vec(-1e6f64..1e6, 1..100),
    ) {
        let s: OnlineStats = data.iter().copied().collect();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= lo - 1e-6 && s.mean() <= hi + 1e-6);
        prop_assert!(s.sample_variance() >= 0.0);
    }
}
