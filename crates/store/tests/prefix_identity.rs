//! The store's central guarantee, pinned property-style: streaming
//! observations through [`ModelEntry::ingest_sample`]'s incremental
//! refresh yields a model — and the partitions computed from it —
//! **bit-identical** to a from-scratch cold rebuild over the same
//! observation stream, at *every* prefix, including prefixes where
//! the outlier-reclassification full-rebuild fallback fires.

use fupermod_core::model::{AkimaModel, Model};
use fupermod_core::partition::{NumericalPartitioner, Partitioner};
use fupermod_store::{EntryConfig, IngestOutcome, ModelEntry};
use proptest::prelude::*;

/// Probes two models at many abscissas and requires bit equality.
fn assert_model_bits_equal(incremental: &AkimaModel, rebuilt: &AkimaModel, ctx: &str) {
    assert_eq!(incremental, rebuilt, "{ctx}: structural mismatch");
    assert_eq!(
        incremental.points().len(),
        rebuilt.points().len(),
        "{ctx}: point count"
    );
    for (a, b) in incremental.points().iter().zip(rebuilt.points()) {
        assert_eq!(a.d, b.d, "{ctx}: point size");
        assert_eq!(a.t.to_bits(), b.t.to_bits(), "{ctx}: point time d={}", a.d);
        assert_eq!(a.reps, b.reps, "{ctx}: point reps d={}", a.d);
        assert_eq!(a.ci.to_bits(), b.ci.to_bits(), "{ctx}: point ci d={}", a.d);
    }
    for i in 0..64 {
        let x = 13.7 * i as f64;
        match (incremental.time(x), rebuilt.time(x)) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: time({x})"),
            (None, None) => {}
            _ => panic!("{ctx}: readiness mismatch at {x}"),
        }
    }
}

/// One observation: an index into a small size grid plus a time.
/// Spikes (occasional huge times) drive the outlier machinery.
fn stream_strategy() -> impl Strategy<Value = Vec<(u64, f64)>> {
    let sizes = [100u64, 250, 400, 900, 1600, 2500];
    proptest::collection::vec(
        (0usize..sizes.len(), 0.5f64..2.0, 0u32..10),
        1..40,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .map(|(i, t, spike)| {
                let d = sizes[i];
                let base = t * d as f64 * 1e-3;
                (d, if spike < 2 { base * 40.0 } else { base })
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Model coefficients bit-identical to a cold rebuild at every
    /// prefix of a random spike-laden stream.
    #[test]
    fn incremental_model_equals_cold_rebuild_at_every_prefix(
        stream in stream_strategy()
    ) {
        // A tight threshold so spikes actually reject and reclassify.
        let config = EntryConfig { outlier_k: 3.0, confidence: 0.95 };
        let mut entry = ModelEntry::new(EntryConfig { ..config });
        let mut reference = ModelEntry::new(config);
        for (i, &(d, t)) in stream.iter().enumerate() {
            entry.ingest_sample(d, t).unwrap();
            reference.ingest_sample_rebuilding(d, t).unwrap();
            let cold = entry.cold_rebuild().unwrap();
            assert_model_bits_equal(entry.model(), &cold, &format!("prefix {}", i + 1));
            assert_model_bits_equal(entry.model(), reference.model(), &format!("ref prefix {}", i + 1));
        }
    }

    /// Partitions over store-maintained models bit-identical to
    /// partitions over cold-rebuilt models at every prefix.
    #[test]
    fn partitions_equal_cold_rebuild_partitions_at_every_prefix(
        stream_a in stream_strategy(),
        stream_b in stream_strategy(),
    ) {
        let config = EntryConfig { outlier_k: 3.0, confidence: 0.95 };
        let mut a = ModelEntry::new(config);
        let mut b = ModelEntry::new(config);
        // Interleave the two streams; partition after each step once
        // both members have data.
        let steps = stream_a.len().max(stream_b.len());
        let partitioner = NumericalPartitioner::default();
        for i in 0..steps {
            if let Some(&(d, t)) = stream_a.get(i) {
                a.ingest_sample(d, t).unwrap();
            }
            if let Some(&(d, t)) = stream_b.get(i) {
                b.ingest_sample(d, t).unwrap();
            }
            if a.model().is_ready() && b.model().is_ready() {
                let warm: Vec<&dyn Model> = vec![a.model(), b.model()];
                let cold_a = a.cold_rebuild().unwrap();
                let cold_b = b.cold_rebuild().unwrap();
                let cold: Vec<&dyn Model> = vec![&cold_a, &cold_b];
                let dw = partitioner.partition(5000, &warm).unwrap();
                let dc = partitioner.partition(5000, &cold).unwrap();
                prop_assert_eq!(dw.sizes(), dc.sizes(), "sizes differ at step {}", i);
                for (pw, pc) in dw.parts().iter().zip(dc.parts()) {
                    prop_assert_eq!(pw.t.to_bits(), pc.t.to_bits(), "part time bits at step {}", i);
                }
            }
        }
    }
}

/// Deterministic regression: a stream engineered so the median
/// migrates and previously-rejected samples are pulled back into the
/// kept set — the fallback path must fire *and* stay bit-identical.
#[test]
fn fallback_path_fires_and_stays_identical() {
    let config = EntryConfig {
        outlier_k: 3.0,
        confidence: 0.95,
    };
    let mut entry = ModelEntry::new(config);
    // Second size keeps the model non-trivial (two nodes + origin).
    entry.ingest_sample(500, 1.0).unwrap();
    let stream = [1.0, 1.1, 0.9, 1.05, 50.0, 48.0, 52.0, 49.0, 51.0, 50.5];
    let mut outcomes = Vec::new();
    for (i, &t) in stream.iter().enumerate() {
        let outcome = entry.ingest_sample(100, t).unwrap();
        outcomes.push(outcome);
        let cold = entry.cold_rebuild().unwrap();
        assert_model_bits_equal(entry.model(), &cold, &format!("fallback prefix {}", i + 1));
    }
    assert!(
        outcomes.contains(&IngestOutcome::FallbackRebuilt),
        "reclassification fallback never fired: {outcomes:?}"
    );
    assert!(
        outcomes.contains(&IngestOutcome::Patched),
        "patch path never fired: {outcomes:?}"
    );
}

/// The three outcome kinds partition the ingestion work faithfully on
/// a hand-built stream (new size → rebuilt, repeat → patched,
/// reclassifying spike run → fallback).
#[test]
fn outcome_kinds_cover_all_paths() {
    let mut entry = ModelEntry::new(EntryConfig {
        outlier_k: 3.0,
        confidence: 0.95,
    });
    assert_eq!(entry.ingest_sample(100, 1.0).unwrap(), IngestOutcome::Rebuilt);
    assert_eq!(entry.ingest_sample(400, 4.0).unwrap(), IngestOutcome::Rebuilt);
    assert_eq!(entry.ingest_sample(100, 1.02).unwrap(), IngestOutcome::Patched);
    assert_eq!(entry.ingest_sample(400, 4.04).unwrap(), IngestOutcome::Patched);
    assert_eq!(entry.epoch(), 4);
}
