//! Eviction and invalidation behaviour of the sharded store: epoch
//! bumps invalidate dependent plans, the LRU respects its byte
//! budget, and the counters record every transition.

use std::sync::Arc;
use std::thread;

use fupermod_core::partition::{GeometricPartitioner, NumericalPartitioner};
use fupermod_store::plan::plan_cost;
use fupermod_store::{ModelStore, PlanKey, StoreConfig, StoreKey};

fn key(i: usize) -> StoreKey {
    StoreKey::new(format!("dev{i}"), "gemm", "default")
}

fn feed(store: &ModelStore, i: usize) {
    let k = key(i);
    for d in [100u64, 400, 900, 1600] {
        let t = d as f64 * 1e-3 * (i + 1) as f64;
        store.ingest_sample(&k, d, t).unwrap();
    }
}

#[test]
fn epoch_bump_invalidates_dependent_plans_only() {
    let store = ModelStore::new(StoreConfig::default());
    for i in 0..3 {
        feed(&store, i);
    }
    let geo = GeometricPartitioner::default();
    let pair_a = [key(0), key(1)];
    let pair_b = [key(1), key(2)];
    assert!(!store.partition(&pair_a, 1000, &geo, "geometric").unwrap().1);
    assert!(!store.partition(&pair_b, 1000, &geo, "geometric").unwrap().1);
    assert!(store.partition(&pair_a, 1000, &geo, "geometric").unwrap().1);
    assert!(store.partition(&pair_b, 1000, &geo, "geometric").unwrap().1);
    // Bump dev0: only the plan depending on dev0 is invalidated.
    store.ingest_sample(&key(0), 100, 0.101).unwrap();
    assert!(
        !store.partition(&pair_a, 1000, &geo, "geometric").unwrap().1,
        "plan over bumped member must re-solve"
    );
    assert!(
        store.partition(&pair_b, 1000, &geo, "geometric").unwrap().1,
        "plan over untouched members must stay warm"
    );
    let snap = store.metrics().snapshot();
    assert_eq!(snap.plan_hits, 3);
    assert_eq!(snap.plan_misses, 3);
}

#[test]
fn algorithm_is_part_of_the_plan_key() {
    let store = ModelStore::new(StoreConfig::default());
    for i in 0..2 {
        feed(&store, i);
    }
    let members = [key(0), key(1)];
    let geo = GeometricPartitioner::default();
    let num = NumericalPartitioner::default();
    assert!(!store.partition(&members, 1000, &geo, "geometric").unwrap().1);
    assert!(
        !store.partition(&members, 1000, &num, "numerical").unwrap().1,
        "different algorithm must not hit the geometric plan"
    );
    assert!(store.partition(&members, 1000, &num, "numerical").unwrap().1);
}

#[test]
fn lru_respects_byte_budget_and_counts_evictions() {
    // Size the budget from the real cost formula: room for exactly
    // two of the plans this test creates.
    let probe_key = PlanKey {
        members: vec![(key(0), 4), (key(1), 4)],
        total: 1000,
        algorithm: "geometric".to_owned(),
    };
    let probe_cost = {
        let store = ModelStore::new(StoreConfig::default());
        feed(&store, 0);
        feed(&store, 1);
        let geo = GeometricPartitioner::default();
        let (dist, _) = store.partition(&[key(0), key(1)], 1000, &geo, "geometric").unwrap();
        plan_cost(&probe_key, &dist)
    };

    let store = ModelStore::new(StoreConfig {
        plan_budget_bytes: 2 * probe_cost + probe_cost / 2,
        ..StoreConfig::default()
    });
    for i in 0..4 {
        feed(&store, i);
    }
    let geo = GeometricPartitioner::default();
    // Three distinct same-shape plans: the third insert must evict
    // the least recently used (the first).
    for i in 0..3 {
        let members = [key(i), key((i + 1) % 4)];
        store.partition(&members, 1000, &geo, "geometric").unwrap();
    }
    let snap = store.metrics().snapshot();
    assert!(snap.plan_evictions >= 1, "no eviction under byte pressure");
    let (plans, bytes, budget) = store.plan_cache_stats();
    assert!(bytes <= budget, "cache over budget: {bytes} > {budget}");
    assert!(plans <= 2);
    // The first plan was evicted → recomputed (miss); the last is warm.
    assert!(!store.partition(&[key(0), key(1)], 1000, &geo, "geometric").unwrap().1);
    let snap = store.metrics().snapshot();
    assert_eq!(snap.plan_hits, 0);
    assert_eq!(snap.plan_misses, 4);
}

#[test]
fn concurrent_tenants_stream_into_disjoint_shards() {
    let store = Arc::new(ModelStore::new(StoreConfig {
        shards: 4,
        ..StoreConfig::default()
    }));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for rep in 0..20 {
                    let k = key(i);
                    for d in [100u64, 400, 900] {
                        let t = d as f64 * 1e-3 * (1.0 + 0.001 * rep as f64);
                        store.ingest_sample(&k, d, t).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.len(), 8);
    for i in 0..8 {
        assert_eq!(store.epoch_of(&key(i)), Some(60));
        // Concurrent incremental maintenance still matches a cold
        // rebuild bitwise.
        store
            .with_entry(&key(i), |e| {
                let cold = e.cold_rebuild().unwrap();
                assert_eq!(e.model(), &cold, "tenant {i} diverged");
            })
            .unwrap();
    }
    let snap = store.metrics().snapshot();
    assert_eq!(
        snap.refresh_patched + snap.refresh_rebuilt + snap.refresh_fallbacks,
        8 * 60
    );
}
