//! The sharded concurrent model store and its observability counters.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fupermod_core::model::{Model, Refresh};
use fupermod_core::partition::{Distribution, Partitioner};
use fupermod_core::telemetry::{Counter, Gauge, Registry};
use fupermod_core::trace::{TraceEvent, TraceSink};
use fupermod_core::Point;

use crate::entry::{EntryConfig, IngestOutcome, ModelEntry};
use crate::plan::{PlanCache, PlanKey};
use crate::{StoreError, StoreKey};

/// Configuration of a [`ModelStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of shards the key space is hashed over. More shards
    /// mean less lock contention under concurrent tenants; each shard
    /// is an independently locked hash map.
    pub shards: usize,
    /// Byte budget of the partition-plan cache (LRU-evicted).
    pub plan_budget_bytes: usize,
    /// Statistical configuration applied to new entries.
    pub entry: EntryConfig,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            plan_budget_bytes: 1 << 20,
            entry: EntryConfig::default(),
        }
    }
}

/// Monotonic store counters: model-lookup hits/misses, incremental
/// refresh outcomes, plan-cache hits/misses/evictions. Since PR 10
/// these are handles into the store's live telemetry [`Registry`]
/// (`store_model_lookups_total{result=...}`,
/// `store_refresh_total{outcome=...}`,
/// `store_plan_requests_total{result=...}`,
/// `store_plan_evictions_total`) — the same series `/metrics`
/// exposes, so the `stats` protocol op and the scrape endpoint read
/// one source of truth. Recording stays relaxed-atomic and lock-free;
/// the legacy dotted-scope trace export
/// ([`StoreMetrics::export_events`]) is unchanged.
#[derive(Debug)]
pub struct StoreMetrics {
    model_hits: Counter,
    model_misses: Counter,
    refresh_patched: Counter,
    refresh_rebuilt: Counter,
    refresh_fallbacks: Counter,
    plan_hits: Counter,
    plan_misses: Counter,
    plan_evictions: Counter,
}

/// A point-in-time copy of [`StoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetricsSnapshot {
    /// Model lookups that found an entry.
    pub model_hits: u64,
    /// Model lookups that found nothing.
    pub model_misses: u64,
    /// Ingests absorbed by patching one spline window.
    pub refresh_patched: u64,
    /// Ingests that rebuilt the model (new size inserted).
    pub refresh_rebuilt: u64,
    /// Ingests that took the outlier-reclassification full-rebuild
    /// fallback.
    pub refresh_fallbacks: u64,
    /// Partition queries answered from the plan cache.
    pub plan_hits: u64,
    /// Partition queries that had to run the partitioner.
    pub plan_misses: u64,
    /// Plans evicted by the LRU byte budget.
    pub plan_evictions: u64,
}

impl StoreMetrics {
    /// Registers the store's counter series in `registry` and returns
    /// the handle bundle. Idempotent per registry.
    fn new(registry: &Registry) -> Self {
        let lookups = "Model lookups by result.";
        let refreshes = "Model refreshes by outcome (incremental patch, rebuild, \
                         outlier-reclassification fallback).";
        let plans = "Partition queries by plan-cache result.";
        Self {
            model_hits: registry.counter("store_model_lookups_total", lookups, &[("result", "hit")]),
            model_misses: registry.counter(
                "store_model_lookups_total",
                lookups,
                &[("result", "miss")],
            ),
            refresh_patched: registry.counter(
                "store_refresh_total",
                refreshes,
                &[("outcome", "patched")],
            ),
            refresh_rebuilt: registry.counter(
                "store_refresh_total",
                refreshes,
                &[("outcome", "rebuilt")],
            ),
            refresh_fallbacks: registry.counter(
                "store_refresh_total",
                refreshes,
                &[("outcome", "fallback")],
            ),
            plan_hits: registry.counter("store_plan_requests_total", plans, &[("result", "hit")]),
            plan_misses: registry.counter("store_plan_requests_total", plans, &[("result", "miss")]),
            plan_evictions: registry.counter(
                "store_plan_evictions_total",
                "Plans evicted by the LRU byte budget.",
                &[],
            ),
        }
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            model_hits: self.model_hits.get(),
            model_misses: self.model_misses.get(),
            refresh_patched: self.refresh_patched.get(),
            refresh_rebuilt: self.refresh_rebuilt.get(),
            refresh_fallbacks: self.refresh_fallbacks.get(),
            plan_hits: self.plan_hits.get(),
            plan_misses: self.plan_misses.get(),
            plan_evictions: self.plan_evictions.get(),
        }
    }

    /// Emits one `metrics` trace event per non-zero counter (scope
    /// `store.<counter>`, the counter value in `count`, no latency
    /// payload — `sum = 0`, empty buckets), following the
    /// `Metrics::export_histogram_events` convention. Returns how
    /// many events were written.
    pub fn export_events(&self, rank: usize, sink: &dyn TraceSink) -> usize {
        let s = self.snapshot();
        let counters = [
            ("store.model.hit", s.model_hits),
            ("store.model.miss", s.model_misses),
            ("store.refresh.patched", s.refresh_patched),
            ("store.refresh.rebuilt", s.refresh_rebuilt),
            ("store.refresh.fallback", s.refresh_fallbacks),
            ("store.plan.hit", s.plan_hits),
            ("store.plan.miss", s.plan_misses),
            ("store.plan.eviction", s.plan_evictions),
        ];
        let mut emitted = 0;
        for (scope, count) in counters {
            if count == 0 {
                continue;
            }
            sink.record(&TraceEvent::Metrics {
                rank,
                scope: scope.to_owned(),
                count,
                sum: 0.0,
                buckets: Vec::new(),
                kind: "counter".to_owned(),
                labels: String::new(),
            });
            emitted += 1;
        }
        emitted
    }

    fn count_outcome(&self, outcome: IngestOutcome) {
        let counter = match outcome {
            IngestOutcome::Patched => &self.refresh_patched,
            IngestOutcome::Rebuilt => &self.refresh_rebuilt,
            IngestOutcome::FallbackRebuilt => &self.refresh_fallbacks,
        };
        counter.inc();
    }
}

/// The sharded, concurrently usable model store.
///
/// Keys are hashed (stable FNV-1a) onto `shards` independently locked
/// hash maps, so tenants streaming into different devices do not
/// contend. The partition-plan cache sits beside the shards under its
/// own lock; no operation holds two locks at once.
#[derive(Debug)]
pub struct ModelStore {
    shards: Vec<Mutex<HashMap<StoreKey, ModelEntry>>>,
    plans: Mutex<PlanCache>,
    registry: Arc<Registry>,
    metrics: StoreMetrics,
    config: StoreConfig,
    created: Instant,
    uptime: Gauge,
    entries_gauge: Gauge,
    shard_gauges: Vec<Gauge>,
}

impl Default for ModelStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl ModelStore {
    /// Creates a store with the given configuration (`shards` is
    /// clamped to at least 1) and a fresh, always-enabled telemetry
    /// registry of its own.
    pub fn new(config: StoreConfig) -> Self {
        let shards = config.shards.max(1);
        let registry = Arc::new(Registry::new(true));
        let metrics = StoreMetrics::new(&registry);
        let uptime = registry.gauge(
            "uptime_seconds",
            "Seconds since the store (daemon) was created.",
            &[],
        );
        let entries_gauge = registry.gauge("store_entries", "Model entries in the store.", &[]);
        let shard_gauges = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                registry.gauge(
                    "store_shard_entries",
                    "Model entries per shard.",
                    &[("shard", shard.as_str())],
                )
            })
            .collect();
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            plans: Mutex::new(PlanCache::new(config.plan_budget_bytes)),
            registry,
            metrics,
            config: StoreConfig {
                shards,
                ..config
            },
            created: Instant::now(),
            uptime,
            entries_gauge,
            shard_gauges,
        }
    }

    /// The store's configuration (after clamping).
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The store's counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// The store's telemetry registry — the single source of truth
    /// behind both the `stats` protocol op and the `/metrics`
    /// exposition endpoint. The serving layer registers its own
    /// request/uptime series here too.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Entry count of every shard, in shard order (feeds the
    /// `store_shard_entries{shard=...}` gauges at scrape time).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").len())
            .collect()
    }

    /// Refreshes the sampled gauges (`uptime_seconds`,
    /// `store_entries`, `store_shard_entries{shard=...}`) from live
    /// state. Called right before a registry snapshot is taken — by
    /// the `/metrics` endpoint and the `stats` protocol op — so both
    /// read identical, current values.
    pub fn refresh_gauges(&self) {
        self.uptime.set(self.created.elapsed().as_secs_f64());
        let sizes = self.shard_sizes();
        self.entries_gauge.set(sizes.iter().sum::<usize>() as f64);
        for (gauge, size) in self.shard_gauges.iter().zip(sizes) {
            gauge.set(size as f64);
        }
    }

    /// Whether every shard (and the plan cache) can still be locked —
    /// i.e. no mutex has been poisoned by a panicking holder. The
    /// `/readyz` probe.
    pub fn responsive(&self) -> bool {
        !self.shards.iter().any(|s| s.is_poisoned()) && !self.plans.is_poisoned()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard poisoned").len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &StoreKey) -> &Mutex<HashMap<StoreKey, ModelEntry>> {
        let i = (key.hash64() % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Streams one raw observation into `key`'s entry (created on
    /// first use), refreshing the model incrementally. Returns the
    /// refresh outcome and the entry's new epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError::Ingest`] for invalid observations.
    pub fn ingest_sample(
        &self,
        key: &StoreKey,
        d: u64,
        t: f64,
    ) -> Result<(IngestOutcome, u64), StoreError> {
        let mut shard = self.shard(key).lock().expect("store shard poisoned");
        let entry = shard
            .entry(key.clone())
            .or_insert_with(|| ModelEntry::new(self.config.entry));
        let outcome = entry.ingest_sample(d, t)?;
        let epoch = entry.epoch();
        drop(shard);
        self.metrics.count_outcome(outcome);
        Ok((outcome, epoch))
    }

    /// Absorbs an aggregated point into `key`'s entry (created on
    /// first use) with repetition-weighted merge semantics — the bulk
    /// load path. Returns the refresh kind and the new epoch.
    ///
    /// # Errors
    ///
    /// Propagates entry errors (invalid point, mixed ingestion modes).
    pub fn ingest_point(
        &self,
        key: &StoreKey,
        point: Point,
    ) -> Result<(Refresh, u64), StoreError> {
        let mut shard = self.shard(key).lock().expect("store shard poisoned");
        let entry = shard
            .entry(key.clone())
            .or_insert_with(|| ModelEntry::new(self.config.entry));
        let refresh = entry.ingest_point(point)?;
        let epoch = entry.epoch();
        drop(shard);
        match refresh {
            Refresh::Patched => self.metrics.count_outcome(IngestOutcome::Patched),
            Refresh::Rebuilt => self.metrics.count_outcome(IngestOutcome::Rebuilt),
        }
        Ok((refresh, epoch))
    }

    /// Looks up `key`'s entry, returning its epoch and model points
    /// (`None` when absent). Counts a model hit or miss.
    pub fn lookup(&self, key: &StoreKey) -> Option<(u64, Vec<Point>)> {
        let shard = self.shard(key).lock().expect("store shard poisoned");
        match shard.get(key) {
            Some(entry) => {
                let out = (entry.epoch(), entry.model().points().to_vec());
                self.metrics.model_hits.inc();
                Some(out)
            }
            None => {
                self.metrics.model_misses.inc();
                None
            }
        }
    }

    /// The epoch of `key`'s entry, if present (no hit/miss counting).
    pub fn epoch_of(&self, key: &StoreKey) -> Option<u64> {
        let shard = self.shard(key).lock().expect("store shard poisoned");
        shard.get(key).map(|e| e.epoch())
    }

    /// Runs `f` against `key`'s entry under the shard lock (tests,
    /// maintenance). `None` when absent.
    pub fn with_entry<R>(&self, key: &StoreKey, f: impl FnOnce(&ModelEntry) -> R) -> Option<R> {
        let shard = self.shard(key).lock().expect("store shard poisoned");
        shard.get(key).map(f)
    }

    /// Partitions `total` units over the member models, answering from
    /// the plan cache when the same query was solved against the same
    /// member epochs. Returns the distribution and whether it came
    /// from cache. A cached answer is bit-identical to recomputation:
    /// the models at those epochs are deterministic, and epochs are
    /// part of the cache key.
    ///
    /// `algorithm` is the cache discriminator for `partitioner` —
    /// callers must pass distinct names for distinct partitioners
    /// (the protocol layer derives both from the same request field).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownKey`] if any member has no entry;
    /// [`StoreError::Core`] if the partitioner fails.
    pub fn partition(
        &self,
        members: &[StoreKey],
        total: u64,
        partitioner: &dyn Partitioner,
        algorithm: &str,
    ) -> Result<(Distribution, bool), StoreError> {
        if members.is_empty() {
            return Err(StoreError::UnknownKey("<empty member list>".to_owned()));
        }
        // Hot path: stamp epochs only — cloning the member models is
        // deferred to the miss path, so a cache hit never copies model
        // state.
        let mut stamped = Vec::with_capacity(members.len());
        for key in members {
            let shard = self.shard(key).lock().expect("store shard poisoned");
            let entry = shard
                .get(key)
                .ok_or_else(|| StoreError::UnknownKey(key.to_string()))?;
            stamped.push((key.clone(), entry.epoch()));
        }
        let mut plan_key = PlanKey {
            members: stamped,
            total,
            algorithm: algorithm.to_owned(),
        };
        if let Some(dist) = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .get(&plan_key)
        {
            self.metrics.plan_hits.inc();
            return Ok((dist, true));
        }
        self.metrics.plan_misses.inc();
        // Miss: re-read each member, cloning its model and re-stamping
        // its (possibly advanced) epoch, so the plan is cached under
        // exactly the epochs of the models it was computed from.
        let mut models = Vec::with_capacity(members.len());
        for (slot, key) in plan_key.members.iter_mut().zip(members) {
            let shard = self.shard(key).lock().expect("store shard poisoned");
            let entry = shard
                .get(key)
                .ok_or_else(|| StoreError::UnknownKey(key.to_string()))?;
            slot.1 = entry.epoch();
            models.push(entry.model().clone());
        }
        let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
        let dist = partitioner.partition(total, &refs)?;
        let evicted = self
            .plans
            .lock()
            .expect("plan cache poisoned")
            .insert(plan_key, dist.clone());
        if evicted > 0 {
            self.metrics.plan_evictions.add(evicted);
        }
        Ok((dist, false))
    }

    /// Plan-cache occupancy `(plans, bytes, budget)` for the `stats`
    /// protocol op.
    pub fn plan_cache_stats(&self) -> (usize, usize, usize) {
        let plans = self.plans.lock().expect("plan cache poisoned");
        (plans.len(), plans.bytes(), plans.budget())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fupermod_core::partition::GeometricPartitioner;

    fn fed_store() -> (ModelStore, Vec<StoreKey>) {
        let store = ModelStore::new(StoreConfig::default());
        let keys = vec![
            StoreKey::new("dev0", "gemm", "default"),
            StoreKey::new("dev1", "gemm", "default"),
        ];
        for (r, key) in keys.iter().enumerate() {
            for d in [100u64, 400, 900] {
                let t = (d as f64) * 1e-3 * (r + 1) as f64;
                store.ingest_sample(key, d, t).unwrap();
            }
        }
        (store, keys)
    }

    #[test]
    fn sharding_routes_consistently() {
        let (store, keys) = fed_store();
        assert_eq!(store.len(), 2);
        assert_eq!(store.epoch_of(&keys[0]), Some(3));
        assert!(store.lookup(&keys[0]).is_some());
        assert!(store.lookup(&StoreKey::new("nope", "gemm", "default")).is_none());
        let snap = store.metrics().snapshot();
        assert_eq!(snap.model_hits, 1);
        assert_eq!(snap.model_misses, 1);
    }

    #[test]
    fn partition_caches_and_epoch_invalidates() {
        let (store, keys) = fed_store();
        let part = GeometricPartitioner::default();
        let (d1, cached1) = store.partition(&keys, 1000, &part, "geometric").unwrap();
        assert!(!cached1);
        let (d2, cached2) = store.partition(&keys, 1000, &part, "geometric").unwrap();
        assert!(cached2);
        assert_eq!(d1, d2);
        // Epoch bump on one member invalidates the dependent plan.
        store.ingest_sample(&keys[0], 100, 0.11).unwrap();
        let (_, cached3) = store.partition(&keys, 1000, &part, "geometric").unwrap();
        assert!(!cached3, "stale plan served after epoch advance");
        let snap = store.metrics().snapshot();
        assert_eq!(snap.plan_hits, 1);
        assert_eq!(snap.plan_misses, 2);
    }

    #[test]
    fn export_events_emits_nonzero_counters() {
        use fupermod_core::trace::MemorySink;
        let (store, keys) = fed_store();
        let part = GeometricPartitioner::default();
        store.partition(&keys, 1000, &part, "geometric").unwrap();
        store.partition(&keys, 1000, &part, "geometric").unwrap();
        let sink = MemorySink::new();
        let emitted = store.metrics().export_events(0, &sink);
        assert!(emitted >= 3, "expected refresh + plan counters, got {emitted}");
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Metrics { scope, count, .. }
                if scope == "store.plan.hit" && *count == 1
        )));
    }
}
