#![warn(missing_docs)]

//! # fupermod-store — partitioning-as-a-service substrate
//!
//! FuPerMod's cost is dominated by rebuilding functional performance
//! models and re-solving the partition every time new `(size, time)`
//! observations arrive. The paper rebuilds from scratch; a serving
//! system handling many tenants and millions of lookups must refresh
//! *incrementally* and answer from warm cache. This crate applies the
//! incremental-view-maintenance idea from materialized-view systems to
//! device models:
//!
//! * [`StoreKey`] — cache key `(device-profile fingerprint, kernel id,
//!   build config)`, so models transfer between hosts with the same
//!   device fingerprint.
//! * [`ModelEntry`] — one device model plus the per-size
//!   `IncrementalStats` samples it was derived from, maintained
//!   incrementally: a new observation of a known size patches one
//!   Akima spline window (O(1)), **bit-identical** to a from-scratch
//!   rebuild over the same sample stream (pinned by the
//!   `prefix_identity` proptest suite), with a full-rebuild fallback
//!   when the observation reclassifies earlier samples' outlier
//!   status. Every mutation advances the entry's epoch counter.
//! * [`ModelStore`] — N-way sharded (hash-by-key) concurrent map of
//!   entries, plus a [`PlanCache`] memoizing `Partitioner` results
//!   keyed by `(member epochs, total, algorithm)` — an epoch advance
//!   changes the key, so stale plans can never be served — with LRU
//!   eviction under a configurable byte budget.
//! * [`protocol`]/[`server`] — the line-delimited JSON protocol and
//!   the TCP serving loop behind the `fupermod_served` daemon
//!   (`docs/SERVE.md`).
//!
//! Hit/miss/refresh/eviction counters live in a shared
//! [`fupermod_core::telemetry::Registry`] on the store; they are
//! exported through the existing `metrics` trace events
//! ([`StoreMetrics::export_events`]) and served live by the [`http`]
//! module (`GET /metrics` Prometheus exposition plus
//! `/healthz`/`/readyz` probes — `docs/OBSERVABILITY.md` §9).

pub mod entry;
pub mod http;
pub mod key;
pub mod plan;
pub mod protocol;
pub mod server;
pub mod store;

pub use entry::{EntryConfig, IngestOutcome, ModelEntry};
pub use key::StoreKey;
pub use plan::{PlanCache, PlanKey};
pub use store::{ModelStore, StoreConfig, StoreMetrics, StoreMetricsSnapshot};

use std::fmt;

use fupermod_core::CoreError;

/// Errors of the store and serving layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying model/partition operation failed.
    Core(CoreError),
    /// An observation or point was invalid for ingestion.
    Ingest(String),
    /// A lookup or partition referenced a key with no entry.
    UnknownKey(String),
    /// A protocol line could not be parsed or answered.
    Protocol(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "store: {e}"),
            StoreError::Ingest(m) => write!(f, "store ingest: {m}"),
            StoreError::UnknownKey(k) => write!(f, "store: no entry for key {k}"),
            StoreError::Protocol(m) => write!(f, "store protocol: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}
