//! A minimal hand-rolled HTTP/1.1 listener for the observability
//! plane of `fupermod_served`: `GET /metrics` (Prometheus text
//! exposition 0.0.4), `GET /healthz` (liveness) and `GET /readyz`
//! (readiness).
//!
//! Deliberately tiny and std-only — no routing table, no keep-alive
//! tuning, no TLS. It answers exactly three GET paths, closes the
//! connection after each response (`Connection: close`), and ignores
//! request headers and bodies. That is all a scraper needs, and it
//! keeps the daemon's dependency budget at zero.
//!
//! The accept loop mirrors [`crate::server`]: non-blocking accepts
//! polling a shared stop flag, one short-lived thread per connection.
//! Liveness (`/healthz`) is "the listener thread is turning"; it
//! stays 200 until the process exits. Readiness (`/readyz`) is "the
//! daemon will still answer protocol requests": it turns 503 once
//! shutdown begins or if a store shard mutex has been poisoned.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::store::ModelStore;

/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket timeout: a scraper that stalls mid-request
/// must not pin a handler thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Content type of the Prometheus text exposition format.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Runs the metrics/health listener until `stop` is set. Blocks the
/// calling thread (spawn it next to the protocol `serve` loop);
/// handler threads are joined before returning.
///
/// # Errors
///
/// Propagates listener I/O errors (per-connection errors only end
/// that connection).
pub fn serve_http(
    listener: TcpListener,
    store: Arc<ModelStore>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                handles.push(thread::spawn(move || {
                    let _ = handle_connection(stream, &store, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    store: &ModelStore,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain (and ignore) headers up to the blank line so the peer is
    // not left with an unread buffer when we close.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => {
                store.refresh_gauges();
                let text = store.registry().snapshot().render_prometheus();
                ("200 OK", METRICS_CONTENT_TYPE, text)
            }
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
            "/readyz" => {
                if stop.load(Ordering::SeqCst) {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "shutting down\n".to_owned(),
                    )
                } else if !store.responsive() {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "store unresponsive\n".to_owned(),
                    )
                } else {
                    ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned())
                }
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_owned(),
            ),
        }
    };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// A one-shot HTTP GET over a fresh connection, for scripts and gates
/// that must not depend on `curl` being installed. Returns
/// `(status_code, body)`.
///
/// # Errors
///
/// Propagates I/O errors and malformed status lines.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body separator")
        })?;
    let status = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn start() -> (String, Arc<ModelStore>, Arc<AtomicBool>, thread::JoinHandle<std::io::Result<()>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let store = Arc::new(ModelStore::new(StoreConfig::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let (store, stop) = (Arc::clone(&store), Arc::clone(&stop));
            thread::spawn(move || serve_http(listener, store, stop))
        };
        (addr, store, stop, handle)
    }

    #[test]
    fn serves_health_metrics_and_readiness() {
        let (addr, store, stop, handle) = start();

        let (code, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        let (code, body) = http_get(&addr, "/readyz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ready\n"));

        let key = crate::StoreKey::new("dev0", "gemm", "c");
        for (d, t) in [(100u64, 0.1), (200, 0.2), (400, 0.4)] {
            store.ingest_sample(&key, d, t).unwrap();
        }
        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(
            body.contains("# TYPE store_entries gauge"),
            "missing store_entries family:\n{body}"
        );
        assert!(body.contains("store_entries 1"), "body:\n{body}");
        assert!(
            body.contains("uptime_seconds"),
            "missing uptime gauge:\n{body}"
        );

        let (code, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(code, 404);

        // Once the stop flag flips, readiness fails while liveness is
        // still answered by in-flight handler threads. The accept loop
        // itself exits, so probe readiness on a connection raced in
        // before the listener closes — simplest is to flip, probe, and
        // accept either 503 or a refused connection.
        stop.store(true, Ordering::SeqCst);
        // A refused connection means the listener is already gone —
        // also "not ready"; only a served response must be a 503.
        if let Ok((code, _)) = http_get(&addr, "/readyz") {
            assert_eq!(code, 503);
        }
        handle.join().unwrap().unwrap();
    }
}
