//! One incrementally-maintained device model.
//!
//! A [`ModelEntry`] owns the raw per-size observation samples
//! ([`IncrementalStats`] per problem size) *and* the Akima model
//! derived from them, and keeps the two consistent under streaming
//! ingestion. The maintained invariant — pinned by the
//! `prefix_identity` proptest suite — is:
//!
//! > After every ingested observation, the entry's model is
//! > **bit-identical** to [`ModelEntry::cold_rebuild`] over the same
//! > sample stream.
//!
//! The cheap path gets there incrementally: a new observation of an
//! already-known size re-derives that one size's summary point from
//! its updated statistics and patches the matching Akima spline node
//! (`AkimaSpline::set_y`, O(1) and itself bit-identical to a rebuild
//! by contract). Two events force the O(n) full rebuild instead: a
//! brand-new size (a node insertion re-indexes the spline), and an
//! observation that *reclassifies* earlier samples' outlier status —
//! the patch-locality assumption ("only this size's point moved
//! because of this sample alone") no longer describes what happened,
//! so the conservative fallback re-derives everything. Both paths
//! land on the same bits; the distinction is work, not meaning.

use std::collections::BTreeMap;

use fupermod_core::model::{AkimaModel, Model, Refresh};
use fupermod_core::Point;
use fupermod_num::stats::IncrementalStats;

use crate::StoreError;

/// Statistical configuration of an entry, fixed at creation: the
/// MAD outlier-rejection threshold and the confidence level of the
/// per-point confidence intervals (mirroring
/// `Benchmark::with_outlier_rejection` and `Precision`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryConfig {
    /// Samples farther than `outlier_k` MADs from the median are
    /// rejected when deriving a size's summary point.
    pub outlier_k: f64,
    /// Confidence level of each point's `ci` half-width.
    pub confidence: f64,
}

impl Default for EntryConfig {
    fn default() -> Self {
        Self {
            outlier_k: 5.0,
            confidence: 0.95,
        }
    }
}

/// How an ingested observation was absorbed (the store's refresh
/// counters aggregate these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Known size, no reclassification: one spline window patched.
    Patched,
    /// New size: the model was rebuilt (node insertion).
    Rebuilt,
    /// The observation reclassified earlier samples' outlier status:
    /// full-rebuild fallback.
    FallbackRebuilt,
}

/// One device model plus the samples it is derived from.
#[derive(Debug, Clone, Default)]
pub struct ModelEntry {
    samples: BTreeMap<u64, IncrementalStats>,
    model: AkimaModel,
    epoch: u64,
    config: EntryConfig,
}

impl ModelEntry {
    /// An empty entry with the given statistical configuration.
    pub fn new(config: EntryConfig) -> Self {
        Self {
            samples: BTreeMap::new(),
            model: AkimaModel::new(),
            epoch: 0,
            config,
        }
    }

    /// The entry's epoch: advances on every successful mutation.
    /// Plan-cache keys embed it, so an advance invalidates every
    /// dependent cached partition automatically.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintained model.
    pub fn model(&self) -> &AkimaModel {
        &self.model
    }

    /// The entry's statistical configuration.
    pub fn config(&self) -> EntryConfig {
        self.config
    }

    /// Number of distinct problem sizes observed.
    pub fn sizes(&self) -> usize {
        self.samples.len()
    }

    /// Total observations ingested through the sample path.
    pub fn observations(&self) -> u64 {
        self.samples.values().map(|s| s.count()).sum()
    }

    /// Derives the summary [`Point`] for one size from its samples:
    /// outlier-filtered mean, surviving repetition count, and the
    /// configured confidence-interval half-width. Both the
    /// incremental path and [`Self::cold_rebuild`] go through this
    /// function, so they cannot diverge on derivation arithmetic.
    fn derive_point(d: u64, stats: &IncrementalStats, config: EntryConfig) -> Point {
        let (kept, _) = stats.filtered(config.outlier_k);
        let ci = kept
            .confidence_interval(config.confidence)
            .map(|ci| ci.half_width)
            .unwrap_or(0.0);
        Point {
            d,
            t: kept.mean(),
            reps: kept.count() as u32,
            ci,
        }
    }

    fn validate(d: u64, t: f64) -> Result<(), StoreError> {
        if d == 0 {
            return Err(StoreError::Ingest(
                "zero-size observations carry no information (t(0) = 0 by definition)"
                    .to_owned(),
            ));
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(StoreError::Ingest(format!(
                "observation time must be finite and positive, got d={d}, t={t}"
            )));
        }
        Ok(())
    }

    /// Streams one raw `(size, time)` observation into the entry and
    /// refreshes the model — incrementally when it can, with the
    /// full-rebuild fallback when the observation changed the outlier
    /// classification of earlier samples. Advances the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Ingest`] for `d == 0`, a non-finite /
    /// non-positive `t`, or an entry that was bulk-loaded with
    /// aggregated points (the reclassification fallback rebuilds from
    /// raw samples only, which would silently drop the loaded points
    /// — the mirror of the guard in [`Self::ingest_point`]); the
    /// entry is unchanged on error.
    pub fn ingest_sample(&mut self, d: u64, t: f64) -> Result<IngestOutcome, StoreError> {
        Self::validate(d, t)?;
        if self.samples.is_empty() && !self.model.points().is_empty() {
            return Err(StoreError::Ingest(
                "entry was bulk-loaded with aggregated points; raw samples would be \
                 dropped on the next model rebuild"
                    .to_owned(),
            ));
        }
        let k = self.config.outlier_k;
        let is_new_size = !self.samples.contains_key(&d);
        let stats = self.samples.entry(d).or_default();
        let reclassified = stats.push_detecting_reclassification(t, k);
        let outcome = if reclassified {
            self.model = self.rebuild_model()?;
            IngestOutcome::FallbackRebuilt
        } else {
            let point = Self::derive_point(d, &self.samples[&d], self.config);
            match self.model.set_point(point)? {
                Refresh::Patched => IngestOutcome::Patched,
                Refresh::Rebuilt => IngestOutcome::Rebuilt,
            }
        };
        debug_assert!(
            !is_new_size || outcome != IngestOutcome::Patched,
            "a new size cannot take the patch path"
        );
        self.epoch += 1;
        Ok(outcome)
    }

    /// [`Self::ingest_sample`] with the incremental machinery switched
    /// off: pushes the observation, then always rebuilds the model
    /// from scratch. This *is* the reference the incremental path is
    /// measured and tested against — the `prefix_identity` suite
    /// asserts bitwise equality between the two at every prefix, and
    /// the `store_serve` bench reports their throughput ratio.
    pub fn ingest_sample_rebuilding(&mut self, d: u64, t: f64) -> Result<(), StoreError> {
        Self::validate(d, t)?;
        if self.samples.is_empty() && !self.model.points().is_empty() {
            return Err(StoreError::Ingest(
                "entry was bulk-loaded with aggregated points; raw samples would be \
                 dropped on the next model rebuild"
                    .to_owned(),
            ));
        }
        self.samples.entry(d).or_default().push(t);
        self.model = self.rebuild_model()?;
        self.epoch += 1;
        Ok(())
    }

    /// Absorbs an externally-aggregated [`Point`] (repetition-weighted
    /// merge, exactly like `Model::update` / `io::load_into_model`) and
    /// refreshes incrementally. Advances the epoch.
    ///
    /// This is the daemon's bulk-load path: replaying a `*.points`
    /// file through it yields a model bit-identical to
    /// `load_into_model` on the offline CLI path (the `check.sh` smoke
    /// gate diffs the two). Pre-aggregated points do not enter the
    /// raw sample statistics, so [`Self::cold_rebuild`]'s sample-path
    /// invariant only covers entries fed via [`Self::ingest_sample`];
    /// mixing both paths in one entry is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Ingest`] when the entry already holds raw
    /// samples, or [`StoreError::Core`] for an invalid point.
    pub fn ingest_point(&mut self, point: Point) -> Result<Refresh, StoreError> {
        if !self.samples.is_empty() {
            return Err(StoreError::Ingest(
                "entry already maintains raw samples; aggregated points would desynchronise them"
                    .to_owned(),
            ));
        }
        let refresh = self.model.absorb(point)?;
        self.epoch += 1;
        Ok(refresh)
    }

    /// Builds a fresh model from the raw samples, from scratch: one
    /// derived point per size, inserted in ascending size order into a
    /// new [`AkimaModel`]. This is the definition the incremental
    /// path is pinned to.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Core`] if a derived point is invalid
    /// (cannot happen for observations accepted by ingestion).
    pub fn cold_rebuild(&self) -> Result<AkimaModel, StoreError> {
        self.rebuild_model()
    }

    fn rebuild_model(&self) -> Result<AkimaModel, StoreError> {
        let mut model = AkimaModel::new();
        for (&d, stats) in &self.samples {
            model.update(Self::derive_point(d, stats, self.config))?;
        }
        Ok(model)
    }

    /// Approximate heap footprint of the entry (samples + model), for
    /// capacity planning and the `stats` protocol op.
    pub fn approx_bytes(&self) -> usize {
        let samples: usize = self
            .samples
            .values()
            // arrival + sorted copies of each f64 sample, plus map node
            .map(|s| 16 * s.count() as usize + 64)
            .sum();
        let model = std::mem::size_of_val::<[Point]>(self.model.points()) * 2;
        samples + model + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_rejects_invalid_observations() {
        let mut e = ModelEntry::new(EntryConfig::default());
        assert!(e.ingest_sample(0, 1.0).is_err());
        assert!(e.ingest_sample(10, 0.0).is_err());
        assert!(e.ingest_sample(10, f64::NAN).is_err());
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.sizes(), 0);
    }

    #[test]
    fn epoch_advances_on_every_ingest() {
        let mut e = ModelEntry::new(EntryConfig::default());
        e.ingest_sample(100, 1.0).unwrap();
        e.ingest_sample(100, 1.1).unwrap();
        e.ingest_sample(200, 2.0).unwrap();
        assert_eq!(e.epoch(), 3);
        assert_eq!(e.sizes(), 2);
        assert_eq!(e.observations(), 3);
    }

    #[test]
    fn outcome_classification_matches_paths() {
        let mut e = ModelEntry::new(EntryConfig::default());
        assert_eq!(e.ingest_sample(100, 1.0).unwrap(), IngestOutcome::Rebuilt);
        assert_eq!(e.ingest_sample(200, 2.0).unwrap(), IngestOutcome::Rebuilt);
        assert_eq!(e.ingest_sample(100, 1.05).unwrap(), IngestOutcome::Patched);
    }

    #[test]
    fn mixing_sample_and_point_paths_is_rejected() {
        let mut e = ModelEntry::new(EntryConfig::default());
        e.ingest_sample(100, 1.0).unwrap();
        assert!(e.ingest_point(Point::single(200, 2.0)).is_err());
        let mut p = ModelEntry::new(EntryConfig::default());
        p.ingest_point(Point::single(200, 2.0)).unwrap();
        assert_eq!(p.epoch(), 1);
        // The mirror direction: raw samples into a bulk-loaded entry
        // would be silently dropped by the next rebuild, so both the
        // incremental and the reference ingest path refuse them.
        assert!(p.ingest_sample(100, 1.0).is_err());
        assert!(p.ingest_sample_rebuilding(100, 1.0).is_err());
        assert_eq!(p.epoch(), 1, "rejected ingests must not advance the epoch");
        assert_eq!(p.model().points().len(), 1);
    }
}
