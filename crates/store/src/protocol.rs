//! The daemon's line-delimited JSON protocol (`docs/SERVE.md`).
//!
//! One request object per line in, one response object per line out,
//! over a plain TCP stream. The vocabulary is deliberately flat —
//! scalar fields plus arrays of scalars — so the hand-rolled parser
//! below (the build environment has no serde_json) stays small and
//! auditable. Floats are emitted with
//! [`fupermod_core::trace::fmt_float`], the repo-wide shortest
//! round-trip encoding, so a value survives
//! serve → parse → re-serve bit-exactly.
//!
//! | op | request fields | response |
//! |---|---|---|
//! | `ingest` | key fields, `d`, `t` | `refresh`, `epoch` |
//! | `ingest_point` | key fields, `d`, `t`, `reps`, `ci` | `refresh`, `epoch` |
//! | `lookup` | key fields | `epoch`, `ds`, `ts`, `reps`, `cis` |
//! | `partition` | `fingerprints`, `kernel`, `config`, `total`, `algorithm` | `cached`, `ds`, `ts`, `makespan`, `imbalance` |
//! | `stats` | — | counter fields |
//! | `shutdown` | — | `ok` |
//!
//! Key fields are `fingerprint`, `kernel`, `config`. Every response
//! carries `"ok": true|false`; failures carry `"error"` instead of
//! result fields.

use fupermod_core::model::Refresh;
use fupermod_core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod_core::telemetry::SampleValue;
use fupermod_core::trace::fmt_float;
use fupermod_core::Point;

use crate::entry::IngestOutcome;
use crate::store::ModelStore;
use crate::{StoreError, StoreKey};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stream one raw observation into a model entry.
    Ingest {
        /// Target model.
        key: StoreKey,
        /// Problem size.
        d: u64,
        /// Observed time, seconds.
        t: f64,
    },
    /// Absorb one aggregated point (bulk load, merge semantics).
    IngestPoint {
        /// Target model.
        key: StoreKey,
        /// The aggregated point.
        point: Point,
    },
    /// Fetch a model's epoch and points.
    Lookup {
        /// Target model.
        key: StoreKey,
    },
    /// Partition `total` units over the named members.
    Partition {
        /// Member models, rank order.
        keys: Vec<StoreKey>,
        /// Total workload.
        total: u64,
        /// Algorithm name (`even`, `constant`, `geometric`,
        /// `numerical`).
        algorithm: String,
    },
    /// Fetch the store counters.
    Stats,
    /// Stop the daemon after responding.
    Shutdown,
}

impl Request {
    /// Stable op tag (the request's `op` field; also the `op` label
    /// on the daemon's per-request telemetry).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ingest { .. } => "ingest",
            Request::IngestPoint { .. } => "ingest_point",
            Request::Lookup { .. } => "lookup",
            Request::Partition { .. } => "partition",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`StoreError::Protocol`] on malformed JSON, unknown `op`, or
/// missing/mistyped fields.
pub fn parse_request(line: &str) -> Result<Request, StoreError> {
    let fields = json::parse_flat_object(line).map_err(StoreError::Protocol)?;
    let op = json::get_str(&fields, "op")?;
    match op.as_str() {
        "ingest" => Ok(Request::Ingest {
            key: key_of(&fields)?,
            d: json::get_u64(&fields, "d")?,
            t: json::get_f64(&fields, "t")?,
        }),
        "ingest_point" => Ok(Request::IngestPoint {
            key: key_of(&fields)?,
            point: Point {
                d: json::get_u64(&fields, "d")?,
                t: json::get_f64(&fields, "t")?,
                reps: json::get_u64(&fields, "reps")? as u32,
                ci: json::get_f64(&fields, "ci")?,
            },
        }),
        "lookup" => Ok(Request::Lookup {
            key: key_of(&fields)?,
        }),
        "partition" => {
            let fingerprints = json::get_str_array(&fields, "fingerprints")?;
            let kernel = json::get_str(&fields, "kernel")?;
            let config = json::get_str(&fields, "config")?;
            let keys = fingerprints
                .into_iter()
                .map(|fp| StoreKey::new(fp, kernel.clone(), config.clone()))
                .collect();
            Ok(Request::Partition {
                keys,
                total: json::get_u64(&fields, "total")?,
                algorithm: json::get_str(&fields, "algorithm")?,
            })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(StoreError::Protocol(format!("unknown op '{other}'"))),
    }
}

fn key_of(fields: &[(String, json::Value)]) -> Result<StoreKey, StoreError> {
    Ok(StoreKey::new(
        json::get_str(fields, "fingerprint")?,
        json::get_str(fields, "kernel")?,
        json::get_str(fields, "config")?,
    ))
}

/// The partitioner for a protocol algorithm name (the same vocabulary
/// as the CLI's `--algorithm` flag).
///
/// # Errors
///
/// [`StoreError::Protocol`] for an unknown name.
pub fn pick_partitioner(name: &str) -> Result<Box<dyn Partitioner>, StoreError> {
    match name {
        "even" => Ok(Box::new(EvenPartitioner)),
        "constant" => Ok(Box::new(ConstantPartitioner)),
        "geometric" => Ok(Box::new(GeometricPartitioner::default())),
        "numerical" => Ok(Box::new(NumericalPartitioner::default())),
        other => Err(StoreError::Protocol(format!("unknown algorithm '{other}'"))),
    }
}

fn refresh_tag(r: Refresh) -> &'static str {
    match r {
        Refresh::Patched => "patched",
        Refresh::Rebuilt => "rebuilt",
    }
}

fn outcome_tag(o: IngestOutcome) -> &'static str {
    match o {
        IngestOutcome::Patched => "patched",
        IngestOutcome::Rebuilt => "rebuilt",
        IngestOutcome::FallbackRebuilt => "fallback_rebuilt",
    }
}

fn error_line(e: &StoreError) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", json::quote(&e.to_string()))
}

fn num_array(values: impl Iterator<Item = String>) -> String {
    let mut s = String::from("[");
    for (i, v) in values.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v);
    }
    s.push(']');
    s
}

/// Executes one request against `store` and renders the response
/// line (without the trailing newline). Infallible: failures render
/// as `{"ok":false,"error":...}` lines.
pub fn handle(store: &ModelStore, request: &Request) -> String {
    match try_handle(store, request) {
        Ok(line) => line,
        Err(e) => error_line(&e),
    }
}

fn try_handle(store: &ModelStore, request: &Request) -> Result<String, StoreError> {
    match request {
        Request::Ingest { key, d, t } => {
            let (outcome, epoch) = store.ingest_sample(key, *d, *t)?;
            Ok(format!(
                "{{\"ok\":true,\"refresh\":\"{}\",\"epoch\":{epoch}}}",
                outcome_tag(outcome)
            ))
        }
        Request::IngestPoint { key, point } => {
            let (refresh, epoch) = store.ingest_point(key, *point)?;
            Ok(format!(
                "{{\"ok\":true,\"refresh\":\"{}\",\"epoch\":{epoch}}}",
                refresh_tag(refresh)
            ))
        }
        Request::Lookup { key } => {
            let (epoch, points) = store
                .lookup(key)
                .ok_or_else(|| StoreError::UnknownKey(key.to_string()))?;
            Ok(format!(
                "{{\"ok\":true,\"epoch\":{epoch},\"ds\":{},\"ts\":{},\"reps\":{},\"cis\":{}}}",
                num_array(points.iter().map(|p| p.d.to_string())),
                num_array(points.iter().map(|p| fmt_float(p.t))),
                num_array(points.iter().map(|p| p.reps.to_string())),
                num_array(points.iter().map(|p| fmt_float(p.ci))),
            ))
        }
        Request::Partition {
            keys,
            total,
            algorithm,
        } => {
            let partitioner = pick_partitioner(algorithm)?;
            let (dist, cached) = store.partition(keys, *total, partitioner.as_ref(), algorithm)?;
            Ok(format!(
                "{{\"ok\":true,\"cached\":{cached},\"ds\":{},\"ts\":{},\"makespan\":{},\"imbalance\":{}}}",
                num_array(dist.parts().iter().map(|p| p.d.to_string())),
                num_array(dist.parts().iter().map(|p| fmt_float(p.t))),
                fmt_float(dist.predicted_makespan()),
                fmt_float(dist.predicted_imbalance()),
            ))
        }
        Request::Stats => {
            // One source of truth with the `/metrics` endpoint: both
            // refresh the sampled gauges and read the same registry
            // snapshot (the counters are the handles the store
            // increments — see `StoreMetrics`).
            store.refresh_gauges();
            let snap = store.registry().snapshot();
            let counter = |name: &str, labels: &[(&str, &str)]| -> u64 {
                match snap.find(name, labels) {
                    Some(SampleValue::Counter(v)) => *v,
                    _ => 0,
                }
            };
            let gauge = |name: &str| -> f64 {
                match snap.find(name, &[]) {
                    Some(SampleValue::Gauge(v)) => *v,
                    _ => 0.0,
                }
            };
            let (plans, plan_bytes, plan_budget) = store.plan_cache_stats();
            Ok(format!(
                "{{\"ok\":true,\"entries\":{},\"model_hits\":{},\"model_misses\":{},\"refresh_patched\":{},\"refresh_rebuilt\":{},\"refresh_fallbacks\":{},\"plan_hits\":{},\"plan_misses\":{},\"plan_evictions\":{},\"plans\":{plans},\"plan_bytes\":{plan_bytes},\"plan_budget\":{plan_budget},\"uptime_seconds\":{}}}",
                gauge("store_entries") as u64,
                counter("store_model_lookups_total", &[("result", "hit")]),
                counter("store_model_lookups_total", &[("result", "miss")]),
                counter("store_refresh_total", &[("outcome", "patched")]),
                counter("store_refresh_total", &[("outcome", "rebuilt")]),
                counter("store_refresh_total", &[("outcome", "fallback")]),
                counter("store_plan_requests_total", &[("result", "hit")]),
                counter("store_plan_requests_total", &[("result", "miss")]),
                counter("store_plan_evictions_total", &[]),
                fmt_float(gauge("uptime_seconds")),
            ))
        }
        Request::Shutdown => Ok("{\"ok\":true,\"shutting_down\":true}".to_owned()),
    }
}

/// Minimal flat-JSON support for the protocol: objects whose values
/// are strings, numbers, booleans, `null`, or arrays of strings /
/// numbers. (The trace module's flat parser is private and only
/// handles numeric arrays, so the protocol carries its own.)
pub mod json {
    /// A parsed value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// A string.
        Str(String),
        /// A number (JSON numbers are all doubles).
        Num(f64),
        /// A boolean.
        Bool(bool),
        /// `null`.
        Null,
        /// An array of strings.
        StrArray(Vec<String>),
        /// An array of numbers (also produced for `[]`).
        NumArray(Vec<f64>),
    }

    /// Parses one flat JSON object into `(key, value)` pairs in
    /// document order.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse_flat_object(s: &str) -> Result<Vec<(String, Value)>, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut fields = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.parse_string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let value = p.parse_value()?;
                fields.push((key, value));
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("trailing bytes after object".to_owned());
        }
        Ok(fields)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn next(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
        }
        fn expect(&mut self, want: u8) -> Result<(), String> {
            match self.next() {
                Some(b) if b == want => Ok(()),
                other => Err(format!("expected {:?}, got {other:?}", want as char)),
            }
        }

        fn parse_string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.next() {
                    None => return Err("unterminated string".to_owned()),
                    Some(b'"') => return Ok(out),
                    Some(b'\\') => match self.next() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self
                                    .next()
                                    .and_then(|b| (b as char).to_digit(16))
                                    .ok_or("bad \\u escape")?;
                                code = code * 16 + d;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or("surrogate \\u escapes unsupported")?,
                            );
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(b) if b < 0x20 => {
                        return Err("unescaped control character in string".to_owned())
                    }
                    Some(b) => {
                        // Re-assemble UTF-8 multibyte sequences verbatim.
                        let start = self.pos - 1;
                        let len = utf8_len(b)?;
                        if start + len > self.bytes.len() {
                            return Err("truncated UTF-8 sequence".to_owned());
                        }
                        self.pos = start + len;
                        let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                        out.push_str(chunk);
                    }
                }
            }
        }

        fn parse_number(&mut self) -> Result<f64, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| "invalid number".to_owned())
        }

        fn parse_value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'"') => Ok(Value::Str(self.parse_string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'[') => self.parse_array(),
                Some(_) => Ok(Value::Num(self.parse_number()?)),
                None => Err("expected value, got end of input".to_owned()),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(value)
            } else {
                Err(format!("expected literal '{word}'"))
            }
        }

        fn parse_array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::NumArray(Vec::new()));
            }
            if self.peek() == Some(b'"') {
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    items.push(self.parse_string()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::StrArray(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            let mut items = Vec::new();
            loop {
                self.skip_ws();
                items.push(self.parse_number()?);
                self.skip_ws();
                match self.next() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(Value::NumArray(items)),
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
    }

    fn utf8_len(first: u8) -> Result<usize, String> {
        match first {
            0x00..=0x7f => Ok(1),
            0xc0..=0xdf => Ok(2),
            0xe0..=0xef => Ok(3),
            0xf0..=0xf7 => Ok(4),
            _ => Err("invalid UTF-8 lead byte".to_owned()),
        }
    }

    /// Renders a JSON string literal (quotes + escapes).
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    use crate::StoreError;

    fn find<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a Value, StoreError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| StoreError::Protocol(format!("missing field '{key}'")))
    }

    /// Extracts a string field.
    ///
    /// # Errors
    ///
    /// [`StoreError::Protocol`] when missing or not a string.
    pub fn get_str(fields: &[(String, Value)], key: &str) -> Result<String, StoreError> {
        match find(fields, key)? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(StoreError::Protocol(format!(
                "field '{key}' must be a string, got {other:?}"
            ))),
        }
    }

    /// Extracts a finite numeric field.
    ///
    /// # Errors
    ///
    /// [`StoreError::Protocol`] when missing or not a number.
    pub fn get_f64(fields: &[(String, Value)], key: &str) -> Result<f64, StoreError> {
        match find(fields, key)? {
            Value::Num(v) => Ok(*v),
            other => Err(StoreError::Protocol(format!(
                "field '{key}' must be a number, got {other:?}"
            ))),
        }
    }

    /// Extracts a non-negative integer field.
    ///
    /// # Errors
    ///
    /// [`StoreError::Protocol`] when missing, non-numeric, negative,
    /// or not integral.
    pub fn get_u64(fields: &[(String, Value)], key: &str) -> Result<u64, StoreError> {
        let v = get_f64(fields, key)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(StoreError::Protocol(format!(
                "field '{key}' must be a non-negative integer, got {v}"
            )));
        }
        Ok(v as u64)
    }

    /// Extracts a string-array field (an empty array qualifies).
    ///
    /// # Errors
    ///
    /// [`StoreError::Protocol`] when missing or not a string array.
    pub fn get_str_array(
        fields: &[(String, Value)],
        key: &str,
    ) -> Result<Vec<String>, StoreError> {
        match find(fields, key)? {
            Value::StrArray(v) => Ok(v.clone()),
            Value::NumArray(v) if v.is_empty() => Ok(Vec::new()),
            other => Err(StoreError::Protocol(format!(
                "field '{key}' must be an array of strings, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn parses_every_op() {
        let r = parse_request(
            r#"{"op":"ingest","fingerprint":"fp","kernel":"gemm","config":"c","d":100,"t":0.5}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Ingest {
                key: StoreKey::new("fp", "gemm", "c"),
                d: 100,
                t: 0.5
            }
        );
        let r = parse_request(
            r#"{"op":"partition","fingerprints":["a","b"],"kernel":"gemm","config":"c","total":1000,"algorithm":"geometric"}"#,
        )
        .unwrap();
        match r {
            Request::Partition { keys, total, algorithm } => {
                assert_eq!(keys.len(), 2);
                assert_eq!(keys[0].fingerprint, "a");
                assert_eq!(total, 1000);
                assert_eq!(algorithm, "geometric");
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{ "op" : "shutdown" }"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{").is_err());
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request(r#"{"op":"ingest","fingerprint":"f"}"#).is_err());
        assert!(parse_request(r#"{"op":"ingest","fingerprint":1,"kernel":"k","config":"c","d":1,"t":1.0}"#).is_err());
        assert!(parse_request(r#"{"op":"stats"} trailing"#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let quoted = json::quote("a\"b\\c\nd\te\u{1}f");
        let line = format!("{{\"op\":\"lookup\",\"fingerprint\":{quoted},\"kernel\":\"k\",\"config\":\"c\"}}");
        match parse_request(&line).unwrap() {
            Request::Lookup { key } => assert_eq!(key.fingerprint, "a\"b\\c\nd\te\u{1}f"),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn ingested_float_survives_serve_round_trip() {
        // A value with no short decimal representation must come back
        // from the lookup response bit-exactly.
        let t = 0.1 + 0.2; // 0.30000000000000004
        let store = ModelStore::new(StoreConfig::default());
        let line = format!(
            "{{\"op\":\"ingest\",\"fingerprint\":\"fp\",\"kernel\":\"k\",\"config\":\"c\",\"d\":100,\"t\":{}}}",
            fmt_float(t)
        );
        let req = parse_request(&line).unwrap();
        let resp = handle(&store, &req);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let lookup = parse_request(
            r#"{"op":"lookup","fingerprint":"fp","kernel":"k","config":"c"}"#,
        )
        .unwrap();
        let resp = handle(&store, &lookup);
        let fields = json::parse_flat_object(&resp).unwrap();
        let ts = match fields.iter().find(|(k, _)| k == "ts").map(|(_, v)| v) {
            Some(json::Value::NumArray(v)) => v.clone(),
            other => panic!("bad ts field: {other:?}"),
        };
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to_bits(), t.to_bits());
    }

    #[test]
    fn errors_render_as_error_lines() {
        let store = ModelStore::new(StoreConfig::default());
        let req = parse_request(
            r#"{"op":"lookup","fingerprint":"absent","kernel":"k","config":"c"}"#,
        )
        .unwrap();
        let resp = handle(&store, &req);
        assert!(resp.starts_with("{\"ok\":false,\"error\":"), "{resp}");
        let fields = json::parse_flat_object(&resp).unwrap();
        assert!(matches!(
            fields.iter().find(|(k, _)| k == "ok").map(|(_, v)| v),
            Some(json::Value::Bool(false))
        ));
    }
}
