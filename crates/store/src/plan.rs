//! The partition-plan cache: memoized `Partitioner` results.
//!
//! A plan is keyed by the member models' `(StoreKey, epoch)` pairs
//! plus the total workload and the algorithm name. Epochs are *part
//! of the key*: when any member model absorbs an observation its
//! epoch advances, every dependent key changes, and the stale plan
//! can never be served again — invalidation by construction, no
//! notification machinery. Stale entries age out through the LRU
//! eviction that also enforces the configurable byte budget.

use std::collections::{BTreeMap, HashMap};

use fupermod_core::partition::Distribution;

use crate::StoreKey;

/// Cache key of one memoized partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The member models and the epoch each was at, in rank order.
    pub members: Vec<(StoreKey, u64)>,
    /// Total workload in computation units.
    pub total: u64,
    /// Partitioning algorithm name (`even`, `constant`, `geometric`,
    /// `numerical`).
    pub algorithm: String,
}

impl PlanKey {
    fn approx_bytes(&self) -> usize {
        let members: usize = self
            .members
            .iter()
            .map(|(k, _)| k.approx_bytes() + 8)
            .sum();
        members + self.algorithm.len() + 48
    }
}

#[derive(Debug)]
struct CachedPlan {
    dist: Distribution,
    bytes: usize,
    last_used: u64,
}

/// An LRU plan cache bounded by an approximate byte budget.
#[derive(Debug)]
pub struct PlanCache {
    budget: usize,
    bytes: usize,
    tick: u64,
    map: HashMap<PlanKey, CachedPlan>,
    /// Recency index: `last_used` tick → key. Ticks are unique (one
    /// per get/insert), so this is a faithful LRU order.
    lru: BTreeMap<u64, PlanKey>,
}

/// Approximate cached size of one plan: key strings + per-member
/// epoch + one `(d, t)` pair per rank + fixed bookkeeping. The exact
/// constants matter only for the budget arithmetic being stable and
/// testable, not for matching the allocator byte-for-byte.
pub fn plan_cost(key: &PlanKey, dist: &Distribution) -> usize {
    key.approx_bytes() + dist.parts().len() * 16 + 64
}

impl PlanCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            bytes: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Looks up a plan, refreshing its recency on hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Distribution> {
        self.tick += 1;
        let tick = self.tick;
        let plan = self.map.get_mut(key)?;
        self.lru.remove(&plan.last_used);
        plan.last_used = tick;
        self.lru.insert(tick, key.clone());
        Some(plan.dist.clone())
    }

    /// Inserts (or replaces) a plan, then evicts least-recently-used
    /// plans until the budget holds again. Returns how many plans
    /// were evicted. A plan larger than the whole budget is not
    /// cached at all (and evicts nothing).
    pub fn insert(&mut self, key: PlanKey, dist: Distribution) -> u64 {
        let bytes = plan_cost(&key, &dist);
        if bytes > self.budget {
            return 0;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.last_used);
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.lru.insert(tick, key.clone());
        self.map.insert(
            key,
            CachedPlan {
                dist,
                bytes,
                last_used: tick,
            },
        );
        let mut evicted = 0;
        while self.bytes > self.budget {
            let (&oldest, _) = self.lru.iter().next().expect("bytes > 0 implies entries");
            let victim = self.lru.remove(&oldest).expect("just observed");
            let plan = self.map.remove(&victim).expect("index is consistent");
            self.bytes -= plan.bytes;
            evicted += 1;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, epoch: u64, total: u64) -> PlanKey {
        PlanKey {
            members: vec![(StoreKey::new(name, "gemm", "default"), epoch)],
            total,
            algorithm: "geometric".to_owned(),
        }
    }

    fn dist(p: usize) -> Distribution {
        Distribution::even(1000, p)
    }

    #[test]
    fn get_after_insert_hits_and_epoch_change_misses() {
        let mut c = PlanCache::new(1 << 20);
        c.insert(key("a", 1, 1000), dist(4));
        assert!(c.get(&key("a", 1, 1000)).is_some());
        assert!(c.get(&key("a", 2, 1000)).is_none(), "epoch advanced");
        assert!(c.get(&key("a", 1, 2000)).is_none(), "different total");
    }

    #[test]
    fn lru_evicts_oldest_and_respects_budget() {
        let one = plan_cost(&key("a", 1, 1000), &dist(4));
        // Room for exactly two plans.
        let mut c = PlanCache::new(2 * one);
        assert_eq!(c.insert(key("a", 1, 1000), dist(4)), 0);
        assert_eq!(c.insert(key("b", 1, 1000), dist(4)), 0);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a", 1, 1000)).is_some());
        assert_eq!(c.insert(key("c", 1, 1000), dist(4)), 1);
        assert!(c.bytes() <= c.budget());
        assert!(c.get(&key("b", 1, 1000)).is_none(), "LRU victim evicted");
        assert!(c.get(&key("a", 1, 1000)).is_some());
        assert!(c.get(&key("c", 1, 1000)).is_some());
    }

    #[test]
    fn oversized_plan_is_not_cached() {
        let mut c = PlanCache::new(8);
        assert_eq!(c.insert(key("a", 1, 1000), dist(4)), 0);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = PlanCache::new(1 << 20);
        c.insert(key("a", 1, 1000), dist(4));
        let b1 = c.bytes();
        c.insert(key("a", 1, 1000), dist(4));
        assert_eq!(c.bytes(), b1);
        assert_eq!(c.len(), 1);
    }
}
