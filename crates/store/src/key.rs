//! Store keys: which device model an observation belongs to.
//!
//! Models are keyed by `(device-profile fingerprint, kernel id, build
//! config)` rather than by host name, following the cross-machine
//! black-box profile idea (Stevens & Klöckner): two hosts whose
//! devices fingerprint identically share one model, so a model built
//! on one machine warms the cache for the other.

use serde::{Deserialize, Serialize};

/// Cache key of one device model.
///
/// All three components are free-form strings owned by the profiling
/// layer; the store only hashes and compares them. The conventional
/// contents are:
///
/// * `fingerprint` — a stable digest of the device profile (vendor,
///   model, memory hierarchy, clock). [`fingerprint_of`] derives one
///   from the raw profile fields.
/// * `kernel` — the computation kernel identifier (e.g. `gemm`).
/// * `config` — the build configuration the kernel was compiled with
///   (flags, block sizes); models are not transferable across builds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StoreKey {
    /// Device-profile fingerprint.
    pub fingerprint: String,
    /// Kernel identifier.
    pub kernel: String,
    /// Build configuration.
    pub config: String,
}

impl StoreKey {
    /// Creates a key from its three components.
    pub fn new(
        fingerprint: impl Into<String>,
        kernel: impl Into<String>,
        config: impl Into<String>,
    ) -> Self {
        Self {
            fingerprint: fingerprint.into(),
            kernel: kernel.into(),
            config: config.into(),
        }
    }

    /// Stable 64-bit hash of the key (FNV-1a over the components with
    /// a separator, so `("ab", "c")` and `("a", "bc")` differ). Used
    /// for shard selection — stable across processes and runs, unlike
    /// `std`'s randomly-seeded hasher.
    pub fn hash64(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for part in [&self.fingerprint, &self.kernel, &self.config] {
            for &b in part.as_bytes() {
                h = fnv1a_step(h, b);
            }
            h = fnv1a_step(h, 0x1f); // unit separator
        }
        h
    }

    /// Approximate heap footprint, for the plan cache's byte budget.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.fingerprint.len() + self.kernel.len() + self.config.len() + 3 * 24
    }
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.fingerprint, self.kernel, self.config)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Derives a printable device fingerprint from raw profile fields: the
/// FNV-1a digest of the fields joined with separators, in fixed-width
/// hex. Stable across processes, hosts and runs.
///
/// # Examples
///
/// ```
/// use fupermod_store::key::fingerprint_of;
///
/// let a = fingerprint_of(&["vendorX", "dev0", "l2=512k"]);
/// assert_eq!(a, fingerprint_of(&["vendorX", "dev0", "l2=512k"]));
/// assert_ne!(a, fingerprint_of(&["vendorX", "dev1", "l2=512k"]));
/// assert_eq!(a.len(), 16);
/// ```
pub fn fingerprint_of(fields: &[&str]) -> String {
    let mut h = FNV_OFFSET;
    for part in fields {
        for &b in part.as_bytes() {
            h = fnv1a_step(h, b);
        }
        h = fnv1a_step(h, 0x1f);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_separator_safe() {
        let a = StoreKey::new("ab", "c", "d").hash64();
        let b = StoreKey::new("a", "bc", "d").hash64();
        assert_ne!(a, b);
        assert_eq!(a, StoreKey::new("ab", "c", "d").hash64());
    }

    #[test]
    fn display_joins_components() {
        let k = StoreKey::new("fp", "gemm", "default");
        assert_eq!(k.to_string(), "fp/gemm/default");
    }
}
