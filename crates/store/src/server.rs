//! The TCP serving loop behind `fupermod_served`.
//!
//! One OS thread per connection (the multi-tenant model of the rest
//! of the runtime layer), line-delimited JSON requests answered in
//! lockstep on the same stream. A `shutdown` request flips a shared
//! flag; the accept loop polls it between (non-blocking) accepts, so
//! the daemon drains and exits without being killed.
//!
//! Every request is wrapped in a telemetry span recorded into the
//! store's registry: `served_requests_total{op,outcome}`,
//! `served_request_duration_seconds{op}` latency histograms and
//! `served_bytes_total{direction}` — the series `GET /metrics`
//! exposes (see [`crate::http`]). Requests slower than the
//! configurable [`ServeOptions::slow_request`] threshold are logged
//! to stderr.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use fupermod_core::telemetry::{Counter, Histogram, Registry};

use crate::protocol::{self, Request};
use crate::store::ModelStore;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Request op tags the per-request telemetry is keyed by: the
/// protocol ops plus `invalid` for lines that fail to parse.
pub const REQUEST_OPS: [&str; 7] = [
    "ingest",
    "ingest_point",
    "lookup",
    "partition",
    "stats",
    "shutdown",
    "invalid",
];

/// Tuning knobs of the serving loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Log requests slower than this to stderr (`None` disables the
    /// slow-request log).
    pub slow_request: Option<Duration>,
}

/// Pre-registered per-request telemetry handles (one registration at
/// startup; the per-request hot path never takes the registry lock).
#[derive(Debug, Clone)]
struct RequestSpans {
    /// `[ok, error]` counters per [`REQUEST_OPS`] entry.
    requests: Vec<[Counter; 2]>,
    /// Latency histogram per [`REQUEST_OPS`] entry.
    durations: Vec<Histogram>,
    bytes_in: Counter,
    bytes_out: Counter,
}

impl RequestSpans {
    fn new(registry: &Registry) -> Self {
        let requests = REQUEST_OPS
            .iter()
            .map(|op| {
                ["ok", "error"].map(|outcome| {
                    registry.counter(
                        "served_requests_total",
                        "Requests handled, by op and outcome.",
                        &[("op", op), ("outcome", outcome)],
                    )
                })
            })
            .collect();
        let durations = REQUEST_OPS
            .iter()
            .map(|op| {
                registry.histogram(
                    "served_request_duration_seconds",
                    "Request handling latency (parse + execute + respond), by op.",
                    &[("op", op)],
                )
            })
            .collect();
        Self {
            requests,
            durations,
            bytes_in: registry.counter(
                "served_bytes_total",
                "Protocol bytes moved, by direction.",
                &[("direction", "in")],
            ),
            bytes_out: registry.counter(
                "served_bytes_total",
                "Protocol bytes moved, by direction.",
                &[("direction", "out")],
            ),
        }
    }

    fn op_index(op: &str) -> usize {
        REQUEST_OPS.iter().position(|&o| o == op).unwrap_or(REQUEST_OPS.len() - 1)
    }
}

/// Runs the serving loop on `listener` until a client sends
/// `shutdown` (or `stop` is flipped externally), with default
/// options. Blocks the calling thread; connection handlers run on
/// their own threads and are joined before returning, so every
/// in-flight response is flushed.
///
/// # Errors
///
/// Propagates listener I/O errors (per-connection errors only end
/// that connection).
pub fn serve(
    listener: TcpListener,
    store: Arc<ModelStore>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    serve_with(listener, store, stop, ServeOptions::default())
}

/// [`serve`] with explicit [`ServeOptions`].
///
/// # Errors
///
/// Propagates listener I/O errors (per-connection errors only end
/// that connection).
pub fn serve_with(
    listener: TcpListener,
    store: Arc<ModelStore>,
    stop: Arc<AtomicBool>,
    options: ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let spans = RequestSpans::new(store.registry());
    let mut handles = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                let spans = spans.clone();
                handles.push(thread::spawn(move || {
                    let _ = handle_connection(stream, &store, &stop, &spans, options);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(e),
        }
        // Reap finished handlers so a long-lived daemon does not
        // accumulate join handles.
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

fn handle_connection(
    stream: TcpStream,
    store: &ModelStore,
    stop: &AtomicBool,
    spans: &RequestSpans,
    options: ServeOptions,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        spans.bytes_in.add(line.len() as u64 + 1); // + newline
        let (op, response, is_shutdown) = match protocol::parse_request(&line) {
            Ok(request) => {
                let is_shutdown = request == Request::Shutdown;
                (request.op(), protocol::handle(store, &request), is_shutdown)
            }
            Err(e) => (
                "invalid",
                format!(
                    "{{\"ok\":false,\"error\":{}}}",
                    protocol::json::quote(&e.to_string())
                ),
                false,
            ),
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        spans.bytes_out.add(response.len() as u64 + 1);
        let elapsed = started.elapsed();
        let i = RequestSpans::op_index(op);
        let ok = response.starts_with("{\"ok\":true");
        spans.requests[i][usize::from(!ok)].inc();
        spans.durations[i].record(elapsed.as_secs_f64());
        if let Some(threshold) = options.slow_request {
            if elapsed > threshold {
                eprintln!(
                    "slow request: op={op} took {:.3} ms (threshold {:.3} ms)",
                    elapsed.as_secs_f64() * 1e3,
                    threshold.as_secs_f64() * 1e3,
                );
            }
        }
        if is_shutdown {
            stop.store(true, Ordering::SeqCst);
            break;
        }
    }
    Ok(())
}

/// A client connection: sends one request line at a time and reads
/// the matching response line (the protocol is strictly lockstep per
/// connection).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and returns the response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an empty response (peer closed) maps to
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Ok(response.trim_end_matches('\n').to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    /// End-to-end over a real socket: two concurrent clients stream
    /// into different entries, then one queries a partition and shuts
    /// the daemon down; serve() must return.
    #[test]
    fn serves_concurrent_clients_and_shuts_down() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let store = Arc::new(ModelStore::new(StoreConfig::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let (store, stop) = (Arc::clone(&store), Arc::clone(&stop));
            thread::spawn(move || serve(listener, store, stop))
        };

        let feeders: Vec<_> = (0..2)
            .map(|r| {
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for d in [100u64, 400, 900] {
                        let t = d as f64 * 1e-3 * (r + 1) as f64;
                        let line = format!(
                            "{{\"op\":\"ingest\",\"fingerprint\":\"dev{r}\",\"kernel\":\"gemm\",\"config\":\"c\",\"d\":{d},\"t\":{t}}}"
                        );
                        let resp = client.request(&line).unwrap();
                        assert!(resp.contains("\"ok\":true"), "{resp}");
                    }
                })
            })
            .collect();
        for f in feeders {
            f.join().unwrap();
        }

        let mut client = Client::connect(addr).unwrap();
        let resp = client
            .request(r#"{"op":"partition","fingerprints":["dev0","dev1"],"kernel":"gemm","config":"c","total":1000,"algorithm":"geometric"}"#)
            .unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"cached\":false"), "{resp}");
        let again = client
            .request(r#"{"op":"partition","fingerprints":["dev0","dev1"],"kernel":"gemm","config":"c","total":1000,"algorithm":"geometric"}"#)
            .unwrap();
        assert!(again.contains("\"cached\":true"), "{again}");
        let resp = client.request(r#"{"op":"shutdown"}"#).unwrap();
        assert!(resp.contains("\"shutting_down\":true"), "{resp}");
        server.join().unwrap().unwrap();
        assert_eq!(store.len(), 2);
    }
}
