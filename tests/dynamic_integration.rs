//! Integration: dynamic data partitioning with partial models against
//! simulated devices — the Fig. 3 behaviour, plus cost accounting.

use fupermod::core::benchmark::Benchmark;
use fupermod::core::dynamic::DynamicContext;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::model::{AkimaModel, Model, PiecewiseModel};
use fupermod::core::partition::{GeometricPartitioner, NumericalPartitioner};
use fupermod::core::{CoreError, Point, Precision};
use fupermod::platform::{Platform, WorkloadProfile};

fn measure_on<'a>(
    platform: &'a Platform,
    profile: &WorkloadProfile,
) -> impl FnMut(usize, u64) -> Result<Point, CoreError> + 'a {
    let profile = profile.clone();
    move |rank, d| {
        let mut kernel = DeviceKernel::new(platform.device(rank).clone(), profile.clone());
        Benchmark::new(&Precision::quick()).measure(&mut kernel, d)
    }
}

fn ground_truth_imbalance(platform: &Platform, profile: &WorkloadProfile, sizes: &[u64]) -> f64 {
    let times: Vec<f64> = sizes
        .iter()
        .enumerate()
        .map(|(i, &d)| platform.device(i).ideal_time(d, profile))
        .collect();
    fupermod::core::partition::Distribution::imbalance_of(&times)
}

#[test]
fn dynamic_partitioning_reaches_near_balance_quickly() {
    let platform = Platform::two_speed(2, 2, 81);
    let profile = WorkloadProfile::matrix_update(16);
    let models: Vec<Box<dyn Model>> = (0..platform.size())
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(
        Box::new(GeometricPartitioner::default()),
        models,
        40_000,
        0.05,
    );
    let steps = ctx
        .run_to_balance(measure_on(&platform, &profile), 20)
        .unwrap();
    assert!(
        steps.len() <= 10,
        "dynamic partitioning took {} steps",
        steps.len()
    );
    let truth = ground_truth_imbalance(&platform, &profile, &ctx.dist().sizes());
    assert!(truth < 0.25, "ground-truth imbalance {truth}");
}

#[test]
fn dynamic_with_akima_and_newton_works_too() {
    let platform = Platform::two_speed(1, 2, 82);
    let profile = WorkloadProfile::matrix_update(16);
    let models: Vec<Box<dyn Model>> = (0..platform.size())
        .map(|_| Box::new(AkimaModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(
        Box::new(NumericalPartitioner::default()),
        models,
        20_000,
        0.05,
    );
    let steps = ctx
        .run_to_balance(measure_on(&platform, &profile), 25)
        .unwrap();
    assert!(steps.last().unwrap().converged || steps.len() == 25);
    let truth = ground_truth_imbalance(&platform, &profile, &ctx.dist().sizes());
    assert!(truth < 0.3, "ground-truth imbalance {truth}");
}

#[test]
fn partial_models_stay_small() {
    // The whole point of the dynamic scheme: only a handful of points
    // per process, not a full sweep.
    let platform = Platform::two_speed(2, 2, 83);
    let profile = WorkloadProfile::matrix_update(16);
    let models: Vec<Box<dyn Model>> = (0..platform.size())
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(
        Box::new(GeometricPartitioner::default()),
        models,
        30_000,
        0.05,
    );
    let steps = ctx
        .run_to_balance(measure_on(&platform, &profile), 20)
        .unwrap();
    for model in ctx.models() {
        assert!(
            model.points().len() <= steps.len(),
            "model has {} points after {} steps",
            model.points().len(),
            steps.len()
        );
    }
}

#[test]
fn imbalance_trend_is_downward() {
    let platform = Platform::grid_site(84);
    let profile = WorkloadProfile::matrix_update(16);
    let models: Vec<Box<dyn Model>> = (0..platform.size())
        .map(|_| Box::new(PiecewiseModel::new()) as Box<dyn Model>)
        .collect();
    let mut ctx = DynamicContext::new(
        Box::new(GeometricPartitioner::default()),
        models,
        100_000,
        0.02,
    );
    let steps = ctx
        .run_to_balance(measure_on(&platform, &profile), 15)
        .unwrap();
    let first = steps.first().unwrap().imbalance;
    let last = steps.last().unwrap().imbalance;
    assert!(
        last < first,
        "imbalance did not improve: first {first}, last {last}"
    );
}
