//! Integration: the dynamically balanced Jacobi application — real
//! convergence, balancing behaviour, and determinism across testbeds.

use fupermod::apps::jacobi::{run, run_even, tail_imbalance, JacobiConfig};
use fupermod::apps::workload::dominant_system;
use fupermod::core::partition::{GeometricPartitioner, NumericalPartitioner};
use fupermod::platform::Platform;

#[test]
fn converges_on_the_grid_site_testbed() {
    let system = dominant_system(320, 71);
    let platform = Platform::grid_site(71);
    let report = run(
        &system,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &JacobiConfig::default(),
    )
    .unwrap();
    assert!(report.converged);
    for (got, want) in report.x.iter().zip(&system.x_true) {
        assert!((got - want).abs() < 1e-5, "solution off: {got} vs {want}");
    }
}

#[test]
fn numerical_partitioner_also_balances_jacobi() {
    let system = dominant_system(240, 72);
    let platform = Platform::two_speed(1, 2, 72);
    let report = run(
        &system,
        &platform,
        Box::new(NumericalPartitioner::default()),
        &JacobiConfig::default(),
    )
    .unwrap();
    assert!(report.converged);
    assert!(
        tail_imbalance(&report, 3) < 0.35,
        "tail imbalance {}",
        tail_imbalance(&report, 3)
    );
}

#[test]
fn balancing_beats_even_baseline_across_seeds() {
    // The paper's Fig. 4 setting: per-row compute must dominate the
    // (fixed) communication costs — wide rows, fast interconnect — and
    // the application must iterate long enough to amortise the one-off
    // redistribution, so the comparison runs a fixed iteration count.
    use fupermod::platform::LinkModel;
    for seed in [5u64, 6, 7] {
        let system = dominant_system(1200, seed);
        let platform = Platform::two_speed(1, 3, seed).with_link(LinkModel::infiniband());
        let cfg = JacobiConfig {
            tol: 0.0,
            max_iters: 40,
            eps_balance: 0.05,
            balance: true,
        };
        let balanced = run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &cfg,
        )
        .unwrap();
        let even = run_even(&system, &platform, &cfg).unwrap();
        assert!(
            balanced.makespan < even.makespan,
            "seed {seed}: balanced {} vs even {}",
            balanced.makespan,
            even.makespan
        );
    }
}

#[test]
fn rows_are_conserved_and_solution_identical_to_even_run() {
    // Balancing redistributes *work*, never changes *math*: the final
    // solutions of balanced and even runs agree to iteration tolerance.
    let system = dominant_system(160, 99);
    let platform = Platform::two_speed(2, 2, 99);
    let cfg = JacobiConfig {
        tol: 1e-10,
        max_iters: 300,
        ..JacobiConfig::default()
    };
    let balanced = run(
        &system,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &cfg,
    )
    .unwrap();
    let even = run_even(&system, &platform, &cfg).unwrap();
    assert!(balanced.converged && even.converged);
    for (a, b) in balanced.x.iter().zip(&even.x) {
        assert!((a - b).abs() < 1e-8);
    }
    for rec in &balanced.iterations {
        assert_eq!(rec.sizes.iter().sum::<u64>(), 160);
    }
}

#[test]
fn runs_are_deterministic() {
    let mk = || {
        let system = dominant_system(150, 123);
        let platform = Platform::two_speed(1, 2, 123);
        run(
            &system,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &JacobiConfig::default(),
        )
        .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.x, b.x);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.iterations.len(), b.iterations.len());
    for (ra, rb) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(ra.sizes, rb.sizes);
        assert_eq!(ra.compute_times, rb.compute_times);
    }
}
