//! Integration: the matrix-multiplication application computes correct
//! products under every partitioning strategy, and the simulated runs
//! show the expected heterogeneous behaviour.

use fupermod::apps::matmul::{
    build_device_models, partition_areas, run_threaded, simulate, MatMulConfig,
};
use fupermod::apps::workload::{random_matrix, DenseMatrix};
use fupermod::core::model::{AkimaModel, Model, PiecewiseModel};
use fupermod::core::partition::{GeometricPartitioner, NumericalPartitioner};
use fupermod::core::Precision;
use fupermod::kernels::gemm::gemm_blocked;
use fupermod::platform::{Platform, WorkloadProfile};

fn serial_product(a: &DenseMatrix, b: &DenseMatrix) -> Vec<f64> {
    let n = a.rows;
    let mut c = vec![0.0; n * n];
    gemmref(n, &a.data, &b.data, &mut c);
    c
}

fn gemmref(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    gemm_blocked(n, n, n, a, b, c);
}

#[test]
fn threaded_product_is_correct_for_model_derived_areas() {
    let block = 8usize;
    let n_blocks = 10u64;
    let platform = Platform::two_speed(2, 1, 41);
    let profile = WorkloadProfile::matrix_update(block);

    // Models from simulated benchmarking; areas from both FPM
    // partitioners.
    let pwls: Vec<PiecewiseModel> =
        build_device_models(&platform, &profile, &[4, 16, 64, 100], &Precision::quick())
            .unwrap();
    let akimas: Vec<AkimaModel> =
        build_device_models(&platform, &profile, &[4, 16, 64, 100], &Precision::quick())
            .unwrap();
    let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
    let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();

    let n = n_blocks as usize * block;
    let a = random_matrix(n, n, 7);
    let b = random_matrix(n, n, 8);
    let reference = serial_product(&a, &b);

    for (name, areas) in [
        (
            "geometric",
            partition_areas(&GeometricPartitioner::default(), n_blocks, &pwl_refs).unwrap(),
        ),
        (
            "numerical",
            partition_areas(&NumericalPartitioner::default(), n_blocks, &akima_refs).unwrap(),
        ),
    ] {
        let c = run_threaded(&a, &b, block, &areas).unwrap();
        let max_err = c
            .data
            .iter()
            .zip(&reference)
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()));
        assert!(max_err < 1e-9, "{name}: max error {max_err}");
    }
}

#[test]
fn threaded_product_is_correct_for_many_process_counts() {
    let block = 4usize;
    let n = 48usize; // 12×12 blocks
    let a = random_matrix(n, n, 17);
    let b = random_matrix(n, n, 18);
    let reference = serial_product(&a, &b);
    let total = 144u64;
    for p in [1usize, 2, 3, 5, 7, 12] {
        // Skewed areas: process i gets weight i+1.
        let weights: Vec<f64> = (0..p).map(|i| (i + 1) as f64).collect();
        let areas = fupermod::num::apportion::largest_remainder(&weights, total).unwrap();
        let c = run_threaded(&a, &b, block, &areas).unwrap();
        let max_err = c
            .data
            .iter()
            .zip(&reference)
            .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()));
        assert!(max_err < 1e-9, "p={p}: max error {max_err}");
    }
}

#[test]
fn simulated_matmul_scales_sanely_with_problem_size() {
    let platform = Platform::two_speed(2, 2, 51);
    let areas = |n_blocks: u64| {
        let p = platform.size() as u64;
        let total = n_blocks * n_blocks;
        (0..p)
            .map(|i| total / p + u64::from(i < total % p))
            .collect::<Vec<_>>()
    };
    let small = simulate(
        &platform,
        &areas(32),
        &MatMulConfig {
            n_blocks: 32,
            block: 16,
        },
    )
    .unwrap();
    let large = simulate(
        &platform,
        &areas(64),
        &MatMulConfig {
            n_blocks: 64,
            block: 16,
        },
    )
    .unwrap();
    // 8× the flops → at least 4× the time (speed can only drop with
    // size on these devices).
    assert!(
        large.total_time > 4.0 * small.total_time,
        "small {} vs large {}",
        small.total_time,
        large.total_time
    );
}

#[test]
fn partition_metadata_matches_simulation_input() {
    let platform = Platform::grid_site(61);
    let p = platform.size() as u64;
    let cfg = MatMulConfig {
        n_blocks: 64,
        block: 16,
    };
    let total = cfg.n_blocks * cfg.n_blocks;
    let areas: Vec<u64> = (0..p).map(|i| total / p + u64::from(i < total % p)).collect();
    let report = simulate(&platform, &areas, &cfg).unwrap();
    // The 2D partition tiles the grid exactly.
    let covered: u64 = report.partition.rects().iter().map(|r| r.area()).sum();
    assert_eq!(covered, total);
    // Every device got a compute-time sample in the report.
    assert_eq!(report.iter_compute_times.len(), platform.size());
}
