//! End-to-end integration: measurement → models → partitioning, across
//! crate boundaries, on simulated heterogeneous platforms.

use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::model::{AkimaModel, ConstantModel, Model, PiecewiseModel};
use fupermod::core::partition::{
    ConstantPartitioner, EvenPartitioner, GeometricPartitioner, NumericalPartitioner,
    Partitioner,
};
use fupermod::core::Precision;
use fupermod::platform::{Platform, WorkloadProfile};

fn build_all_models(
    platform: &Platform,
    profile: &WorkloadProfile,
    sizes: &[u64],
) -> (Vec<ConstantModel>, Vec<PiecewiseModel>, Vec<AkimaModel>) {
    let bench_precision = Precision::default();
    let bench = Benchmark::new(&bench_precision);
    let mut cpms = Vec::new();
    let mut pwls = Vec::new();
    let mut akimas = Vec::new();
    for dev in platform.devices() {
        let mut kernel = DeviceKernel::new(dev.clone(), profile.clone());
        let mut cpm = ConstantModel::new();
        let mut pwl = PiecewiseModel::new();
        let mut akima = AkimaModel::new();
        for &d in sizes {
            let point = bench.measure(&mut kernel, d).expect("benchmark failed");
            cpm.update(point).unwrap();
            pwl.update(point).unwrap();
            akima.update(point).unwrap();
        }
        cpms.push(cpm);
        pwls.push(pwl);
        akimas.push(akima);
    }
    (cpms, pwls, akimas)
}

fn ground_truth_makespan(platform: &Platform, profile: &WorkloadProfile, sizes: &[u64]) -> f64 {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &d)| platform.device(i).ideal_time(d, profile))
        .fold(0.0, f64::max)
}

#[test]
fn all_partitioners_conserve_units_on_every_testbed() {
    let profile = WorkloadProfile::matrix_update(16);
    let testbeds = [
        Platform::uniform(3, 1),
        Platform::two_speed(2, 2, 2),
        Platform::multicore_node(4, 3),
        Platform::hybrid_node(3, 4),
        Platform::grid_site(5),
    ];
    for platform in &testbeds {
        let (cpms, pwls, akimas) =
            build_all_models(platform, &profile, &[64, 512, 4096, 16384]);
        let total = 30_000u64;
        let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
        let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
        let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();

        for (name, dist) in [
            ("even", EvenPartitioner.partition(total, &cpm_refs).unwrap()),
            ("cpm", ConstantPartitioner.partition(total, &cpm_refs).unwrap()),
            (
                "geometric",
                GeometricPartitioner::default()
                    .partition(total, &pwl_refs)
                    .unwrap(),
            ),
            (
                "numerical",
                NumericalPartitioner::default()
                    .partition(total, &akima_refs)
                    .unwrap(),
            ),
        ] {
            assert_eq!(
                dist.total_assigned(),
                total,
                "{name} lost units on {}",
                platform.name()
            );
            assert_eq!(dist.size(), platform.size());
        }
    }
}

#[test]
fn model_based_partitioning_beats_even_on_heterogeneous_platforms() {
    let profile = WorkloadProfile::matrix_update(16);
    let platform = Platform::two_speed(2, 2, 11);
    let (cpms, pwls, akimas) = build_all_models(&platform, &profile, &[64, 512, 4096, 16384]);
    let total = 40_000u64;

    let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
    let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
    let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();

    let even = EvenPartitioner.partition(total, &cpm_refs).unwrap();
    let geo = GeometricPartitioner::default()
        .partition(total, &pwl_refs)
        .unwrap();
    let num = NumericalPartitioner::default()
        .partition(total, &akima_refs)
        .unwrap();

    let even_ms = ground_truth_makespan(&platform, &profile, &even.sizes());
    let geo_ms = ground_truth_makespan(&platform, &profile, &geo.sizes());
    let num_ms = ground_truth_makespan(&platform, &profile, &num.sizes());

    assert!(geo_ms < even_ms, "geometric {geo_ms} !< even {even_ms}");
    assert!(num_ms < even_ms, "numerical {num_ms} !< even {even_ms}");
}

#[test]
fn fpm_partitioning_handles_gpu_memory_cliff_better_than_cpm() {
    let profile = WorkloadProfile::matrix_update(16);
    let platform = Platform::hybrid_node(4, 21);
    // Model sizes span the GPU memory boundary (~43k units).
    let (cpms, _, akimas) =
        build_all_models(&platform, &profile, &[512, 4096, 16384, 40_000, 80_000]);
    // Big enough that the CPM's proportional share overflows the GPU.
    let total = 250_000u64;

    let cpm_refs: Vec<&dyn Model> = cpms.iter().map(|m| m as &dyn Model).collect();
    let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
    let cpm = ConstantPartitioner.partition(total, &cpm_refs).unwrap();
    let fpm = NumericalPartitioner::default()
        .partition(total, &akima_refs)
        .unwrap();

    let cpm_ms = ground_truth_makespan(&platform, &profile, &cpm.sizes());
    let fpm_ms = ground_truth_makespan(&platform, &profile, &fpm.sizes());
    assert!(
        fpm_ms < cpm_ms,
        "FPM ({fpm_ms}) should beat CPM ({cpm_ms}) past the GPU memory cliff"
    );
}

#[test]
fn predicted_times_are_equalised_by_fpm_algorithms() {
    let profile = WorkloadProfile::matrix_update(16);
    let platform = Platform::grid_site(31);
    let (_, pwls, akimas) = build_all_models(&platform, &profile, &[64, 512, 4096, 16384]);
    let total = 60_000u64;

    let pwl_refs: Vec<&dyn Model> = pwls.iter().map(|m| m as &dyn Model).collect();
    let geo = GeometricPartitioner::default()
        .partition(total, &pwl_refs)
        .unwrap();
    assert!(
        geo.predicted_imbalance() < 0.05,
        "geometric predicted imbalance {}",
        geo.predicted_imbalance()
    );

    let akima_refs: Vec<&dyn Model> = akimas.iter().map(|m| m as &dyn Model).collect();
    let num = NumericalPartitioner::default()
        .partition(total, &akima_refs)
        .unwrap();
    assert!(
        num.predicted_imbalance() < 0.05,
        "numerical predicted imbalance {}",
        num.predicted_imbalance()
    );
}
