//! Integration: the heat-diffusion application across crates —
//! physics, balancing, and makespan on simulated heterogeneous
//! platforms.

use fupermod::apps::heat::{run, sine_mode, sine_mode_decay, HeatConfig};
use fupermod::core::partition::{Distribution, GeometricPartitioner, NumericalPartitioner};
use fupermod::platform::{LinkModel, Platform};

#[test]
fn physics_is_exact_on_the_grid_site() {
    let (rows, cols) = (64, 32);
    let cfg = HeatConfig {
        cols,
        nu: 0.2,
        steps: 15,
        eps_balance: 0.05,
        balance: true,
    };
    let initial = sine_mode(rows, cols);
    let platform = Platform::grid_site(90);
    let report = run(
        &initial,
        rows,
        &platform,
        Box::new(GeometricPartitioner::default()),
        &cfg,
    )
    .unwrap();
    let decay = sine_mode_decay(rows, cols, cfg.nu).powi(cfg.steps as i32);
    for (got, init) in report.grid.iter().zip(&initial) {
        assert!((got - init * decay).abs() < 1e-9);
    }
}

#[test]
fn balancing_reduces_step_imbalance() {
    let (rows, cols) = (600, 1024);
    let initial = sine_mode(rows, cols);
    let platform = Platform::two_speed(1, 2, 91).with_link(LinkModel::infiniband());
    let report = run(
        &initial,
        rows,
        &platform,
        Box::new(NumericalPartitioner::default()),
        &HeatConfig {
            cols,
            nu: 0.25,
            steps: 20,
            eps_balance: 0.05,
            balance: true,
        },
    )
    .unwrap();
    let first = Distribution::imbalance_of(&report.steps[0].compute_times);
    let last = Distribution::imbalance_of(&report.steps.last().unwrap().compute_times);
    assert!(
        last < 0.6 * first,
        "imbalance did not improve: {first} -> {last}"
    );
}

#[test]
fn balanced_beats_fixed_even_in_makespan() {
    let (rows, cols) = (600, 1024);
    let initial = sine_mode(rows, cols);
    let platform = Platform::two_speed(1, 3, 92).with_link(LinkModel::infiniband());
    let mk = |balance: bool| {
        run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.2,
                steps: 30,
                eps_balance: 0.05,
                balance,
            },
        )
        .unwrap()
    };
    let balanced = mk(true);
    let even = mk(false);
    assert!(
        balanced.makespan < even.makespan,
        "balanced {} vs even {}",
        balanced.makespan,
        even.makespan
    );
    // Identical physics either way.
    for (a, b) in balanced.grid.iter().zip(&even.grid) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn heat_runs_are_deterministic() {
    let (rows, cols) = (80, 64);
    let initial = sine_mode(rows, cols);
    let mk = || {
        let platform = Platform::two_speed(2, 2, 93);
        run(
            &initial,
            rows,
            &platform,
            Box::new(GeometricPartitioner::default()),
            &HeatConfig {
                cols,
                nu: 0.2,
                steps: 12,
                eps_balance: 0.05,
                balance: true,
            },
        )
        .unwrap()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.grid, b.grid);
    for (ra, rb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(ra.sizes, rb.sizes);
    }
}
