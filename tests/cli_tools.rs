//! Integration: the offline CLI utilities (`fupermod_builder`,
//! `fupermod_partitioner`) work end to end through real files, the
//! paper's "build models once, partition many times" workflow.

use std::process::Command;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fupermod-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir failed");
    dir
}

#[test]
fn builder_then_partitioner_round_trip() {
    let dir = temp_dir("roundtrip");

    let out = Command::new(env!("CARGO_BIN_EXE_fupermod_builder"))
        .args([
            "--platform",
            "two-speed",
            "--seed",
            "3",
            "--lo",
            "64",
            "--hi",
            "16384",
            "--points",
            "8",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("builder failed to launch");
    assert!(
        out.status.success(),
        "builder failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Four .points files, one per device.
    let files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "points"))
        .collect();
    assert_eq!(files.len(), 4, "expected 4 model files");

    for algorithm in ["even", "constant", "geometric", "numerical"] {
        let model = match algorithm {
            "constant" => "cpm",
            "numerical" => "akima",
            _ => "piecewise",
        };
        let out = Command::new(env!("CARGO_BIN_EXE_fupermod_partitioner"))
            .args(["--models"])
            .arg(&dir)
            .args([
                "--total",
                "50000",
                "--algorithm",
                algorithm,
                "--model",
                model,
            ])
            .output()
            .expect("partitioner failed to launch");
        assert!(
            out.status.success(),
            "partitioner({algorithm}) failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("total 50000"),
            "{algorithm}: units not conserved:\n{stdout}"
        );
        // Four rank rows.
        let rows = stdout
            .lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .count();
        assert_eq!(rows, 4, "{algorithm}: expected 4 rank rows:\n{stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partitioner_reports_missing_inputs() {
    let out = Command::new(env!("CARGO_BIN_EXE_fupermod_partitioner"))
        .output()
        .expect("partitioner failed to launch");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--models"), "unhelpful error: {stderr}");
}

#[test]
fn partitioner_rejects_empty_model_dir() {
    let dir = temp_dir("empty");
    let out = Command::new(env!("CARGO_BIN_EXE_fupermod_partitioner"))
        .args(["--models"])
        .arg(&dir)
        .args(["--total", "100"])
        .output()
        .expect("partitioner failed to launch");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
