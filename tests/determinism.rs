//! Integration: every simulated path is bit-for-bit reproducible under
//! fixed seeds — the property that makes the experiment suite
//! trustworthy — and distinct seeds actually change the noise.

use fupermod::apps::matmul::{simulate, MatMulConfig};
use fupermod::core::benchmark::Benchmark;
use fupermod::core::kernel::DeviceKernel;
use fupermod::core::Precision;
use fupermod::platform::{cluster, Device, Platform, WorkloadProfile};

#[test]
fn benchmark_points_are_reproducible() {
    let profile = WorkloadProfile::matrix_update(16);
    let run = || {
        let mut kernel = DeviceKernel::new(cluster::fast_cpu("c", 9), profile.clone());
        Benchmark::new(&Precision::default())
            .measure(&mut kernel, 1234)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_noise() {
    let profile = WorkloadProfile::matrix_update(16);
    let t = |seed: u64| {
        cluster::fast_cpu("c", seed).measured_time(1000, &profile, 0)
    };
    assert_ne!(t(1), t(2));
}

#[test]
fn noise_does_not_change_the_ideal_time() {
    let profile = WorkloadProfile::matrix_update(16);
    let a = cluster::fast_cpu("c", 1);
    let b = cluster::fast_cpu("c", 2);
    assert_eq!(a.ideal_time(5000, &profile), b.ideal_time(5000, &profile));
}

#[test]
fn simulated_matmul_is_reproducible() {
    let run = || {
        let platform = Platform::grid_site(7);
        let p = platform.size() as u64;
        let cfg = MatMulConfig {
            n_blocks: 48,
            block: 16,
        };
        let total = cfg.n_blocks * cfg.n_blocks;
        let areas: Vec<u64> = (0..p).map(|i| total / p + u64::from(i < total % p)).collect();
        simulate(&platform, &areas, &cfg).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.comm_seconds, b.comm_seconds);
    assert_eq!(a.iter_compute_times, b.iter_compute_times);
}

#[test]
fn device_clone_preserves_noise_stream() {
    let profile = WorkloadProfile::matrix_update(16);
    let dev = cluster::slow_cpu("s", 5);
    let clone: Device = dev.clone();
    for run in 0..5 {
        assert_eq!(
            dev.measured_time(777, &profile, run),
            clone.measured_time(777, &profile, run)
        );
    }
}
