//! Integration: the `--trace` flag of the CLI binaries produces files
//! that conform to the documented schema (docs/OBSERVABILITY.md), are
//! readable by the built-in JSONL reader, and can be replayed into
//! fresh models.

use std::io::BufReader;
use std::process::Command;

use fupermod::core::model::{Model, PiecewiseModel};
use fupermod::core::trace::{
    read_jsonl_trace, replay_into_models, TraceEvent, CSV_HEADER, SCHEMA_VERSION,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fupermod-trace-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir failed");
    dir
}

/// Runs `fupermod_simulate` with the given extra args; panics on failure.
fn simulate(extra: &[&str]) -> std::process::Output {
    let out = Command::new(env!("CARGO_BIN_EXE_fupermod_simulate"))
        .args(extra)
        .output()
        .expect("fupermod_simulate failed to launch");
    assert!(
        out.status.success(),
        "fupermod_simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn simulate_jsonl_trace_matches_documented_schema() {
    let dir = temp_dir("jsonl");
    let path = dir.join("jacobi.trace.jsonl");
    let out = simulate(&[
        "--app",
        "jacobi",
        "--size",
        "120",
        "--trace",
        path.to_str().unwrap(),
    ]);

    // The metrics summary goes to stderr on exit.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fupermod metrics:"),
        "missing metrics summary in stderr: {stderr}"
    );

    // Header line is the documented schema stamp.
    let text = std::fs::read_to_string(&path).expect("trace file missing");
    let first = text.lines().next().expect("empty trace");
    assert_eq!(first, format!("{{\"trace\":\"fupermod\",\"schema\":{SCHEMA_VERSION}}}"));

    // The built-in reader accepts the file and sees the dynamic loop.
    let file = std::fs::File::open(&path).unwrap();
    let (schema, events) = read_jsonl_trace(BufReader::new(file)).expect("reader rejected trace");
    assert_eq!(schema, SCHEMA_VERSION);
    assert!(!events.is_empty(), "trace carried no events");

    let mut saw_update = false;
    let mut saw_step = false;
    for e in &events {
        match e {
            TraceEvent::ModelUpdate { points, .. } => {
                saw_update = true;
                assert!(*points >= 1);
            }
            TraceEvent::PartitionStep { dist, imbalance, .. } => {
                saw_step = true;
                assert!(!dist.is_empty());
                assert!(imbalance.is_finite() && *imbalance >= 0.0);
            }
            _ => {}
        }
    }
    assert!(saw_update, "expected model_update events");
    assert!(saw_step, "expected partition_step events");

    // Replay reconstructs per-rank models from the recorded updates.
    let n_ranks = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ModelUpdate { rank, .. } => Some(*rank + 1),
            _ => None,
        })
        .max()
        .expect("no ranks in trace");
    let mut models: Vec<PiecewiseModel> = (0..n_ranks).map(|_| PiecewiseModel::new()).collect();
    let mut refs: Vec<&mut dyn Model> =
        models.iter_mut().map(|m| m as &mut dyn Model).collect();
    let applied = replay_into_models(&events, &mut refs).expect("replay failed");
    assert!(applied > 0, "replay applied no points");
    assert!(models.iter().any(|m| !m.points().is_empty()));
}

#[test]
fn simulate_csv_trace_has_versioned_header_and_stable_columns() {
    let dir = temp_dir("csv");
    let path = dir.join("matmul.trace.csv");
    simulate(&[
        "--app",
        "matmul",
        "--size",
        "48",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "csv",
    ]);

    let text = std::fs::read_to_string(&path).expect("trace file missing");
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some(format!("# fupermod-trace schema={SCHEMA_VERSION}").as_str())
    );
    assert_eq!(lines.next(), Some(CSV_HEADER));

    let n_cols = CSV_HEADER.split(',').count();
    let mut rows = 0;
    for line in lines {
        assert_eq!(
            line.split(',').count(),
            n_cols,
            "ragged CSV row: {line}"
        );
        let event = line.split(',').next().unwrap();
        assert!(
            [
                "benchmark_sample",
                "benchmark_done",
                "model_update",
                "partition_step",
                "dynamic_converged",
                // Schema v3: histogram snapshots exported at exit.
                "metrics",
            ]
            .contains(&event),
            "unknown event tag {event}"
        );
        rows += 1;
    }
    assert!(rows > 0, "CSV trace carried no events");
}

#[test]
fn trace_extension_infers_csv_format() {
    let dir = temp_dir("infer");
    let path = dir.join("inferred.csv");
    simulate(&[
        "--app",
        "jacobi",
        "--size",
        "80",
        "--trace",
        path.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&path).expect("trace file missing");
    assert!(
        text.starts_with("# fupermod-trace schema="),
        "a .csv path should produce the CSV encoding"
    );
}
