//! Integration: two-level hierarchical partitioning against simulated
//! platforms, compared with flat partitioning ground truth.

use fupermod::apps::matmul::build_device_models;
use fupermod::core::hierarchy::{partition_hierarchical, AggregateModel};
use fupermod::core::model::{Model, PiecewiseModel};
use fupermod::core::partition::{GeometricPartitioner, Partitioner};
use fupermod::core::Precision;
use fupermod::platform::{cluster, LinkModel, Platform, WorkloadProfile};

fn three_node_platform(seed: u64) -> Platform {
    Platform::new(
        "three-nodes",
        vec![
            cluster::fast_cpu("n0c0", seed),
            cluster::fast_cpu("n0c1", seed + 1),
            cluster::slow_cpu("n1c0", seed + 2),
            cluster::slow_cpu("n1c1", seed + 3),
            cluster::fast_cpu("n2c0", seed + 4),
            cluster::slow_cpu("n2c1", seed + 5),
        ],
        LinkModel::ethernet(),
    )
}

fn build_models(platform: &Platform) -> Vec<PiecewiseModel> {
    let profile = WorkloadProfile::matrix_update(16);
    build_device_models(platform, &profile, &[64, 512, 4096, 32768], &Precision::default())
        .expect("model build failed")
}

#[test]
fn hierarchical_matches_flat_makespan_within_tolerance() {
    let platform = three_node_platform(40);
    let profile = WorkloadProfile::matrix_update(16);
    let models = build_models(&platform);
    let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
    let groups: Vec<Vec<&dyn Model>> = vec![
        vec![refs[0], refs[1]],
        vec![refs[2], refs[3]],
        vec![refs[4], refs[5]],
    ];
    let total = 60_000u64;

    let flat = GeometricPartitioner::default()
        .partition(total, &refs)
        .unwrap();
    let hier = partition_hierarchical(
        total,
        &groups,
        &GeometricPartitioner::default(),
        &GeometricPartitioner::default(),
    )
    .unwrap();
    assert_eq!(hier.total_assigned(), total);

    let makespan = |sizes: &[u64]| {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &d)| platform.device(i).ideal_time(d, &profile))
            .fold(0.0_f64, f64::max)
    };
    let flat_ms = makespan(&flat.sizes());
    let hier_ms = makespan(&hier.flat_sizes());
    assert!(
        (hier_ms - flat_ms).abs() / flat_ms < 0.1,
        "flat {flat_ms} vs hierarchical {hier_ms}"
    );
}

#[test]
fn aggregate_model_time_is_monotone() {
    let platform = three_node_platform(41);
    let models = build_models(&platform);
    let refs: Vec<&dyn Model> = models[..2].iter().map(|m| m as &dyn Model).collect();
    let agg = AggregateModel::new(refs).unwrap();
    let mut last = 0.0;
    for i in 1..=30 {
        let x = i as f64 * 2000.0;
        let t = agg.time(x).expect("aggregate time");
        assert!(t >= last - 1e-9, "aggregate time decreased at {x}");
        last = t;
    }
}

#[test]
fn hierarchy_works_with_unbalanced_group_sizes() {
    let platform = three_node_platform(42);
    let models = build_models(&platform);
    let refs: Vec<&dyn Model> = models.iter().map(|m| m as &dyn Model).collect();
    // Groups of 1, 2 and 3 members.
    let groups: Vec<Vec<&dyn Model>> = vec![
        vec![refs[0]],
        vec![refs[1], refs[2]],
        vec![refs[3], refs[4], refs[5]],
    ];
    let hier = partition_hierarchical(
        30_000,
        &groups,
        &GeometricPartitioner::default(),
        &GeometricPartitioner::default(),
    )
    .unwrap();
    assert_eq!(hier.total_assigned(), 30_000);
    assert_eq!(hier.group_dists[0].size(), 1);
    assert_eq!(hier.group_dists[1].size(), 2);
    assert_eq!(hier.group_dists[2].size(), 3);
}
